#!/usr/bin/env python
"""Fault-injection campaign: the paper's §5.2 validation methodology.

Runs a few validation experiments for each of Table 5.2's fault types —
random shared/exclusive cache fill, injection, recovery, then a read of all
of memory checked against the simulator oracle — and prints a Table
5.3-style summary.

Run:  python examples/fault_injection_campaign.py [runs_per_type]
"""

import random
import sys

from repro import MachineConfig
from repro.analysis.tables import format_table
from repro.core.experiment import run_validation_experiment
from repro.faults.models import TABLE_5_2_FAULT_TYPES, FaultSpec
from repro.interconnect.topology import make_topology


def main(runs_per_type=2):
    rng = random.Random(2026)
    rows = []
    # The paper's table covers its original five fault classes; the
    # transient campaign-engine models are exercised elsewhere.
    for fault_type in TABLE_5_2_FAULT_TYPES:
        failed = 0
        marked_total = 0
        for _ in range(runs_per_type):
            seed = rng.randrange(1 << 30)
            config = MachineConfig(num_nodes=8, mem_per_node=1 << 16,
                                   l2_size=1 << 13, seed=seed)
            topology = make_topology(config.topology, config.num_nodes)
            fault = FaultSpec.random(rng, topology, fault_type)
            result = run_validation_experiment(fault, config=config,
                                               seed=seed)
            print("  %s" % result)
            if not result.passed:
                failed += 1
                for problem in result.problems[:3]:
                    print("      !", problem)
            marked_total += result.lines_marked_incoherent
        rows.append((fault_type.value, runs_per_type, failed, marked_total))

    print()
    print(format_table(
        "Validation campaign (paper Table 5.3 methodology)",
        ["Injected fault type", "# runs", "# failed",
         "lines marked incoherent"],
        rows))
    print()
    print("Paper: 200 runs per type, 0 failed experiments.")


if __name__ == "__main__":
    runs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    main(runs)
