#!/usr/bin/env python
"""Quickstart: inject a node failure into a FLASH machine and watch the
distributed recovery algorithm contain it.

Run:  python examples/quickstart.py
"""

from repro import BusError, FaultSpec, FlashMachine, MachineConfig
from repro.node.processor import Load, Store, UncachedLoad


def main():
    # An 8-node FLASH: 2D mesh, 64 KB of memory and an 8 KB L2 per node
    # (sizes scaled down so the example runs in seconds).
    config = MachineConfig(num_nodes=8, mem_per_node=1 << 16,
                           l2_size=1 << 13, seed=42)
    machine = FlashMachine(config).start()

    # Write some data: node 0 stores into a line homed on node 2, and into
    # a line homed on node 7 (which we are about to kill).
    safe_line = machine.line_homed_at(2)
    doomed_line = machine.line_homed_at(7)

    def writer():
        yield Store(safe_line, value="survives")
        yield Store(doomed_line, value="about to be lost")

    machine.run_programs([(0, writer())])
    machine.quiesce()
    print("Wrote one line homed on node 2 and one homed on node 7.")

    # Kill node 7: its MAGIC controller, memory, and caches are gone; the
    # router stays up (paper Table 5.2, "node failure").
    machine.injector.inject(FaultSpec.node_failure(7))
    print("Injected: node 7 failed at t=%.3f ms" % (machine.sim.now / 1e6))

    # Detection: the next reference aimed at node 7 times out (paper §4.2),
    # dropping the machine into the four-phase recovery algorithm.
    def prober():
        try:
            yield UncachedLoad(machine.line_homed_at(7, 5))
        except BusError as error:
            print("Prober's reference terminated with a bus error: %s"
                  % error.kind.value)

    machine.nodes[1].processor.run_program(prober())
    report = machine.run_until_recovered()

    print()
    print("Recovery complete:")
    print("  trigger:            %s on node %d"
          % (report.trigger_reason, report.trigger_node))
    print("  total time:         %.2f ms" % (report.total_duration / 1e6))
    for phase in ("P1", "P2", "P3", "P4"):
        end = report.phase_duration_from_trigger(phase)
        print("  through %s:         %.2f ms" % (phase, end / 1e6))
    print("  surviving nodes:    %s" % sorted(report.available_nodes))
    print("  incoherent lines:   %d" % report.marked_incoherent)

    # Containment check: data on surviving nodes is intact; references to
    # the failed node's memory bus-error instead of hanging the machine.
    outcomes = []

    def checker():
        value = yield Load(safe_line)
        outcomes.append(("safe line", value))
        try:
            yield Load(doomed_line)
        except BusError as error:
            outcomes.append(("doomed line", error.kind.value))

    machine.nodes[3].processor.run_program(checker())
    machine.run(until=machine.sim.now + 5_000_000)

    print()
    for label, outcome in outcomes:
        print("  %-12s -> %r" % (label, outcome))
    assert outcomes[0][1] == "survives"
    assert outcomes[1][1] == "inaccessible_node"
    print()
    print("The fault was contained: the rest of the machine kept its data "
          "and kept running.")


if __name__ == "__main__":
    main()
