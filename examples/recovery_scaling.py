#!/usr/bin/env python
"""Recovery-time scaling across machine sizes (paper Figure 5.5, mini).

Sweeps mesh machines of increasing size, injecting a node failure into
each and reporting the cumulative time through each recovery phase.

Run:  python examples/recovery_scaling.py [max_nodes]
"""

import sys

from repro.analysis.tables import format_series
from repro.core.experiment import run_recovery_scalability


def main(max_nodes=32):
    sizes = [n for n in (2, 4, 8, 16, 32, 64, 128) if n <= max_nodes]
    rows = []
    for num_nodes in sizes:
        report = run_recovery_scalability(
            num_nodes, mem_per_node=1 << 18, l2_size=1 << 16)
        rows.append((
            num_nodes,
            "%.2f" % (report.phase_duration_from_trigger("P1") / 1e6),
            "%.2f" % (report.phase_duration_from_trigger("P2") / 1e6),
            "%.2f" % (report.phase_duration_from_trigger("P3") / 1e6),
            "%.2f" % (report.total_duration / 1e6),
            max(report.agent_rounds.values()),
        ))
        print("measured %d nodes: total %.2f ms"
              % (num_nodes, report.total_duration / 1e6))

    print()
    print(format_series(
        "Hardware recovery scaling (mesh, 256 KB/node, 64 KB L2)",
        "nodes",
        ["P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]",
         "P2 rounds"],
        rows))
    print()
    print("Paper (Figure 5.5): dissemination (P2) dominates at scale, "
          "growing with the interconnect diameter.")


if __name__ == "__main__":
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    main(limit)
