#!/usr/bin/env python
"""Parallel make on Hive with a mid-build node failure (paper §5.1-§5.2).

Boots an 8-cell Hive system, starts one compile per cell (cell 0 doubles
as the file server, all file data moving through shared memory), kills a
node mid-build, and shows which compiles survive.

Run:  python examples/parallel_make_on_hive.py
"""

from repro.faults.models import FaultSpec
from repro.hive.endtoend import membership_monitor
from repro.hive.os import HiveConfig, HiveOS
from repro.workloads.pmake import compile_job, create_build_tree


def main():
    config = HiveConfig(cells=8, seed=7, mem_per_node=1 << 18,
                        l2_size=1 << 14)
    hive = HiveOS(config).start()
    print("Booted Hive: %d cells, file server on cell %d."
          % (config.cells, config.file_server_cell))

    jobs = list(range(config.cells))
    create_build_tree(hive, jobs)
    processes = {}
    for job_id in jobs:
        processes[job_id] = hive.spawn_process(
            job_id, "cc%d" % job_id,
            compile_job(hive, job_id, job_id),
            dependencies={config.file_server_cell})
    for cell in hive.cells:
        hive.sim.spawn(membership_monitor(hive, cell))
    print("Started %d compile jobs." % len(jobs))

    # Let the build get going, then kill cell 5's node.
    hive.sim.run(until=2_000_000)
    victim_cell = 5
    hive.machine.injector.inject(
        FaultSpec.node_failure(hive.cells[victim_cell].lead_node))
    print("t=%.2f ms: node of cell %d failed mid-build."
          % (hive.sim.now / 1e6, victim_cell))

    # Run until the surviving compiles settle.
    manager = hive.machine.recovery_manager

    def settled():
        if manager.in_progress or hive.os_recovery_in_progress:
            return False
        return all(p.state != "running" for p in processes.values()
                   if p.cell.alive)

    hive.sim.run_until(settled, limit=120_000_000_000)

    report = manager.reports[-1]
    _, os_start, os_end = hive.os_recovery_reports[-1]
    print()
    print("Hardware recovery: %.2f ms; OS recovery: %.2f ms."
          % (report.total_duration / 1e6, (os_end - os_start) / 1e6))
    print()
    print("Compile outcomes:")
    for job_id, process in sorted(processes.items()):
        reason = (" (%s)" % process.termination_reason
                  if process.termination_reason else "")
        print("  cc%d on cell %d: %-10s%s"
              % (job_id, job_id, process.state, reason))

    survivors = [j for j, p in processes.items() if p.state == "done"]
    print()
    print("%d of %d compiles finished; only cell %d's compile was lost — "
          "the fault stayed contained to its failure unit."
          % (len(survivors), len(jobs), victim_cell))


if __name__ == "__main__":
    main()
