#!/usr/bin/env python
"""Multi-fault campaign: overlapping faults, crash isolation, shrinking.

Drives the campaign engine end to end:

1. run a small crash-isolated campaign of `fault-during-recovery`
   schedules — a first fault, then a second node death timed to land
   inside a recovery phase (the paper's §4.1 restart rule under stress) —
   streaming resumable JSONL records;
2. replay one schedule deterministically from its record;
3. demonstrate the shrinker on a deliberately noisy failing schedule
   (synthetic predicate, so the example stays fast), printing the
   ready-to-paste repro command.

Run:  python examples/multi_fault_campaign.py [runs]
"""

import sys
import tempfile

from repro.campaign import (
    CampaignRunner,
    FaultSchedule,
    TimedFault,
    repro_command,
    shrink_schedule,
)
from repro.campaign.records import load_records
from repro.campaign.runner import run_schedule_isolated
from repro.faults.models import FaultSpec


def main(runs=4):
    out = tempfile.NamedTemporaryFile(
        suffix=".jsonl", prefix="campaign_", delete=False)
    out.close()

    print("== 1. crash-isolated campaign (%d runs) ==" % runs)
    runner = CampaignRunner(
        kind="fault-during-recovery", runs=runs, campaign_seed=7,
        num_nodes=8, topology="mesh", out_path=out.name,
        progress=lambda record: print(
            "  run %d [%s] %s" % (record.run_index, record.status.value,
                                  record.schedule["name"])))
    summary = runner.run()
    print(summary)
    print("records: %s (re-running resumes from here)" % out.name)

    print("\n== 2. deterministic replay of run 0 ==")
    record = load_records(out.name)[0]
    replayed = run_schedule_isolated(
        FaultSchedule.from_dict(record.schedule), record.seed)
    print("  original: %s   replay: %s" % (record.status.value,
                                           replayed.status.value))

    print("\n== 3. shrinking a noisy failing schedule ==")
    noise = [TimedFault(FaultSpec.false_alarm(n), time=100_000.0 * n)
             for n in (1, 3, 5)]
    culprit = TimedFault(FaultSpec.node_failure(2), time=654_321.0)
    noisy = FaultSchedule(entries=tuple(noise + [culprit]),
                          num_nodes=8, topology="mesh", name="noisy")

    def still_fails(candidate):
        # Stand-in predicate: the "bug" needs exactly the node-2 death.
        # Real use: run_schedule_isolated(candidate, seed) != PASS.
        return any(spec.target == 2 and not spec.is_link_fault
                   for spec in candidate.specs())

    result = shrink_schedule(noisy, still_fails)
    print("  %s" % result)
    for step in result.steps:
        print("    -", step)
    print("  minimal repro: %s" % repro_command(result.schedule, seed=7))
    return 0 if summary.ok else 1


if __name__ == "__main__":
    raise SystemExit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 4))
