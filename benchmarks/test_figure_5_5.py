"""Figure 5.5 — total hardware recovery times vs. machine size (paper §5.3).

Paper: mesh configurations of 2-128 nodes (1 MB memory/node, 1 MB L2);
curves for P1, P1+P2, P1+P2+P3, and total.  For large systems recovery is
dominated by the dissemination phase (P2), which grows with the diameter of
the interconnect; it therefore scales better on the fat-hypercube topology.

Shape assertions:
* cumulative phase times are ordered P1 <= P1,2 <= P1,2,3 <= total;
* total recovery time grows with node count;
* P2's share of the total grows with node count (it dominates at scale);
* at the largest common size, the hypercube's P2 is shorter than the
  mesh's.
"""

from benchmarks.helpers import full_sweeps, once, save_result
from repro.analysis.tables import format_series, shape_check_monotone
from repro.core.experiment import run_recovery_scalability

# Paper configuration: 1 MB/node, 1 MB L2; scaled down by default so the
# default sweep stays minutes-fast (the P4 term simply shrinks with it).
MEM_PER_NODE = 1 << 18
L2_SIZE = 1 << 16


def sweep_sizes():
    if full_sweeps():
        return [2, 8, 16, 32, 64, 128], [2, 8, 16, 32, 64, 128]
    return [2, 8, 16, 32], [2, 8, 16, 32]


def measure(num_nodes, topology):
    report = run_recovery_scalability(
        num_nodes, topology=topology,
        mem_per_node=MEM_PER_NODE, l2_size=L2_SIZE)
    return {
        "P1": report.phase_duration_from_trigger("P1"),
        "P12": report.phase_duration_from_trigger("P2"),
        "P123": report.phase_duration_from_trigger("P3"),
        "total": report.total_duration,
    }


def run_sweep():
    mesh_sizes, cube_sizes = sweep_sizes()
    mesh = {n: measure(n, "mesh") for n in mesh_sizes}
    cube = {n: measure(n, "hypercube") for n in cube_sizes}
    return mesh, cube


def test_figure_5_5(benchmark):
    mesh, cube = once(benchmark, run_sweep)

    def rows(data):
        return [
            (n,
             "%.2f" % (d["P1"] / 1e6),
             "%.2f" % (d["P12"] / 1e6),
             "%.2f" % (d["P123"] / 1e6),
             "%.2f" % (d["total"] / 1e6))
            for n, d in sorted(data.items())
        ]

    text = format_series(
        "Figure 5.5 — hardware recovery times, mesh "
        "(%d KB mem/node, %d KB L2)" % (MEM_PER_NODE >> 10, L2_SIZE >> 10),
        "nodes", ["P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]"],
        rows(mesh))
    text += "\n\n" + format_series(
        "Figure 5.5 — hypercube topology (P2 grows with the smaller "
        "diameter)",
        "nodes", ["P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]"],
        rows(cube))
    text += ("\n\nPaper shape: total ~tens of ms at 8 nodes rising to "
             "~200 ms at 128 nodes (mesh), P2 dominating at scale and "
             "growing slower on the hypercube.")
    save_result("figure_5_5", text)

    sizes = sorted(mesh)
    for n in sizes:
        d = mesh[n]
        assert d["P1"] <= d["P12"] <= d["P123"] <= d["total"]

    totals = [mesh[n]["total"] for n in sizes]
    assert shape_check_monotone(totals, tolerance=0.10)

    # P2 dominance grows with machine size.
    def p2_share(d):
        return (d["P12"] - d["P1"]) / d["total"]

    assert p2_share(mesh[sizes[-1]]) > p2_share(mesh[sizes[1]])
    # P2 dominates outright in the full sweep (128 nodes); in the scaled
    # default sweep it must at least be the largest growing component.
    threshold = 0.5 if full_sweeps() else 0.3
    assert p2_share(mesh[sizes[-1]]) > threshold

    # Hypercube disseminates faster than the mesh once the mesh diameter
    # pulls away (>= 64 nodes); at small sizes the diameters are too close
    # for the effect to show (the paper's own curves diverge at scale).
    largest = sizes[-1]
    if largest >= 64:
        mesh_p2 = mesh[largest]["P12"] - mesh[largest]["P1"]
        cube_p2 = cube[largest]["P12"] - cube[largest]["P1"]
        assert cube_p2 < mesh_p2
