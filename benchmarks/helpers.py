"""Shared scaffolding for the paper-reproduction benches.

Every bench reproduces one table or figure from the paper's evaluation
(§5, §6.2).  Absolute numbers differ from the paper's testbed; the *shape*
is asserted and both the paper's values and ours are written to
``benchmarks/results/`` for EXPERIMENTS.md.

Scaling knobs (environment variables):

* ``REPRO_RUNS`` — runs per fault type for the tables (default 6; the
  paper used 200+ per type);
* ``REPRO_FULL=1`` — run the full figure sweeps (up to 128 nodes and the
  paper's memory sizes); several minutes of wall time.
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def runs_per_type(default=6):
    return int(os.environ.get("REPRO_RUNS", default))


def full_sweeps():
    return os.environ.get("REPRO_FULL", "0") == "1"


def save_result(name, text):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("%s.txt" % name)
    path.write_text(text + "\n")
    print()
    print(text)
    return path


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
