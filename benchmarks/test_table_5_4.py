"""Table 5.4 — end-to-end recovery experiments (paper §5.2).

Paper: 1187 runs of parallel make on 8-cell Hive with injected faults;
  node failure   310 runs / 29 failed
  router failure 215 runs / 20 failed
  infinite loop  394 runs / 28 failed
  link failure   268 runs / 22 failed
  total 99 failed (8.4%); "91.6% of the runs correctly finished executing
  the compiles that were not affected by the fault"; all failures were OS
  bugs on incoherent lines, not incorrect hardware recovery.

This bench keeps the paper's run-count proportions (scaled by REPRO_RUNS)
and runs with the Hive-bug emulation on; asserting the shape: hardware
recovery always completes, a large majority of runs succeed, and the
failures that do occur are OS-bug cell crashes.
"""

import random

from benchmarks.helpers import once, runs_per_type, save_result
from repro.analysis.tables import format_table
from repro.faults.models import FaultSpec, FaultType
from repro.hive.endtoend import run_end_to_end_experiment
from repro.hive.os import HiveConfig

#: run-count proportions from the paper's Table 5.4 (per REPRO_RUNS unit)
PAPER_MIX = [
    (FaultType.NODE_FAILURE, 310),
    (FaultType.ROUTER_FAILURE, 215),
    (FaultType.LINK_FAILURE, 268),
    (FaultType.INFINITE_LOOP, 394),
]

BUG_RATE = 0.2    # calibrated so the failed-run fraction lands near the paper's 8%


def run_batch():
    scale = runs_per_type() / 6.0
    rng = random.Random(54)
    rows = []
    hw_failures = 0
    total = 0
    total_failed = 0
    for fault_type, paper_runs in PAPER_MIX:
        runs = max(2, round(paper_runs / 310 * 10 * scale))
        failed = 0
        for _ in range(runs):
            seed = rng.randrange(1 << 30)
            config = HiveConfig(seed=seed,
                                os_incoherent_bug_rate=BUG_RATE)
            from repro.interconnect.topology import make_topology
            topology = make_topology("mesh", config.num_nodes)
            fault = FaultSpec.random(rng, topology, fault_type)
            delay = rng.uniform(1_000_000.0, 5_000_000.0)
            result = run_end_to_end_experiment(
                fault, hive_config=config, inject_delay=delay, seed=seed)
            if not result.recovered:
                hw_failures += 1
            if result.failed:
                failed += 1
        rows.append((fault_type.value, runs, failed))
        total += runs
        total_failed += failed
    rows.append(("Total", total, total_failed))
    return rows, hw_failures, total, total_failed


def test_table_5_4(benchmark):
    rows, hw_failures, total, total_failed = once(benchmark, run_batch)

    paper = [("Node failure", 310, 29), ("Router failure", 215, 20),
             ("Link failure", 268, 22), ("Infinite loop in MAGIC", 394, 28),
             ("Total", 1187, 99)]
    text = format_table(
        "Table 5.4 — End-to-end recovery experiments (reproduction, "
        "Hive-bug emulation rate %.2f)" % BUG_RATE,
        ["Injected fault type", "# of experiments", "# of failed"],
        rows)
    text += "\nfailed-run fraction: %.1f%% (paper: 8.4%%)" % (
        100.0 * total_failed / total)
    text += "\n\n" + format_table(
        "Paper (Table 5.4)",
        ["Injected fault type", "# of experiments", "# of failed"],
        paper)
    save_result("table_5_4", text)

    # Shape: hardware recovery always ran; failures are a small minority
    # (the paper's 8.4% — OS bugs, not hardware recovery).
    assert hw_failures == 0
    assert total_failed / total < 0.35
