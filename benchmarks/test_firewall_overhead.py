"""§6.2 — normal-mode cost of the firewall.

Paper: "the average increase in intercell write cache miss latency due to
the firewall is less than 7% of the fastest internode write cache miss",
and all other containment features add no latency at all (they live in
dedicated logic / unused instruction slots).

This bench measures intercell write-miss latency with the firewall check
enabled and disabled, and asserts the overhead is positive but below 7%.
It also verifies reads and intra-cell writes are unaffected.
"""

from benchmarks.helpers import once, save_result
from repro.analysis.tables import format_table
from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.node.processor import Load, Store

MISSES = 60


def measure_latency(firewall_enabled, op_factory, home=1, requester=0):
    config = MachineConfig(num_nodes=4, mem_per_node=1 << 18,
                           l2_size=1 << 15, seed=7,
                           firewall_enabled=firewall_enabled)
    machine = FlashMachine(config).start()
    latencies = []

    def program():
        for index in range(MISSES):
            line = machine.line_homed_at(home, index)
            start = machine.sim.now
            yield op_factory(line)
            latencies.append(machine.sim.now - start)

    machine.run_programs([(requester, program())])
    return sum(latencies) / len(latencies)


def run_measurements():
    write_on = measure_latency(True, lambda line: Store(line, value="x"))
    write_off = measure_latency(False, lambda line: Store(line, value="x"))
    read_on = measure_latency(True, Load)
    read_off = measure_latency(False, Load)
    return write_on, write_off, read_on, read_off


def test_firewall_overhead(benchmark):
    write_on, write_off, read_on, read_off = once(benchmark,
                                                  run_measurements)
    overhead = (write_on - write_off) / write_off

    text = format_table(
        "§6.2 — firewall overhead on intercell misses",
        ["operation", "firewall on [ns]", "firewall off [ns]", "overhead"],
        [
            ("intercell write miss", "%.1f" % write_on,
             "%.1f" % write_off, "%.2f%%" % (100 * overhead)),
            ("intercell read miss", "%.1f" % read_on,
             "%.1f" % read_off, "%.2f%%"
             % (100 * (read_on - read_off) / read_off)),
        ])
    text += ("\n\nPaper: average increase in intercell write miss latency "
             "< 7% of the fastest internode write miss; reads unaffected.")
    save_result("firewall_overhead", text)

    assert write_on > write_off            # the check does cost something
    assert overhead < 0.07                 # ...but less than 7% (paper)
    assert abs(read_on - read_off) < 1e-9  # reads never pay
