"""Ablation (§4.3) — deferred BFT computation via hints.

Paper: "If every node computes the BFT as soon as its knowledge about the
state of the system has stabilized, BFT computations on neighboring nodes
will be chained during consecutive rounds instead of proceeding in
parallel.  To avoid the serialization of those computations ... nodes that
receive a hint defer their BFT computation until the end of the
dissemination phase, when all the deferred computations occur in parallel."

We measure P2 duration with and without the hint mechanism.
"""

from benchmarks.helpers import once, save_result
from repro.analysis.tables import format_table
from repro.core.experiment import run_recovery_scalability

NODES = 32


def dissemination_time(hints):
    report = run_recovery_scalability(
        NODES, mem_per_node=1 << 17, l2_size=1 << 14,
        config_overrides={"bft_hints": hints})
    return (report.phase_duration_from_trigger("P2")
            - report.phase_duration_from_trigger("P1"))


def run_measurements():
    return dissemination_time(True), dissemination_time(False)


def test_ablation_bft_hints(benchmark):
    with_hints, without = once(benchmark, run_measurements)

    text = format_table(
        "Ablation — BFT hint deferral (%d nodes)" % NODES,
        ["variant", "dissemination (P2) [ms]"],
        [
            ("hints ON (deferred BFT)", "%.2f" % (with_hints / 1e6)),
            ("hints OFF (eager BFT)", "%.2f" % (without / 1e6)),
        ])
    save_result("ablation_bft_hints", text)

    # Without hints every node computes the BFT eagerly inside its round
    # loop, stretching the phase.
    assert with_hints <= without * 1.02
