"""Smoke bench for the sim-core micro-benchmark suite (DESIGN.md §12).

Runs a scaled-down version of every micro-bench, checks the payload
shape the CI perf gate consumes, and saves the human-readable table to
``benchmarks/results/``.  The full-size suite (and the regression gate)
runs via ``repro.cli bench --micro`` in the perf-smoke CI job.
"""

from benchmarks.helpers import save_result

from repro.telemetry.microbench import (
    MICRO_BENCHES,
    baseline_from_payload,
    check_against_baseline,
    micro_table,
    run_micro_suite,
)


def test_micro_suite_smoke():
    payload = run_micro_suite(seed=0, repeats=1, scale=0.1)
    assert payload["benchmark"] == "simcore-micro"
    names = [result["name"] for result in payload["results"]]
    assert names == list(MICRO_BENCHES)
    for result in payload["results"]:
        assert result["events_executed"] > 0
        assert result["events_per_sec"] is None or result["events_per_sec"] > 0
        # Compaction keeps even the timeout-heavy heap within a small
        # multiple of the live event population.
        assert result["max_heap"] <= 8 * max(1, result["max_live_pending"])

    # The gate passes against a baseline derived from this very run and
    # trips against an impossible one.
    baseline = baseline_from_payload(payload, margin=0.5)
    assert check_against_baseline(payload, baseline) == []
    impossible = {"events_per_sec": {
        name: 10 ** 12 for name in MICRO_BENCHES}}
    failures = check_against_baseline(payload, impossible)
    assert len(failures) == len(MICRO_BENCHES)

    save_result("simcore_microbench", micro_table(payload))
