"""Ablation (§4.2) — speculative neighbor pings.

Paper: "As an optimization to speed up recovery triggering, nodes
speculatively send ping packets to their immediate neighbors before
performing the cwn exploration.  We have found that in FLASH this heuristic
can lead to a fivefold increase in the speed at which recovery is
triggered."

We measure the time from fault detection until the *last* node has entered
recovery (end of its P1 entry work), with and without speculative pings.
"""

from benchmarks.helpers import once, save_result
from repro.analysis.tables import format_table
from repro.core.experiment import run_recovery_scalability

NODES = 16


def trigger_spread_time(speculative):
    report = run_recovery_scalability(
        NODES, mem_per_node=1 << 17, l2_size=1 << 14,
        config_overrides={"speculative_pings": speculative})
    # P1 ends on each node after its local exploration; the wave-spread
    # effect shows up as when the *whole machine* finishes P1.
    return report.phase_duration_from_trigger("P1")


def run_measurements():
    with_pings = trigger_spread_time(True)
    without_pings = trigger_spread_time(False)
    return with_pings, without_pings


def test_ablation_speculative_pings(benchmark):
    with_pings, without = once(benchmark, run_measurements)
    speedup = without / with_pings

    text = format_table(
        "Ablation — speculative pings (%d nodes)" % NODES,
        ["variant", "trigger spread (P1 end) [ms]"],
        [
            ("speculative pings ON", "%.2f" % (with_pings / 1e6)),
            ("speculative pings OFF", "%.2f" % (without / 1e6)),
            ("speedup", "%.2fx (paper: ~5x trigger speedup)" % speedup),
        ])
    save_result("ablation_speculative_pings", text)

    assert with_pings < without   # the optimization must help
