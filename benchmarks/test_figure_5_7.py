"""Figure 5.7 — end-to-end recovery times (paper §5.3).

Paper: applications that continue running after a fault are suspended for
the duration of hardware recovery (HW) plus Hive's OS recovery (HW+OS),
measured at 2-16 nodes with one Hive cell per node (16 MB/node, 1 MB L2).
OS recovery scales with the number of cells rather than nodes.

Shape assertions: HW < HW+OS everywhere; both grow with node count; the OS
part grows roughly linearly with cell count.
"""

from benchmarks.helpers import full_sweeps, once, save_result
from repro.analysis.tables import format_series, shape_check_monotone
from repro.faults.models import FaultSpec
from repro.hive.endtoend import run_end_to_end_experiment
from repro.hive.os import HiveConfig


def sweep_sizes():
    return [2, 4, 8, 16]


def measure(cells):
    mem = (16 << 20) if full_sweeps() else (1 << 18)
    l2 = (1 << 20) if full_sweeps() else (1 << 14)
    config = HiveConfig(cells=cells, nodes_per_cell=1, seed=1000 + cells,
                        mem_per_node=mem, l2_size=l2)
    fault = FaultSpec.node_failure(cells - 1)
    result = run_end_to_end_experiment(fault, hive_config=config,
                                       inject_delay=1_500_000.0)
    return result.hw_recovery_ns, result.os_recovery_ns


def run_sweep():
    return {cells: measure(cells) for cells in sweep_sizes()}


def test_figure_5_7(benchmark):
    data = once(benchmark, run_sweep)

    rows = [
        (cells, "%.2f" % (hw / 1e6), "%.2f" % ((hw + os) / 1e6))
        for cells, (hw, os) in sorted(data.items())
    ]
    text = format_series(
        "Figure 5.7 — end-to-end recovery times "
        "(1 Hive cell/node)",
        "nodes", ["HW [ms]", "HW+OS [ms]"], rows)
    text += ("\n\nPaper shape: user processes are suspended for HW then OS "
             "recovery; OS recovery scales with cells, not nodes.")
    save_result("figure_5_7", text)

    sizes = sorted(data)
    for cells in sizes:
        hw, os = data[cells]
        assert hw > 0 and os > 0

    hw_series = [data[c][0] for c in sizes]
    total_series = [data[c][0] + data[c][1] for c in sizes]
    assert shape_check_monotone(hw_series, tolerance=0.15)
    assert shape_check_monotone(total_series, tolerance=0.10)

    # OS recovery cost is linear in the number of surviving cells.
    os_small = data[sizes[0]][1]
    os_large = data[sizes[-1]][1]
    assert os_large > os_small
