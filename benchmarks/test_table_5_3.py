"""Table 5.3 — validation experiments (paper §5.2).

Paper: 200 runs per fault type, 0 failed experiments, for node failure,
router failure, link failure, infinite loop, and false alarm.

This bench runs ``REPRO_RUNS`` runs per type (scaled down by default) of
the same methodology — random shared/exclusive cache fill, injection,
recovery, full-memory check against the simulator oracle — and asserts the
paper's headline result: **zero failed experiments**.
"""

from benchmarks.helpers import once, runs_per_type, save_result
from repro.analysis.tables import format_table
from repro.core.config import MachineConfig
from repro.core.experiment import run_validation_experiment
from repro.faults.models import TABLE_5_2_FAULT_TYPES, FaultSpec


def bench_config(seed):
    return MachineConfig(num_nodes=8, mem_per_node=1 << 16,
                         l2_size=1 << 13, seed=seed)


def random_fault(rng, fault_type, topology):
    return FaultSpec.random(rng, topology, fault_type)


def run_batch():
    import random
    runs = runs_per_type()
    rng = random.Random(533)
    rows = []
    failures_by_type = {}
    all_problems = []
    # The paper's table covers its original five fault classes; the
    # transient campaign-engine models are exercised elsewhere.
    for fault_type in TABLE_5_2_FAULT_TYPES:
        failed = 0
        for run_index in range(runs):
            seed = rng.randrange(1 << 30)
            config = bench_config(seed)
            # Build a topology stand-in to draw a random target from.
            from repro.interconnect.topology import make_topology
            topology = make_topology(config.topology, config.num_nodes)
            fault = random_fault(rng, fault_type, topology)
            result = run_validation_experiment(fault, config=config,
                                               seed=seed)
            if not result.passed:
                failed += 1
                all_problems.append((fault, result.problems[:3]))
        failures_by_type[fault_type] = (runs, failed)
        rows.append((fault_type.value, runs, failed))
    return rows, failures_by_type, all_problems


def test_table_5_3(benchmark):
    rows, failures_by_type, problems = once(benchmark, run_batch)

    paper = [("Node failure", 200, 0), ("Router failure", 200, 0),
             ("Link failure", 200, 0), ("Infinite loop in MAGIC", 200, 0),
             ("False alarm", 200, 0)]
    text = format_table(
        "Table 5.3 — Validation experiments (reproduction)",
        ["Injected fault type", "# of experiments", "# of failed"],
        rows)
    text += "\n\n" + format_table(
        "Paper (Table 5.3)",
        ["Injected fault type", "# of experiments", "# of failed"],
        paper)
    if problems:
        text += "\n\nFailures:\n" + "\n".join(
            "  %s: %s" % (fault, probs) for fault, probs in problems)
    save_result("table_5_3", text)

    # The paper's headline: no validation run fails.
    for fault_type, (runs, failed) in failures_by_type.items():
        assert failed == 0, (fault_type, problems)
