"""Recovery scalability sweep — the `repro.cli bench` harness under
pytest-benchmark (paper §5.3 / Figure 5.5, telemetry edition).

Sweeps machine sizes for the canonical worst-placement fault (highest-id
node, farthest from the detection probe) and asserts the paper's headline
claim: recovery latency grows sub-linearly in machine size.  The default
sweep stops at 32 nodes to stay CI-fast; ``REPRO_FULL=1`` runs the full
4-128 Figure 5.5 range.
"""

from benchmarks.helpers import full_sweeps, once, save_result
from repro.telemetry.scalability import (
    DEFAULT_SIZES,
    run_scalability_sweep,
    scalability_table,
    sweep_ok,
)


def sweep_sizes():
    if full_sweeps():
        return DEFAULT_SIZES
    return tuple(n for n in DEFAULT_SIZES if n <= 32)


def run_sweep():
    return run_scalability_sweep(sizes=sweep_sizes())


def test_scalability_sweep(benchmark):
    payload = once(benchmark, run_sweep)

    text = scalability_table(payload)
    text += ("\n\nPaper shape (§5.3): total recovery stays in the tens of "
             "ms as the machine grows; the latency ratio across the sweep "
             "stays below the node-count ratio (sub-linear growth).")
    save_result("scalability", text)

    # Every sweep point must finish recovery (the CI bench gate).
    assert sweep_ok(payload)

    # Cumulative phase latencies are ordered at every point.
    for result in payload["results"]:
        recovery = result["recovery"]
        assert (recovery["P1_ms"] <= recovery["P12_ms"]
                <= recovery["P123_ms"] <= recovery["total_ms"])

    # The headline claim: sub-linear latency growth for every fault class.
    for fault_class, verdict in payload["sublinear"].items():
        assert verdict["ok"], (fault_class, verdict)
