"""Figure 5.6 — cache coherence protocol recovery times (paper §5.3).

Paper (4 nodes): the cache-flush/writeback step (WB) scales linearly with
the second-level cache size (0.5-4 MB sweep at 4 MB/node), and the
directory reset part of P4 scales linearly with the amount of memory per
node (1-64 MB sweep at 1 MB L2).

Shape assertions: both series are increasing and close to linear (the
ratio of endpoint slopes stays near 1).
"""

from benchmarks.helpers import full_sweeps, once, save_result
from repro.analysis.tables import format_series, shape_check_monotone
from repro.core.experiment import run_recovery_scalability
from repro.faults.models import FaultSpec

NODES = 4


def l2_sweep_sizes():
    if full_sweeps():
        return [1 << 19, 1 << 20, 1 << 21, 1 << 22]       # 0.5-4 MB (paper)
    return [1 << 16, 1 << 17, 1 << 18, 1 << 19]           # scaled 1/8


def mem_sweep_sizes():
    if full_sweeps():
        return [1 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20]   # paper
    return [1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21]          # scaled


def measure(mem_per_node, l2_size):
    report = run_recovery_scalability(
        NODES, mem_per_node=mem_per_node, l2_size=l2_size,
        fault=FaultSpec.node_failure(NODES - 1), fill_fraction=0.4)
    p4 = report.phase_durations.get("P4", 0.0)
    wb = report.wb_duration
    return wb, p4


def run_sweeps():
    l2_points = []
    for l2_size in l2_sweep_sizes():
        wb, p4 = measure(mem_per_node=max(4 * l2_size, 1 << 18),
                         l2_size=l2_size)
        l2_points.append((l2_size, wb, p4))
    mem_points = []
    for mem in mem_sweep_sizes():
        wb, p4 = measure(mem_per_node=mem, l2_size=1 << 16)
        mem_points.append((mem, wb, p4))
    return l2_points, mem_points


def test_figure_5_6(benchmark):
    l2_points, mem_points = once(benchmark, run_sweeps)

    text = format_series(
        "Figure 5.6 (left) — flush/WB time vs. L2 size (%d nodes)" % NODES,
        "L2 [KB]", ["WB [ms]", "P4 [ms]"],
        [(size >> 10, "%.2f" % (wb / 1e6), "%.2f" % (p4 / 1e6))
         for size, wb, p4 in l2_points])
    text += "\n\n" + format_series(
        "Figure 5.6 (right) — P4 time vs. memory per node "
        "(%d nodes, 64 KB L2)" % NODES,
        "mem/node [KB]", ["WB [ms]", "P4 [ms]"],
        [(size >> 10, "%.2f" % (wb / 1e6), "%.2f" % (p4 / 1e6))
         for size, wb, p4 in mem_points])
    text += ("\n\nPaper shape: WB linear in L2 size; the directory-reset "
             "part of P4 linear in memory per node.")
    save_result("figure_5_6", text)

    # WB grows linearly with L2 size.
    wb_values = [wb for _, wb, _ in l2_points]
    assert shape_check_monotone(wb_values)
    first_slope = wb_values[1] / wb_values[0]
    size_ratio = l2_sweep_sizes()[1] / l2_sweep_sizes()[0]
    assert 0.6 * size_ratio <= first_slope <= 1.4 * size_ratio

    # P4 grows linearly with memory per node.
    p4_values = [p4 for _, _, p4 in mem_points]
    assert shape_check_monotone(p4_values)
    mem_sizes = mem_sweep_sizes()
    big_ratio = mem_sizes[-1] / mem_sizes[0]
    # Subtract the L2-dependent floor (constant across the sweep) before
    # checking linearity in the memory term.
    floor = p4_values[0] - (p4_values[-1] - p4_values[0]) / (big_ratio - 1)
    grow = (p4_values[-1] - floor) / (p4_values[0] - floor)
    assert 0.5 * big_ratio <= grow <= 1.6 * big_ratio
