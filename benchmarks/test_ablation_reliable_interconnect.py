"""Ablation (§6.3) — reliable-interconnect (HAL-style) coherence recovery.

Paper: "With a reliable interconnect, the cache flush step could be
eliminated, but the directories would still have to be scanned and their
state updated to reflect the loss of memory lines cached either shared or
exclusive in the failed portion of the machine."

We compare the coherence-recovery phase (P4) between the FLASH design
(flush + all-to-all + scan) and the reliable-interconnect variant
(scan-only), on the same quiesced node-failure scenario.
"""

from benchmarks.helpers import once, save_result
from repro.analysis.tables import format_table
from repro.core.experiment import run_recovery_scalability
from repro.faults.models import FaultSpec

NODES = 8
L2 = 1 << 17     # a sizeable cache makes the flush term visible
MEM = 1 << 18


def p4_time(reliable):
    report = run_recovery_scalability(
        NODES, mem_per_node=MEM, l2_size=L2,
        fault=FaultSpec.node_failure(NODES - 1), fill_fraction=0.5,
        config_overrides={"reliable_interconnect_p4": reliable})
    return report.phase_durations.get("P4", 0.0), report.wb_duration


def run_measurements():
    return p4_time(False), p4_time(True)


def test_ablation_reliable_interconnect(benchmark):
    (flush_p4, flush_wb), (scan_p4, scan_wb) = once(benchmark,
                                                    run_measurements)
    text = format_table(
        "Ablation — P4 with vs. without the cache flush "
        "(%d nodes, %d KB L2)" % (NODES, L2 >> 10),
        ["variant", "P4 [ms]", "flush/WB part [ms]"],
        [
            ("FLASH (flush + scan)", "%.2f" % (flush_p4 / 1e6),
             "%.2f" % (flush_wb / 1e6)),
            ("reliable interconnect (scan only)", "%.2f" % (scan_p4 / 1e6),
             "%.2f" % (scan_wb / 1e6)),
        ])
    text += ("\n\nPaper §6.3: with end-to-end reliable coherence transport "
             "the flush can be eliminated; only the directory scan remains.")
    save_result("ablation_reliable_interconnect", text)

    assert scan_wb == 0.0
    assert scan_p4 < flush_p4   # dropping the flush must shorten P4
