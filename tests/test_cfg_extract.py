"""Flow-sensitive extraction of the coherence transition system.

These tests pin the extraction contract the model checker and the
lint rules both depend on: the real protocol module extracts cleanly
in strict mode, the item vocabulary stays canonical, specs round-trip
through JSON, drift is detectable, and the committed golden spec
matches a fresh extraction of the tree.
"""

import json
import os

import pytest

from repro.lint.extract import (ExtractionError, ProtocolModel,
                                extract_from_source, load_spec, spec_diff)

HERE = os.path.dirname(os.path.abspath(__file__))
PROTOCOL_PATH = os.path.join(
    os.path.dirname(HERE), "src", "repro", "coherence", "protocol.py")
GOLDEN_SPEC_PATH = os.path.join(
    os.path.dirname(HERE), "src", "repro", "coherence",
    "protocol.spec.json")

with open(PROTOCOL_PATH) as _handle:
    SOURCE = _handle.read()

ITEM_TAGS = {
    "acks_dec", "assert", "bind", "cache", "fanout", "guard", "hook",
    "io", "lock", "mem_write", "scrub", "send", "sharers_add", "stat",
    "stray", "unlock", "write",
}


@pytest.fixture(scope="module")
def model():
    return extract_from_source(SOURCE, strict=True)


class TestRealModuleExtraction:
    def test_full_handler_table_extracts_strictly(self, model):
        assert model.issues == []
        assert len(model.handlers) == 13
        assert len(model.transitions) == 55

    def test_every_transition_is_canonical(self, model):
        spec = model.to_spec()
        for transition in spec["transitions"]:
            assert transition["kind"] in spec["handlers"]
            assert isinstance(transition["path"], int)
            assert isinstance(transition["occupancy"], str)
            for item in transition["items"]:
                assert item[0] in ITEM_TAGS, item

    def test_entry_flag_atoms_survive_extraction(self, model):
        """Bare truthiness guards on entry fields (``if
        entry.memory_valid:`` in the FWD_MISS handler) must
        canonicalise to ["entry_flag", field], not an opaque atom."""
        found = set()

        def visit(node):
            if isinstance(node, list):
                if node and node[0] == "entry_flag":
                    found.add(node[1])
                for child in node:
                    visit(child)

        for transition in model.to_spec()["transitions"]:
            visit(transition["items"])
        assert "memory_valid" in found

    def test_every_kind_keeps_at_least_one_path(self, model):
        by_kind = model.by_kind()
        assert set(by_kind) == set(model.handlers)
        assert all(by_kind[kind] for kind in by_kind)


class TestDialectEnforcement:
    BAD = SOURCE.replace(
        "        entry = magic.directory.entry(line)\n\n"
        "        if entry.state == DirState.EXCLUSIVE"
        " and entry.owner == writer:",
        "        entry = magic.directory.entry(line)\n"
        "        while value > 0:\n"
        "            value -= 1\n\n"
        "        if entry.state == DirState.EXCLUSIVE"
        " and entry.owner == writer:")

    def test_strict_mode_raises_on_unsupported_flow(self):
        assert self.BAD != SOURCE
        with pytest.raises(ExtractionError) as excinfo:
            extract_from_source(self.BAD, strict=True)
        assert "While" in str(excinfo.value)

    def test_tolerant_mode_reports_issue_and_drops_handler(self):
        model = extract_from_source(self.BAD, strict=False)
        assert any(issue.handler == "_home_put" for issue in model.issues)
        assert [t for t in model.transitions if t.kind == "PUT"] == []
        # The other handlers are unaffected.
        assert any(t.kind == "GETX" for t in model.transitions)


class TestSpecRoundTrip:
    def test_spec_round_trips_through_from_spec(self, model):
        spec = model.to_spec()
        assert ProtocolModel.from_spec(spec).to_spec() == spec

    def test_spec_round_trips_through_json(self, model):
        spec = model.to_spec()
        assert json.loads(json.dumps(spec)) == spec


class TestSpecDiff:
    def test_identical_specs_produce_no_diff(self, model):
        spec = model.to_spec()
        assert spec_diff(spec, spec) == []

    def test_dropped_transition_is_reported(self, model):
        spec = model.to_spec()
        pruned = dict(spec)
        pruned["transitions"] = [t for t in spec["transitions"]
                                 if t["kind"] != "FWD_MISS"]
        drift = spec_diff(spec, pruned)
        assert drift
        assert any("FWD_MISS" in line for line in drift)

    def test_rerouted_handler_is_reported(self, model):
        spec = model.to_spec()
        rerouted = json.loads(json.dumps(spec))
        rerouted["handlers"]["PUT"] = "_home_getx"
        drift = spec_diff(spec, rerouted)
        assert any("PUT" in line and "_home_getx" in line
                   for line in drift)


class TestGoldenSpec:
    def test_committed_spec_matches_fresh_extraction(self, model):
        """Drift gate: editing protocol.py without re-blessing the spec
        (repro.cli verify-protocol --update-spec) must fail here and in
        the model-drift lint rule."""
        golden = load_spec(GOLDEN_SPEC_PATH)
        assert spec_diff(golden, model.to_spec()) == []
