"""Tests for the two optional-feature extensions:

* the R10000 speculative-write model and the firewall's defense against it
  (paper §3.3);
* the reliable-interconnect P4 variant (paper §6.3).
"""

from repro import FlashMachine, MachineConfig, FaultSpec
from repro.common.errors import BusError
from repro.common.types import CacheState, DirState
from repro.node.processor import Compute, Load, SpeculativeStore, Store


def small_config(**overrides):
    defaults = dict(num_nodes=4, mem_per_node=1 << 16, l2_size=1 << 13,
                    seed=19)
    defaults.update(overrides)
    return MachineConfig(**defaults)


class TestSpeculativeStores:
    def test_spec_store_fetches_exclusive_without_writing(self):
        machine = FlashMachine(small_config()).start()
        line = machine.line_homed_at(1)
        results = []

        def program():
            results.append((yield SpeculativeStore(line)))

        machine.run_programs([(0, program())])
        # Exclusive in the cache, but the value is still the memory copy.
        assert machine.nodes[0].cache.state_of(line) == CacheState.EXCLUSIVE
        assert machine.nodes[0].cache.value_of(line) == ("init", line)
        entry = machine.nodes[1].directory.entry(line)
        assert entry.state == DirState.EXCLUSIVE and entry.owner == 0

    def test_spec_store_does_not_change_committed_value(self):
        machine = FlashMachine(small_config()).start()
        line = machine.line_homed_at(1)

        def program():
            yield SpeculativeStore(line)

        machine.run_programs([(0, program())])
        assert machine.oracle.committed_value(line) == ("init", line)

    def test_firewall_blocks_speculative_writes(self):
        """The §3.3 defense: a speculatively fetched line from a protected
        page is refused, so the victim's data cannot die with the
        speculating node."""
        machine = FlashMachine(small_config()).start()
        line = machine.line_homed_at(1)
        page = line - (line % machine.params.page_size)
        machine.nodes[1].magic.set_firewall(page, {1})
        errors = []

        def program():
            result = yield SpeculativeStore(line)
            errors.append(result)

        machine.run_programs([(0, program())])
        assert machine.nodes[0].cache.state_of(line) == CacheState.INVALID
        entry = machine.nodes[1].directory.peek(line)
        assert entry is None or entry.state == DirState.UNOWNED

    def test_speculation_can_destroy_unprotected_data(self):
        """Without the firewall, an incorrectly speculated write can pull
        arbitrary data exclusive into a node that then fails — destroying
        it (the multi-cell hazard of §3.3)."""
        machine = FlashMachine(small_config(firewall_enabled=False)).start()
        line = machine.line_homed_at(1)

        def victim_writer():
            yield Store(line, value="precious")

        machine.run_programs([(2, victim_writer())])
        machine.quiesce()

        def speculator():
            yield SpeculativeStore(line)
            yield Compute(1_000_000_000)   # hold the line

        machine.nodes[3].processor.run_program(speculator())
        machine.run(until=machine.sim.now + 1_000_000)
        assert machine.nodes[3].cache.state_of(line) == CacheState.EXCLUSIVE

        machine.injector.inject(FaultSpec.node_failure(3))
        errors = []

        def reader():
            try:
                yield Load(line)
            except BusError as error:
                errors.append(error.kind.value)

        machine.nodes[0].processor.run_program(reader())
        machine.run_until_recovered(limit=30_000_000_000)
        machine.run(until=machine.sim.now + 5_000_000)
        # The line's only valid copy died with the speculating node.
        assert errors and errors[-1] == "incoherent_line"

    def test_speculation_rate_config_flows_to_processor(self):
        machine = FlashMachine(small_config(speculation_rate=0.25)).start()
        assert machine.nodes[0].processor.speculation_rate == 0.25


class TestReliableInterconnectP4:
    def run_recovery(self, reliable):
        machine = FlashMachine(small_config(
            reliable_interconnect_p4=reliable)).start()
        lines = {
            "survivor_dirty": machine.line_homed_at(1, 0),
            "dead_dirty": machine.line_homed_at(1, 1),
            "shared": machine.line_homed_at(1, 2),
        }

        def survivor():
            yield Store(lines["survivor_dirty"], value="mine")
            yield Load(lines["shared"])

        def doomed():
            yield Store(lines["dead_dirty"], value="doomed")
            yield Load(lines["shared"])

        machine.run_programs([(0, survivor()), (3, doomed())])
        machine.quiesce()
        machine.injector.inject(FaultSpec.node_failure(3))

        def prober():
            try:
                yield Load(machine.line_homed_at(3, 30))
            except BusError:
                pass

        proc = machine.nodes[2].processor.run_program(prober())
        report = machine.run_until_recovered(limit=30_000_000_000)
        machine.run_until(lambda: not proc.alive, limit=40_000_000_000)
        return machine, lines, report

    def test_scan_only_marks_dead_owned_lines(self):
        machine, lines, report = self.run_recovery(reliable=True)
        directory = machine.nodes[1].directory
        assert (directory.entry(lines["dead_dirty"]).state
                == DirState.INCOHERENT)

    def test_scan_only_keeps_survivor_dirty_lines_cached(self):
        machine, lines, report = self.run_recovery(reliable=True)
        # No flush: node 0 still holds its dirty line, directory agrees.
        assert (machine.nodes[0].cache.state_of(lines["survivor_dirty"])
                == CacheState.EXCLUSIVE)
        entry = machine.nodes[1].directory.entry(lines["survivor_dirty"])
        assert entry.state == DirState.EXCLUSIVE and entry.owner == 0

    def test_flush_variant_empties_caches(self):
        machine, lines, report = self.run_recovery(reliable=False)
        assert len(machine.nodes[0].cache) == 0

    def test_scan_only_data_still_readable(self):
        machine, lines, report = self.run_recovery(reliable=True)
        values = []

        def reader():
            values.append((yield Load(lines["survivor_dirty"])))

        machine.nodes[2].processor.run_program(reader())
        machine.run(until=machine.sim.now + 5_000_000)
        assert values == ["mine"]

    def test_scan_only_removes_dead_sharers(self):
        machine, lines, report = self.run_recovery(reliable=True)
        entry = machine.nodes[1].directory.entry(lines["shared"])
        assert 3 not in entry.sharers
