"""Tests for the shared-memory file service and the parallel-make workload."""

from repro.common.types import DirState
from repro.faults.models import FaultSpec
from repro.hive.filesystem import disk_token
from repro.hive.os import HiveConfig, HiveOS
from repro.node.processor import Load
from repro.workloads.pmake import (
    LOG_NAME,
    compile_job,
    create_build_tree,
    expected_object_lines,
    log_line_of,
    object_name,
    source_name,
)


def small_hive(**overrides):
    defaults = dict(cells=4, mem_per_node=1 << 17, l2_size=1 << 13,
                    seed=41)
    defaults.update(overrides)
    return HiveOS(HiveConfig(**defaults)).start()


class TestFileService:
    def test_create_allocates_server_pages(self):
        hive = small_hive()
        pages = hive.file_service.create("f1")
        server_node = hive.cells[0].lead_node
        for page in pages:
            assert hive.machine.address_map.home_of(page) == server_node

    def test_files_do_not_overlap(self):
        hive = small_hive()
        pages_a = hive.file_service.create("a")
        pages_b = hive.file_service.create("b")
        assert not set(pages_a) & set(pages_b)

    def test_initial_contents_are_disk_tokens(self):
        hive = small_hive()
        hive.file_service.create("src")
        line = hive.file_service.lines_of("src")[0]
        memory = hive.machine.nodes[hive.cells[0].lead_node].memory
        assert memory.read_line(line) == disk_token("src", line)

    def test_writers_get_firewall_permission(self):
        hive = small_hive()
        hive.file_service.create("obj", writers={2})
        line = hive.file_service.lines_of("obj")[0]
        page = line - (line % hive.params.page_size)
        magic = hive.cells[0].magic
        writer_node = hive.cells[2].lead_node
        outsider_node = hive.cells[3].lead_node
        assert magic.firewall_allows(page, writer_node)
        assert not magic.firewall_allows(page, outsider_node)

    def test_open_rpc_returns_pages(self):
        hive = small_hive()
        pages = hive.file_service.create("f")
        replies = []

        def caller():
            reply = yield from hive.cells[1].rpc.call(
                0, "fs.open", {"name": "f"})
            replies.append(reply)

        hive.sim.spawn(caller())
        hive.sim.run(until=10_000_000)
        assert replies[0]["pages"] == pages

    def test_open_missing_file_errors(self):
        hive = small_hive()
        replies = []

        def caller():
            reply = yield from hive.cells[1].rpc.call(
                0, "fs.open", {"name": "nope"})
            replies.append(reply)

        hive.sim.spawn(caller())
        hive.sim.run(until=10_000_000)
        assert "error" in replies[0]

    def test_refetch_scrubs_and_restores(self):
        hive = small_hive()
        hive.file_service.create("f")
        line = hive.file_service.lines_of("f")[0]
        home_magic = hive.cells[0].magic
        home_magic.directory.entry(line).unlock(DirState.INCOHERENT)
        replies = []

        def caller():
            reply = yield from hive.cells[1].rpc.call(
                0, "fs.refetch", {"name": "f", "line": line})
            replies.append(reply)

        hive.sim.spawn(caller())
        hive.sim.run(until=10_000_000)
        assert replies[0].get("ok")
        entry = home_magic.directory.entry(line)
        assert entry.state == DirState.UNOWNED


class TestPmakeWorkload:
    def test_build_tree_names(self):
        assert source_name(3) == "src3"
        assert object_name(3) == "obj3"

    def test_create_build_tree_makes_all_files(self):
        hive = small_hive()
        create_build_tree(hive, range(4))
        for job in range(4):
            assert source_name(job) in hive.file_service.files
            assert object_name(job) in hive.file_service.files
        assert LOG_NAME in hive.file_service.files

    def test_log_lines_distinct_per_job(self):
        hive = small_hive()
        create_build_tree(hive, range(4))
        lines = {log_line_of(hive, job) for job in range(4)}
        assert len(lines) == 4

    def test_compile_job_completes_without_faults(self):
        hive = small_hive()
        create_build_tree(hive, range(4))
        process = hive.spawn_process(
            1, "cc1", compile_job(hive, 1, 1), dependencies={0})
        hive.run_until_processes_settle([process], limit=60_000_000_000)
        assert process.state == "done"
        assert process.result == "ok"

    def test_compile_output_matches_expected_tokens(self):
        hive = small_hive()
        create_build_tree(hive, range(4))
        process = hive.spawn_process(
            2, "cc2", compile_job(hive, 2, 2), dependencies={0})
        hive.run_until_processes_settle([process], limit=60_000_000_000)
        machine = hive.machine
        for line, expected in expected_object_lines(hive, 2):
            assert machine.oracle.committed_value(line) == expected

    def test_compile_generates_cross_cell_traffic(self):
        hive = small_hive()
        create_build_tree(hive, range(4))
        process = hive.spawn_process(
            3, "cc3", compile_job(hive, 3, 3), dependencies={0})
        hive.run_until_processes_settle([process], limit=60_000_000_000)
        # The compile on cell 3 must have missed into the server's memory.
        server_magic = hive.cells[0].magic
        assert server_magic.stats.handlers_run > 0
        client_cache = hive.machine.nodes[hive.cells[3].lead_node].cache
        assert client_cache.misses > 0

    def test_compile_survives_recovery_of_unrelated_cell(self):
        hive = small_hive()
        create_build_tree(hive, range(4))
        process = hive.spawn_process(
            1, "cc1", compile_job(hive, 1, 1), dependencies={0})
        from repro.hive.endtoend import membership_monitor
        for cell in hive.cells:
            hive.sim.spawn(membership_monitor(hive, cell))
        hive.sim.run(until=500_000)
        hive.machine.injector.inject(
            FaultSpec.node_failure(hive.cells[3].lead_node))
        hive.run_until_processes_settle([process], limit=120_000_000_000)
        assert process.state == "done", process.termination_reason

    def test_log_read_of_dead_jobs_slot_is_refetched(self):
        """A survivor reading the dead job's log slot exercises the
        incoherent-line refetch path and still completes."""
        hive = small_hive()
        create_build_tree(hive, range(4))
        victim = hive.spawn_process(
            3, "cc3", compile_job(hive, 3, 3), dependencies={0})
        survivor = hive.spawn_process(
            1, "cc1", compile_job(hive, 1, 1), dependencies={0})
        from repro.hive.endtoend import membership_monitor
        for cell in hive.cells:
            hive.sim.spawn(membership_monitor(hive, cell))
        # Let job 3 write its log slot (held exclusive), then kill it.
        hive.sim.run(until=1_200_000)
        hive.machine.injector.inject(
            FaultSpec.node_failure(hive.cells[3].lead_node))
        hive.run_until_processes_settle([survivor], limit=120_000_000_000)
        assert survivor.state == "done", survivor.termination_reason
        assert victim.state in ("terminated", "failed", "done")
