"""Tests for the oracle bookkeeping and the fault injector."""

import random

import pytest

from repro import FlashMachine, MachineConfig
from repro.faults.models import FaultSpec, FaultType
from repro.faults.oracle import Oracle
from repro.interconnect.topology import Mesh2D
from repro.node.memory import initial_value
from repro.node.processor import Store


def machine_with_oracle(seed=3):
    config = MachineConfig(num_nodes=4, mem_per_node=1 << 16,
                           l2_size=1 << 13, seed=seed)
    machine = FlashMachine(config).start()
    return machine, machine.oracle


class TestOracleBookkeeping:
    def test_committed_defaults_to_initial(self):
        oracle = Oracle()
        assert oracle.committed_value(0x80) == initial_value(0x80)

    def test_store_updates_committed(self):
        machine, oracle = machine_with_oracle()
        line = machine.line_homed_at(1)

        def program():
            yield Store(line, value="v1")
            yield Store(line, value="v2")

        machine.run_programs([(0, program())])
        assert oracle.committed_value(line) == "v2"

    def test_put_tracking_balances(self):
        machine, oracle = machine_with_oracle()
        line = machine.line_homed_at(1)

        def program():
            yield Store(line, value="d")
            from repro.node.processor import FlushLine
            yield FlushLine(line)

        machine.run_programs([(0, program())])
        machine.quiesce()
        assert line not in oracle.outstanding_puts

    def test_snapshot_accumulates_across_calls(self):
        machine, oracle = machine_with_oracle()
        line = machine.line_homed_at(1)

        def program():
            yield Store(line, value="owned-by-3")

        machine.run_programs([(3, program())])
        machine.quiesce()
        oracle.snapshot_at_injection(machine, set())
        assert line not in oracle.may_be_incoherent
        oracle.snapshot_at_injection(machine, {3})
        assert line in oracle.may_be_incoherent   # union kept growing

    def test_snapshot_flags_locked_lines(self):
        machine, oracle = machine_with_oracle()
        line = machine.line_homed_at(1)
        from repro.coherence.messages import MessageKind
        machine.nodes[1].directory.entry(line).lock(MessageKind.GETX, 0)
        oracle.snapshot_at_injection(machine, set())
        assert line in oracle.may_be_incoherent

    def test_snapshot_flags_inaccessible_homes(self):
        machine, oracle = machine_with_oracle()
        line = machine.line_homed_at(2)
        machine.nodes[2].directory.entry(line)   # touch it
        oracle.snapshot_at_injection(machine, {2})
        assert line in oracle.inaccessible_homes

    def test_overmarked_lines_empty_when_consistent(self):
        oracle = Oracle()
        oracle.may_be_incoherent = {0x100, 0x200}
        oracle.marked_incoherent = {0x100}
        assert oracle.overmarked_lines() == set()

    def test_overmarked_lines_detects_excess(self):
        oracle = Oracle()
        oracle.may_be_incoherent = {0x100}
        oracle.marked_incoherent = {0x100, 0x300}
        assert oracle.overmarked_lines() == {0x300}


class TestFaultSpec:
    def test_factories(self):
        assert FaultSpec.node_failure(3).fault_type == FaultType.NODE_FAILURE
        assert FaultSpec.link_failure(0, 1).target == (0, 1)
        assert "router_failure" in str(FaultSpec.router_failure(2))

    def test_random_fault_draws_valid_targets(self):
        rng = random.Random(1)
        mesh = Mesh2D(3, 3)
        for _ in range(50):
            spec = FaultSpec.random(rng, mesh)
            if spec.is_link_fault:
                a, b = spec.target
                assert b in dict(
                    mesh.neighbors(a)[p] for p in mesh.neighbors(a)
                ) or any(n == b for _, (n, _) in mesh.neighbors(a).items())
            else:
                assert 0 <= spec.target < 9

    def test_random_fault_fixed_type(self):
        rng = random.Random(2)
        mesh = Mesh2D(2, 2)
        spec = FaultSpec.random(rng, mesh, FaultType.INFINITE_LOOP)
        assert spec.fault_type == FaultType.INFINITE_LOOP


class TestInjector:
    def test_node_failure_kills_node(self):
        machine, _ = machine_with_oracle()
        machine.injector.inject(FaultSpec.node_failure(2))
        assert machine.nodes[2].failed
        assert machine.nodes[2].magic.failed

    def test_router_failure_fails_router_and_links(self):
        machine, _ = machine_with_oracle()
        machine.injector.inject(FaultSpec.router_failure(1))
        assert machine.network.router(1).failed
        assert all(link.failed
                   for link in machine.network.router(1).links.values())

    def test_link_failure(self):
        machine, _ = machine_with_oracle()
        machine.injector.inject(FaultSpec.link_failure(0, 1))
        assert machine.network.link_between(0, 1).failed

    def test_infinite_loop_wedges_magic(self):
        machine, _ = machine_with_oracle()
        machine.injector.inject(FaultSpec.infinite_loop(3))
        assert machine.nodes[3].magic.wedged

    def test_false_alarm_triggers_recovery(self):
        machine, oracle = machine_with_oracle()
        machine.injector.inject(FaultSpec.false_alarm(1))
        assert machine.recovery_manager.in_progress
        assert oracle.recovery_triggers[0] == (1, "false_alarm")

    def test_injection_log_kept(self):
        machine, _ = machine_with_oracle()
        machine.injector.inject(FaultSpec.node_failure(1))
        machine.injector.inject(FaultSpec.link_failure(2, 3))
        assert len(machine.injector.injected) == 2

    def test_scheduled_injection(self):
        machine, _ = machine_with_oracle()
        machine.injector.inject_after(FaultSpec.node_failure(3), 5_000.0)
        assert not machine.nodes[3].failed
        machine.run(until=10_000)
        assert machine.nodes[3].failed

    def test_unknown_fault_type_rejected(self):
        machine, _ = machine_with_oracle()

        class FakeSpec:
            fault_type = "bogus"
            target = 0

        with pytest.raises(ValueError):
            machine.injector.inject(FakeSpec())
