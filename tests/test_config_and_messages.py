"""Tests for machine configuration, message construction, and directories."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.params import TimingParams
from repro.common.types import DirState, Lane
from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.messages import (
    MessageKind,
    flits_for,
    lane_for,
    make_packet,
)
from repro.core.config import MachineConfig


class TestMachineConfig:
    def test_defaults_match_paper_table_5_1(self):
        config = MachineConfig()
        assert config.num_nodes == 8
        assert config.params.line_size == 128
        assert config.l2_size == 1 << 20

    def test_l2_lines(self):
        config = MachineConfig(l2_size=1 << 20)
        assert config.l2_lines == 8192

    def test_invalid_node_count(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_nodes=0)

    def test_unaligned_l2_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(l2_size=1000)

    def test_default_failure_units_one_per_node(self):
        units = MachineConfig(num_nodes=3).resolved_failure_units()
        assert units == [frozenset({0}), frozenset({1}), frozenset({2})]

    def test_partial_failure_units_completed(self):
        config = MachineConfig(num_nodes=4,
                               failure_units=(frozenset({0, 1}),))
        units = config.resolved_failure_units()
        assert frozenset({0, 1}) in units
        assert frozenset({2}) in units and frozenset({3}) in units

    def test_overlapping_units_rejected(self):
        config = MachineConfig(
            num_nodes=4,
            failure_units=(frozenset({0, 1}), frozenset({1, 2})))
        with pytest.raises(ConfigurationError):
            config.resolved_failure_units()


class TestTimingParams:
    def test_recovery_mips_under_2_5(self):
        params = TimingParams()
        assert params.recovery_mips <= 2.6   # paper: under 2.5 MIPS

    def test_recovery_work(self):
        params = TimingParams()
        assert params.recovery_work(1000) == 1000 * 390.0

    def test_data_packet_flits(self):
        params = TimingParams()
        assert params.data_packet_flits() == 1 + 128 // 16

    def test_transfer_time_monotone_in_flits(self):
        params = TimingParams()
        assert (params.packet_transfer_time(9)
                > params.packet_transfer_time(2))


class TestMessages:
    def test_requests_ride_request_lane(self):
        assert lane_for(MessageKind.GET) == Lane.REQUEST
        assert lane_for(MessageKind.GETX) == Lane.REQUEST
        assert lane_for(MessageKind.PUT) == Lane.REQUEST
        assert lane_for(MessageKind.INVAL) == Lane.REQUEST

    def test_replies_ride_reply_lane(self):
        assert lane_for(MessageKind.DATA_SHARED) == Lane.REPLY
        assert lane_for(MessageKind.NAK) == Lane.REPLY
        assert lane_for(MessageKind.BUS_ERROR_REPLY) == Lane.REPLY

    def test_data_messages_are_long(self):
        params = TimingParams()
        assert flits_for(MessageKind.PUT, params) == params.data_packet_flits()
        assert flits_for(MessageKind.NAK, params) == 2

    def test_make_packet_defaults(self):
        params = TimingParams()
        packet = make_packet(params, 0, 1, MessageKind.GET,
                             {"line": 0x100})
        assert packet.lane == Lane.REQUEST
        assert packet.payload["line"] == 0x100

    def test_make_packet_lane_override(self):
        params = TimingParams()
        packet = make_packet(params, 0, 1, MessageKind.PING, {},
                             lane=Lane.RECOVERY_B, source_route=[2, 0])
        assert packet.lane == Lane.RECOVERY_B
        assert packet.is_source_routed


class TestDirectory:
    def make(self):
        return Directory(node_id=1, base_address=0x10000,
                         size_bytes=0x10000, line_size=128)

    def test_owns_range(self):
        directory = self.make()
        assert directory.owns(0x10000)
        assert directory.owns(0x1FF80)
        assert not directory.owns(0x20000)
        assert not directory.owns(0xFF80)

    def test_entry_lazily_created(self):
        directory = self.make()
        assert directory.peek(0x10000) is None
        entry = directory.entry(0x10000)
        assert entry.state == DirState.UNOWNED
        assert directory.peek(0x10000) is entry

    def test_foreign_line_rejected(self):
        with pytest.raises(KeyError):
            self.make().entry(0x100)

    def test_total_lines(self):
        assert self.make().total_lines == 0x10000 // 128

    def test_lock_unlock_cycle(self):
        entry = DirectoryEntry()
        entry.lock(MessageKind.GETX, 5)
        assert entry.is_transient
        assert entry.pending_requester == 5
        entry.unlock(DirState.EXCLUSIVE)
        assert not entry.is_transient
        assert entry.pending_kind is None

    def test_incoherent_lines_listing(self):
        directory = self.make()
        directory.entry(0x10000).unlock(DirState.INCOHERENT)
        directory.entry(0x10080)
        assert directory.incoherent_lines() == [0x10000]

    def test_drop_forgets_entry(self):
        directory = self.make()
        directory.entry(0x10000)
        directory.drop(0x10000)
        assert directory.peek(0x10000) is None
