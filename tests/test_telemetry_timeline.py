"""Tests for recovery-timeline reconstruction (repro.telemetry.timeline).

The timeline must agree with the RecoveryReport the manager builds from
the agents' own phase marks — same trigger, same per-phase latencies, same
completion time — while adding the per-node structure only a trace has.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.experiment import _start_prober
from repro.core.machine import FlashMachine
from repro.faults.models import FaultSpec
from repro.telemetry import Telemetry, build_timelines
from repro.telemetry.timeline import (
    PHASE_ORDER,
    EpisodeTimeline,
    format_timeline,
)
from repro.telemetry.trace import TraceEvent


@pytest.fixture(scope="module")
def traced_recovery():
    """A traced 8-node node-failure recovery: (telemetry, report)."""
    telemetry = Telemetry()
    config = MachineConfig(num_nodes=8, mem_per_node=64 << 10,
                           l2_size=8 << 10, seed=0)
    machine = FlashMachine(config, telemetry=telemetry).start()
    machine.quiesce()
    fault = machine.injector.inject(FaultSpec.node_failure(7))
    _start_prober(machine, fault)
    report = machine.run_until_recovered()
    return telemetry, report


class TestAgainstRecoveryReport:
    def test_one_timeline_per_episode(self, traced_recovery):
        telemetry, _ = traced_recovery
        timelines = build_timelines(telemetry.events)
        assert len(timelines) == 1

    def test_trigger_matches_report(self, traced_recovery):
        telemetry, report = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        assert timeline.trigger_time == report.trigger_time
        assert timeline.trigger_node == report.trigger_node
        assert timeline.trigger_reason == report.trigger_reason

    def test_phase_latencies_match_report(self, traced_recovery):
        telemetry, report = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        for phase in PHASE_ORDER:
            assert (timeline.phase_latency(phase)
                    == report.phase_duration_from_trigger(phase)), phase

    def test_total_duration_matches_report(self, traced_recovery):
        telemetry, report = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        assert timeline.total_duration == report.total_duration
        assert timeline.restarts == report.restarts == 0

    def test_participants_are_the_survivors(self, traced_recovery):
        telemetry, report = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        assert timeline.participating_nodes() == sorted(
            report.available_nodes)

    def test_critical_path_covers_all_phases(self, traced_recovery):
        telemetry, _ = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        path = timeline.critical_path()
        assert set(path) == set(PHASE_ORDER)
        # Latencies from the trigger are cumulative across phases.
        latencies = [path[phase][1] for phase in PHASE_ORDER]
        assert latencies == sorted(latencies)

    def test_per_node_spans_nest_inside_windows(self, traced_recovery):
        telemetry, _ = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        for phase in PHASE_ORDER:
            lo, hi = timeline.phase_window(phase)
            for node in timeline.participating_nodes():
                start, end = timeline.per_node(node)[phase]
                assert lo <= start <= end <= hi

    def test_breakdown_is_json_friendly(self, traced_recovery):
        import json
        telemetry, _ = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        breakdown = json.loads(json.dumps(timeline.breakdown()))
        assert breakdown["phases"]["P1"]["critical_node"] is not None

    def test_format_timeline_mentions_phases(self, traced_recovery):
        telemetry, _ = traced_recovery
        (timeline,) = build_timelines(telemetry.events)
        text = format_timeline(timeline)
        for phase in PHASE_ORDER:
            assert phase in text


def _ev(time, category, name, node=None, **data):
    return TraceEvent(time, category, name, node, data)


class TestRestartHandling:
    def synthetic_restart_events(self):
        return [
            _ev(100.0, "episode", "begin", node=0,
                trigger_node=0, reason="test", epoch=1),
            _ev(110.0, "phase", "enter", node=0, phase="P1", epoch=1),
            _ev(120.0, "phase", "exit", node=0, phase="P1", epoch=1),
            _ev(130.0, "phase", "enter", node=0, phase="P2", epoch=1),
            # New fault mid-P2: restart with a higher epoch; the open P2
            # span never closes.
            _ev(140.0, "episode", "restart", node=0, epoch=2),
            _ev(150.0, "phase", "enter", node=0, phase="P1", epoch=2),
            _ev(160.0, "phase", "exit", node=0, phase="P1", epoch=2),
            _ev(200.0, "episode", "end", epoch=2, available=1),
        ]

    def test_restart_counted_and_final_epoch_selected(self):
        (timeline,) = build_timelines(self.synthetic_restart_events())
        assert timeline.restarts == 1
        assert timeline.final_epoch == 2
        # Only the final epoch's spans define the breakdown.
        assert timeline.phase_latency("P1") == 160.0 - 100.0
        assert timeline.phase_latency("P2") is None

    def test_cut_short_span_keeps_open_end(self):
        (timeline,) = build_timelines(self.synthetic_restart_events())
        p2_spans = [s for s in timeline.spans if s.phase == "P2"]
        assert len(p2_spans) == 1
        assert p2_spans[0].end is None and p2_spans[0].duration is None

    def test_events_before_any_episode_are_ignored(self):
        events = [_ev(5.0, "phase", "enter", node=0, phase="P1", epoch=1),
                  _ev(6.0, "episode", "restart", node=0, epoch=2)]
        assert build_timelines(events) == []

    def test_unfinished_episode_not_emitted(self):
        events = [_ev(1.0, "episode", "begin", node=0,
                      trigger_node=0, reason="r", epoch=1)]
        assert build_timelines(events) == []

    def test_empty_timeline_queries_return_none(self):
        timeline = EpisodeTimeline(0, 10.0, 0, "r")
        assert timeline.total_duration is None
        assert timeline.phase_latency("P1") is None
        assert timeline.phase_window("P1") is None
        assert timeline.critical_node("P1") is None
        assert timeline.critical_path() == {}
