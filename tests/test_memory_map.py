"""Unit tests for the address map and node memory."""

import pytest

from repro.common.errors import ConfigurationError
from repro.node.memory import AddressMap, NodeMemory, initial_value


def make_map(num_nodes=4, mem=1 << 20):
    return AddressMap(num_nodes, mem)


class TestAddressMap:
    def test_home_of_partitions_address_space(self):
        address_map = make_map()
        assert address_map.home_of(0) == 0
        assert address_map.home_of((1 << 20) - 1) == 0
        assert address_map.home_of(1 << 20) == 1
        assert address_map.home_of(4 * (1 << 20) - 1) == 3

    def test_out_of_range_rejected(self):
        address_map = make_map()
        with pytest.raises(ConfigurationError):
            address_map.home_of(4 << 20)
        with pytest.raises(ConfigurationError):
            address_map.home_of(-1)

    def test_line_alignment(self):
        address_map = make_map()
        assert address_map.line_address(0x123) == 0x100
        assert address_map.line_address(0x100) == 0x100

    def test_vector_range_is_low_addresses(self):
        address_map = make_map()
        assert address_map.is_vector_range(0)
        assert address_map.is_vector_range(4095)
        assert not address_map.is_vector_range(4096)

    def test_magic_region_at_top_of_node(self):
        address_map = make_map()
        start = address_map.magic_region_start(1)
        assert address_map.is_magic_region(start)
        assert address_map.is_magic_region(start + 8191)
        assert not address_map.is_magic_region(start - 1)
        assert not address_map.is_magic_region(start + 8192)   # I/O region

    def test_io_region_above_magic_region(self):
        address_map = make_map()
        io_start = address_map.io_region_start(2)
        assert address_map.is_io_region(io_start)
        assert address_map.home_of(io_start) == 2
        assert io_start == address_map.magic_region_start(2) + 8192

    def test_usable_range_excludes_reserved_regions(self):
        address_map = make_map()
        start, end = address_map.usable_range(0)
        assert start == 4096              # node 0 skips the vector range
        assert end == address_map.magic_region_start(0)
        start_1, _ = address_map.usable_range(1)
        assert start_1 == 1 << 20

    def test_usable_lines_are_line_aligned(self):
        address_map = make_map()
        lines = list(address_map.usable_lines(1))
        assert all(line % 128 == 0 for line in lines)
        assert len(lines) == (address_map.usable_range(1)[1]
                              - address_map.usable_range(1)[0]) // 128

    def test_too_small_node_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap(2, 8192)

    def test_unaligned_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap(2, (1 << 20) + 3)


class TestNodeMemory:
    def test_initial_value_is_deterministic(self):
        assert initial_value(0x100) == initial_value(0x100)

    def test_read_before_write_returns_initial(self):
        memory = NodeMemory(1, make_map())
        line = (1 << 20) + 0x100
        assert memory.read_line(line) == initial_value(line)

    def test_write_then_read(self):
        memory = NodeMemory(1, make_map())
        line = (1 << 20) + 0x100
        memory.write_line(line, "data")
        assert memory.read_line(line) == "data"

    def test_foreign_line_rejected(self):
        memory = NodeMemory(1, make_map())
        with pytest.raises(KeyError):
            memory.read_line(0x100)   # homed at node 0
        with pytest.raises(KeyError):
            memory.write_line(0x100, "x")

    def test_vector_replica_is_per_node(self):
        map_ = make_map()
        value_1 = NodeMemory(1, map_).read_vector(0x80)
        value_2 = NodeMemory(2, map_).read_vector(0x80)
        assert value_1 != value_2
