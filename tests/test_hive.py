"""Tests for the Hive OS model: RPC, cells, containment, OS recovery."""

import pytest

from repro.faults.models import FaultSpec
from repro.hive.os import HiveConfig, HiveOS
from repro.hive.rpc import CellDownError
from repro.node.processor import Load, Store


def small_hive(cells=4, **overrides):
    defaults = dict(cells=cells, mem_per_node=1 << 16, l2_size=1 << 13,
                    seed=21)
    defaults.update(overrides)
    return HiveOS(HiveConfig(**defaults)).start()


class TestRpc:
    def test_basic_call(self):
        hive = small_hive()
        hive.cells[1].rpc.register(
            "echo", lambda caller, payload: {"echo": payload, "from": caller})
        results = []

        def caller():
            reply = yield from hive.cells[0].rpc.call(1, "echo", "hello")
            results.append(reply)

        hive.sim.spawn(caller())
        hive.sim.run(until=10_000_000)
        assert results == [{"echo": "hello", "from": 0}]

    def test_handler_runs_exactly_once_despite_retransmits(self):
        hive = small_hive()
        executions = []
        hive.cells[1].rpc.register(
            "count", lambda caller, payload: executions.append(1) or {"n": 1})
        # Force retransmissions by making the first sends vanish: wedge the
        # path briefly via a link failure, recover, then complete.
        results = []

        def caller():
            reply = yield from hive.cells[0].rpc.call(1, "count", None)
            results.append(reply)

        hive.sim.spawn(caller())
        hive.sim.run(until=30_000_000)
        assert results and len(executions) == 1

    def test_duplicate_requests_served_from_cache(self):
        hive = small_hive()
        executions = []
        hive.cells[1].rpc.register(
            "svc", lambda caller, payload: executions.append(1) or {"ok": 1})
        endpoint = hive.cells[1].rpc
        # Deliver the same request body twice, as a retransmission would.
        body = {"rpc": "req", "service": "svc", "payload": None,
                "seq": 77, "caller": 0}
        endpoint._handle_request(dict(body))
        endpoint._handle_request(dict(body))
        assert len(executions) == 1
        assert endpoint.stats_duplicates_dropped == 1

    def test_call_to_known_dead_cell_raises(self):
        hive = small_hive()
        hive.cells[0].rpc.mark_cell_dead(2)
        failures = []

        def caller():
            try:
                yield from hive.cells[0].rpc.call(2, "x", None)
            except CellDownError as error:
                failures.append(error.cell_id)

        hive.sim.spawn(caller())
        hive.sim.run(until=1_000_000)
        assert failures == [2]

    def test_unknown_service_returns_error(self):
        hive = small_hive()
        results = []

        def caller():
            reply = yield from hive.cells[0].rpc.call(1, "nope", None)
            results.append(reply)

        hive.sim.spawn(caller())
        hive.sim.run(until=10_000_000)
        assert "error" in results[0]


class TestKernelContainment:
    def test_kernel_pages_firewalled(self):
        """Another cell's (wild or speculative) write to kernel data must
        bus-error instead of corrupting it (§3.3)."""
        from repro.common.errors import BusError
        from repro.common.types import BusErrorKind
        hive = small_hive()
        victim_line = hive.cells[1].kernel_lines[0]
        caught = []

        def attacker():
            try:
                yield Store(victim_line, value="corruption")
            except BusError as error:
                caught.append(error.kind)

        hive.machine.nodes[hive.cells[0].lead_node].processor.run_program(
            attacker())
        hive.sim.run(until=5_000_000)
        assert caught == [BusErrorKind.FIREWALL]

    def test_kernel_pages_readable_by_other_cells(self):
        hive = small_hive()
        victim_line = hive.cells[1].kernel_lines[0]
        values = []

        def reader():
            values.append((yield Load(victim_line)))

        hive.machine.nodes[hive.cells[0].lead_node].processor.run_program(
            reader())
        hive.sim.run(until=5_000_000)
        assert len(values) == 1

    def test_own_cell_can_write_kernel_pages(self):
        hive = small_hive()
        line = hive.cells[1].kernel_lines[0]
        results = []

        def kernel_write():
            value = yield from hive.cells[1].kernel_access(
                Store(line, value="mine"))
            results.append(value)

        hive.sim.spawn(kernel_write())
        hive.sim.run(until=5_000_000)
        assert results == ["mine"]

    def test_cells_survive_fault_outside_their_unit(self):
        hive = small_hive()
        hive.machine.injector.inject(FaultSpec.node_failure(
            hive.cells[3].lead_node))
        hive.sim.run(until=300_000_000)
        assert hive.machine.recovery_manager.reports
        # Cells 0-2 are intact; only cell 3's unit faulted.
        for cell in hive.cells[:3]:
            assert cell.alive, cell
        assert not hive.cells[3].alive
        assert hive.panics == []   # shutdown, not panic


class TestOsRecovery:
    def test_os_recovery_runs_after_hw_recovery(self):
        hive = small_hive()
        hive.machine.injector.inject(FaultSpec.node_failure(
            hive.cells[2].lead_node))
        hive.sim.run(until=400_000_000)
        assert hive.os_recovery_reports
        hw_report, start, end = hive.os_recovery_reports[-1]
        assert start >= hw_report.complete_time
        assert end > start

    def test_processes_with_dead_dependencies_terminated(self):
        hive = small_hive()

        def forever():
            while True:
                yield 1_000_000.0

        survivor = hive.spawn_process(0, "indep", forever(),
                                      dependencies=set())
        dependent = hive.spawn_process(1, "dep", forever(),
                                       dependencies={2})
        hive.machine.injector.inject(FaultSpec.node_failure(
            hive.cells[2].lead_node))
        hive.sim.run(until=400_000_000)
        assert dependent.state == "terminated"
        assert survivor.state == "running"

    def test_processes_on_dead_cell_terminated(self):
        hive = small_hive()

        def forever():
            while True:
                yield 1_000_000.0

        doomed = hive.spawn_process(2, "doomed", forever())
        hive.machine.injector.inject(FaultSpec.node_failure(
            hive.cells[2].lead_node))
        hive.sim.run(until=400_000_000)
        assert doomed.state == "terminated"

    def test_rpc_to_dead_cell_aborted_by_os_recovery(self):
        hive = small_hive()
        hive.cells[2].rpc.register("slow", lambda c, p: {"ok": 1})
        failures = []
        # Kill cell 2's node, then start an RPC toward it: the request
        # vanishes, retransmissions go nowhere, and OS recovery finally
        # aborts the call.
        hive.machine.injector.inject(FaultSpec.node_failure(
            hive.cells[2].lead_node))

        def caller():
            try:
                yield from hive.cells[0].rpc.call(2, "slow", None)
            except CellDownError as error:
                failures.append(error.cell_id)

        hive.sim.spawn(caller())
        hive.sim.run(until=400_000_000)
        assert failures == [2]

    def test_user_processes_gated_on_os_recovery(self):
        """User-level execution resumes only after OS recovery (§4.6)."""
        hive = small_hive()
        progress = []

        def worker():
            for index in range(400):
                line = hive.cells[0].kernel_lines[0]
                yield from hive.cells[0].kernel_access(Load(line))
                progress.append(hive.sim.now)
                yield 100_000.0

        hive.spawn_process(0, "worker", worker())
        hive.sim.run(until=3_000_000)
        hive.machine.injector.inject(FaultSpec.node_failure(
            hive.cells[3].lead_node))
        hive.sim.run(until=400_000_000)
        hw_report, os_start, os_end = hive.os_recovery_reports[-1]
        # The §4.6 guarantee: hardware recovery completing does NOT release
        # user processes; they stay suspended until OS recovery finishes.
        gap_edges = [t for t in progress
                     if hw_report.complete_time < t < os_end]
        assert gap_edges == []
        # ...and they do resume afterwards.
        assert any(t > os_end for t in progress)


class TestBugEmulation:
    def test_bug_rate_zero_never_panics(self):
        hive = small_hive(os_incoherent_bug_rate=0.0)
        for _ in range(50):
            assert not hive.maybe_trip_incoherent_bug(hive.cells[1])
        assert hive.cells[1].alive

    def test_bug_rate_one_always_panics(self):
        hive = small_hive(os_incoherent_bug_rate=1.0)
        assert hive.maybe_trip_incoherent_bug(hive.cells[1])
        assert not hive.cells[1].alive
        assert hive.panics
