"""Live-engine conformance for the extracted protocol model.

Two directions, both against the committed golden spec:

* every ``protocol.cover.<STATE>.<KIND>`` pair a deterministic seed-0
  battery exercises must be admissible for some extracted transition
  (the live engine does nothing the model cannot see), and
* every extracted main-line transition pair must be exercised by the
  battery (dead transitions are flagged), minus an explicit allowlist
  of race-window pairs that only the exhaustive model checker reaches.

The battery is one 4-node machine driven through the full protocol
walk: fill, share, upgrade, migrate, writeback, uncached ops, page
scrubs, request races against a locked directory entry, the
writeback-vs-forward race, and a node death that leaves dirty lines
incoherent.
"""

import json
import os

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.faults.models import FaultSpec
from repro.node.processor import (FlushLine, Load, Store, UncachedLoad,
                                  UncachedStore)
from repro.telemetry.trace import Telemetry
from repro.verify.model import _admissible_states, _DIR_STATES

SPEC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro", "coherence", "protocol.spec.json")

COVER_PREFIX = "protocol.cover."

#: Main-line pairs only the model checker's exhaustive interleaving
#: reaches: the LOCKED window is a few hundred ns wide and these
#: messages have no deterministic way to land inside it from a
#: processor program.  The small-model explorer covers every one of
#: them (repro.cli verify-protocol), so they are not dead code — just
#: dead to this deterministic battery.
KNOWN_UNEXERCISED = {
    ("LOCKED", "PAGE_SCRUB"),
    ("LOCKED", "UC_READ"),
    ("LOCKED", "UC_WRITE"),
}


def _prog(*ops):
    def gen():
        for op in ops:
            yield op
    return gen()


def _is_defensive(items):
    """True for paths that only exist to fail a firmware assert."""
    for item in items:
        if item[0] != "guard":
            return False
        atom, polarity = item[1], item[2]
        if atom[0] == "not" and atom[1][0] == "fw_assert" and polarity:
            return True
        if atom[0] == "fw_assert" and not polarity:
            return True
    return False


def _spec_pairs(spec, include_stray):
    """(state, kind) pairs the extracted transition table admits."""
    pairs = set()
    for transition in spec["transitions"]:
        items = transition["items"]
        if _is_defensive(items):
            continue
        if not include_stray and any(i[0] == "stray" for i in items):
            continue
        kind = transition["kind"]
        if spec["handlers"][kind].startswith("_remote"):
            pairs.add(("REMOTE", kind))
            continue
        admissible = _admissible_states(items)
        for state in (admissible if admissible is not None
                      else _DIR_STATES):
            pairs.add((state, kind))
    return pairs


class Battery:
    def __init__(self):
        self.telemetry = Telemetry(trace=False)
        self.machine = FlashMachine(MachineConfig(num_nodes=4, seed=0),
                                    telemetry=self.telemetry)
        self.machine.start()

    def covered(self):
        return {tuple(name[len(COVER_PREFIX):].split(".", 1))
                for name, _node, value
                in self.telemetry.metrics.counter_items(COVER_PREFIX)
                if value}

    def run(self, node, *ops):
        self.machine.run_programs([(node, _prog(*ops))])
        self.machine.quiesce(10_000.0)

    def race(self, *node_ops):
        self.machine.run_programs(
            [(node, _prog(*ops)) for node, ops in node_ops])
        self.machine.quiesce(10_000.0)

    def scrub(self, node, page):
        self.machine.nodes[node].magic.request_scrub(page)
        self.machine.quiesce(10_000.0)


def _drive(b):
    machine = b.machine
    line = machine.line_homed_at(0, 0)        # page base: scrubs see it
    contended = machine.line_homed_at(0, 1)
    remote_line = machine.line_homed_at(3, 0)
    page = line & ~(machine.params.page_size - 1)

    # Main-line walk over every reachable quiescent directory state.
    b.run(1, Store(line, value=1))            # UNOWNED.GETX
    b.run(2, Load(line))                      # EXCLUSIVE.GET, FWD_GET,
                                              #   LOCKED.SHARING_WB
    b.run(3, Load(line))                      # SHARED.GET
    b.run(1, UncachedLoad(line))              # SHARED.UC_READ
    b.run(1, UncachedStore(line, 2))          # SHARED.UC_WRITE
    b.scrub(1, page)                          # SHARED.PAGE_SCRUB
    b.run(1, Store(line, value=3))            # SHARED.GETX, INVAL,
                                              #   LOCKED.INVAL_ACK
    b.run(1, UncachedStore(line, 4))          # EXCLUSIVE.UC_WRITE
    b.run(2, UncachedLoad(line))              # EXCLUSIVE.UC_READ
    b.scrub(1, page)                          # EXCLUSIVE.PAGE_SCRUB
    b.run(2, Store(line, value=5))            # EXCLUSIVE.GETX, FWD_GETX,
                                              #   LOCKED.OWNERSHIP_XFER
    b.run(2, FlushLine(line))                 # EXCLUSIVE.PUT
    b.run(1, UncachedLoad(line))              # UNOWNED.UC_READ
    b.run(1, UncachedStore(line, 6))          # UNOWNED.UC_WRITE
    b.scrub(1, page)                          # UNOWNED.PAGE_SCRUB
    b.run(1, Load(line))                      # UNOWNED.GET

    # Requests racing against a locked entry (owner 2, forward round
    # trip to the old owner keeps home LOCKED while they arrive).
    b.run(2, Store(contended, value=1))
    b.race((1, [Store(contended, value=2)]),
           (3, [Store(contended, value=3)]))  # LOCKED.GETX (busy NAK)
    b.run(2, Store(contended, value=4))
    b.race((1, [Store(contended, value=5)]),
           (3, [Load(contended)]))            # LOCKED.GET (busy NAK)

    # The writeback-vs-forward race: the owner's eviction crosses the
    # directory's forwarded intervention.  The home must absorb the PUT
    # under the lock (LOCKED.PUT) and complete from memory when the
    # FWD_MISS echo proves the forward drained (LOCKED.FWD_MISS).
    b.run(2, Store(contended, value=6))
    b.race((1, [Store(contended, value=7)]),
           (2, [FlushLine(contended)]))       # LOCKED.PUT, LOCKED.FWD_MISS

    # A node dies holding the page-base line dirty: recovery marks it
    # INCOHERENT and every access class bounces off the tombstone.
    b.run(3, Store(line, value=9))
    machine.injector.inject(FaultSpec.node_failure(3))
    # An access to the dead home detects the failure and triggers the
    # recovery episode that tombstones the dirty line.
    machine.nodes[1].processor.run_program(_prog(Load(remote_line)))
    machine.run_until_recovered()
    machine.quiesce(10_000.0)
    b.run(1, Load(line))                      # INCOHERENT.GET
    b.run(1, Store(line, value=10))           # INCOHERENT.GETX
    b.run(1, UncachedLoad(line))              # INCOHERENT.UC_READ
    b.run(1, UncachedStore(line, 11))         # INCOHERENT.UC_WRITE
    b.scrub(1, page)                          # INCOHERENT.PAGE_SCRUB
    return b


@pytest.fixture(scope="module")
def battery():
    return _drive(Battery())


@pytest.fixture(scope="module")
def spec():
    with open(SPEC_PATH) as handle:
        return json.load(handle)


class TestLiveConformance:
    def test_every_live_pair_is_admissible_in_the_model(self, battery,
                                                        spec):
        """Conformance direction: the engine never dispatches a
        (directory state, message kind) pair the extraction cannot
        account for — a live pair outside the spec means the model
        checker is verifying a different protocol than the one
        running."""
        admissible = _spec_pairs(spec, include_stray=True)
        extra = battery.covered() - admissible
        assert extra == set(), (
            "live engine exercised pairs the extracted model does not "
            "admit: %s" % sorted(extra))

    def test_seed0_battery_exercises_every_mainline_pair(self, battery,
                                                         spec):
        """Liveness direction (dead-transition flag): every non-stray,
        non-defensive transition pair must be exercised by the seed-0
        battery or appear in KNOWN_UNEXERCISED with a justification.
        A new protocol transition nobody drives lands in ``dead`` and
        fails this test until it gains live coverage or an entry."""
        mainline = _spec_pairs(spec, include_stray=False)
        dead = mainline - battery.covered()
        assert dead == KNOWN_UNEXERCISED, (
            "dead transitions changed: newly dead %s, newly live %s"
            % (sorted(dead - KNOWN_UNEXERCISED),
               sorted(KNOWN_UNEXERCISED - dead)))

    def test_allowlist_is_not_stale(self, battery):
        """KNOWN_UNEXERCISED entries that the battery *does* reach must
        be removed — a stale allowlist hides future regressions."""
        stale = KNOWN_UNEXERCISED & battery.covered()
        assert stale == set()


class TestWritebackRaceRegression:
    """The model checker found the writeback-vs-forward ownership race;
    these assertions pin the fixed live behavior on the same schedule."""

    def test_machine_is_coherent_after_the_race(self, battery):
        machine = battery.machine
        contended = machine.line_homed_at(0, 1)
        directory = machine.nodes[0].magic.directory
        entry = directory.peek(contended)
        assert entry is not None
        assert entry.state.name != "LOCKED", (
            "directory wedged LOCKED after the writeback race")
        holders = [node.node_id for node in machine.nodes
                   if not node.failed and node.cache is not None
                   and node.cache.state_of(contended) is not None
                   and node.cache.state_of(contended).name == "EXCLUSIVE"]
        assert len(holders) <= 1, (
            "multiple exclusive holders after the race: %s" % holders)

    def test_winning_store_is_readable(self, battery):
        machine = battery.machine
        contended = machine.line_homed_at(0, 1)
        observations = []

        def reader():
            value = yield Load(contended)
            observations.append(value)

        machine.run_programs([(1, reader())])
        machine.quiesce(10_000.0)
        assert observations and observations[0] is not None
