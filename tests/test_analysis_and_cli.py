"""Tests for the analysis helpers and the command-line interface."""

import pytest

from repro.analysis.tables import (
    format_series,
    format_table,
    shape_check_monotone,
)
from repro.cli import build_parser, main


class TestTables:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [(1, 2), (33, 4)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert lines[2].startswith("-")
        assert "33" in lines[4]

    def test_format_series_headers(self):
        text = format_series("S", "x", ["y1", "y2"], [(1, 2, 3)])
        assert "x" in text and "y1" in text and "y2" in text

    def test_monotone_accepts_increasing(self):
        assert shape_check_monotone([1, 2, 3, 10])

    def test_monotone_rejects_big_dip(self):
        assert not shape_check_monotone([10, 5, 20])

    def test_monotone_tolerates_small_dip(self):
        assert shape_check_monotone([10.0, 9.5, 20.0], tolerance=0.10)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(
            ["validate", "--fault", "false_alarm", "--target", "1"])
        assert args.fault == "false_alarm"

    def test_link_fault_requires_second_target(self):
        with pytest.raises(SystemExit):
            main(["validate", "--fault", "link_failure", "--target", "0",
                  "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8"])

    def test_validate_command_runs(self, capsys):
        code = main(["validate", "--fault", "false_alarm", "--target", "0",
                     "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_scale_command_runs(self, capsys):
        code = main(["scale", "--nodes", "2", "4",
                     "--mem-kb", "64", "--l2-kb", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total [ms]" in out
