"""Tests for the analysis helpers and the command-line interface."""

import pytest

from repro.analysis.tables import (
    format_series,
    format_table,
    shape_check_monotone,
)
from repro.cli import build_parser, main


class TestTables:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [(1, 2), (33, 4)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert lines[2].startswith("-")
        assert "33" in lines[4]

    def test_format_series_headers(self):
        text = format_series("S", "x", ["y1", "y2"], [(1, 2, 3)])
        assert "x" in text and "y1" in text and "y2" in text

    def test_monotone_accepts_increasing(self):
        assert shape_check_monotone([1, 2, 3, 10])

    def test_monotone_rejects_big_dip(self):
        assert not shape_check_monotone([10, 5, 20])

    def test_monotone_tolerates_small_dip(self):
        assert shape_check_monotone([10.0, 9.5, 20.0], tolerance=0.10)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(
            ["validate", "--fault", "false_alarm", "--target", "1"])
        assert args.fault == "false_alarm"

    def test_link_fault_requires_second_target(self):
        with pytest.raises(SystemExit):
            main(["validate", "--fault", "link_failure", "--target", "0",
                  "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8"])

    def test_validate_command_runs(self, capsys):
        code = main(["validate", "--fault", "false_alarm", "--target", "0",
                     "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_scale_command_runs(self, capsys):
        code = main(["scale", "--nodes", "2", "4",
                     "--mem-kb", "64", "--l2-kb", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total [ms]" in out


class TestTraceCli:
    def test_trace_command_writes_chrome_trace(self, capsys, tmp_path):
        import json
        out = tmp_path / "trace.json"
        code = main(["trace", "--fault", "node_failure", "--target", "3",
                     "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8",
                     "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "PASS" in printed
        assert "episode 0" in printed       # timeline summary
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_trace_max_events_cap(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code = main(["trace", "--fault", "false_alarm", "--target", "0",
                     "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8",
                     "--max-events", "10", "--out", str(out)])
        assert code == 0
        assert "dropped" in capsys.readouterr().out

    def test_trace_single_episode_export(self, capsys, tmp_path):
        import json
        out = tmp_path / "episode.json"
        code = main(["trace", "--fault", "node_failure", "--target", "3",
                     "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8",
                     "--episode", "0", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        # Only the selected episode's timeline is printed, and the trace
        # starts no earlier than its trigger.
        assert printed.count("episode ") == 1
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_trace_episode_out_of_range(self, tmp_path):
        import pytest as _pytest
        with _pytest.raises(SystemExit, match="out of range"):
            main(["trace", "--fault", "false_alarm", "--target", "0",
                  "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8",
                  "--episode", "5", "--out", str(tmp_path / "t.json")])


class TestForensicsCli:
    def test_forensics_text_report(self, capsys, tmp_path):
        out = tmp_path / "forensics.json"
        code = main(["forensics", "--fault", "node_failure", "--target", "3",
                     "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8",
                     "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "containment audit: contained" in printed
        assert "fault F0" in printed and "blast radius" in printed
        assert out.exists()

    def test_forensics_json_format(self, capsys):
        import json
        code = main(["forensics", "--fault", "node_failure", "--target", "3",
                     "--nodes-count", "4", "--mem-kb", "64", "--l2-kb", "8",
                     "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "contained"
        assert payload["run_passed"] is True
        (fault,) = payload["faults"]
        assert fault["root"] == "F0" and fault["blast"]["nodes"]


class TestBenchCli:
    def test_bench_small_sweep(self, capsys, tmp_path):
        import json
        out = tmp_path / "BENCH_scalability.json"
        code = main(["bench", "--sizes", "4", "8", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Recovery scalability" in printed
        payload = json.loads(out.read_text())
        assert payload["sizes"] == [4, 8]
        assert all(r["completed"] for r in payload["results"])

    def test_bench_rejects_empty_size_list(self):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            main(["bench", "--max-nodes", "2"])


class TestCampaignSummaryJson:
    def test_summary_json_is_machine_readable(self, capsys, tmp_path):
        import json
        out = tmp_path / "campaign.jsonl"
        code = main(["campaign", "--runs", "2", "--nodes-count", "4",
                     "--schedule", "false-alarm-storm", "--summary-json",
                     "--mem-kb", "64", "--l2-kb", "8", "--out", str(out)])
        printed = capsys.readouterr().out.strip().splitlines()
        summary = json.loads(printed[-1])
        assert summary["total"] == 2
        assert summary["records"] == str(out)
        assert set(summary) >= {"passed", "failed", "crashed", "hung", "ok"}
        # Exit status mirrors batch health: non-zero iff CRASHED/HUNG runs.
        assert (code == 0) == summary["ok"]
        # Every record carries its per-run metrics summary.
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            if record["status"] in ("pass", "fail"):
                assert "recovery" in record["metrics"]
