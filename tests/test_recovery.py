"""Integration tests for the distributed recovery algorithm (paper §4)."""

import pytest

from repro import FlashMachine, MachineConfig, FaultSpec
from repro.common.errors import BusError
from repro.common.types import DirState
from repro.node.processor import Load, Store


def small_config(num_nodes=4, **overrides):
    defaults = dict(num_nodes=num_nodes, mem_per_node=1 << 16,
                    l2_size=1 << 13, seed=11)
    defaults.update(overrides)
    return MachineConfig(**defaults)


def line_at(machine, home, index=0):
    return machine.line_homed_at(home, index)


def fill_some_state(machine, lines_per_node=8):
    """Give every node some shared and exclusive lines."""
    programs = []
    for node in machine.nodes:
        def program(node_id=node.node_id):
            for index in range(lines_per_node):
                target = (node_id + 1 + index) % machine.config.num_nodes
                line = line_at(machine, target, index)
                if index % 2 == 0:
                    yield Store(line, value=("fill", node_id, index))
                else:
                    yield Load(line)
        programs.append((node.node_id, program()))
    machine.run_programs(programs)
    machine.quiesce()


def trigger_and_recover(machine, fault, prober=0):
    machine.injector.inject(fault)
    victim = fault.target if isinstance(fault.target, int) else fault.target[1]
    proc = None
    if fault.fault_type.value != "false_alarm":
        prober_id = prober if prober != victim else (prober + 1)

        def probe():
            try:
                # Use a high line index so the fill phase cannot have left
                # this line in the prober's cache (a hit detects nothing).
                yield Load(line_at(machine, victim, 40))
            except BusError:
                pass

        proc = machine.nodes[prober_id].processor.run_program(probe())
    report = machine.run_until_recovered()
    if proc is not None and proc.alive:
        machine.run_until(lambda: not proc.alive, limit=10_000_000_000)
    return report


class TestNodeFailureRecovery:
    def test_recovery_completes(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.node_failure(3))
        assert report.complete_time is not None
        assert report.available_nodes == {0, 1, 2}

    def test_all_four_phases_ran(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.node_failure(3))
        for phase in ("P1", "P2", "P3", "P4"):
            assert phase in report.phase_ends, phase
        assert (report.phase_ends["P1"] <= report.phase_ends["P2"]
                <= report.phase_ends["P3"] <= report.phase_ends["P4"])

    def test_node_maps_updated_on_survivors(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        trigger_and_recover(machine, FaultSpec.node_failure(3))
        for node_id in (0, 1, 2):
            assert machine.nodes[node_id].magic.node_map == {0, 1, 2}

    def test_lines_homed_on_failed_node_inaccessible(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        trigger_and_recover(machine, FaultSpec.node_failure(3))
        errors = []

        def program():
            try:
                yield Load(line_at(machine, 3))
            except BusError as error:
                errors.append(error.kind.value)

        machine.nodes[0].processor.run_program(program())
        machine.run(until=machine.sim.now + 1_000_000)
        assert errors == ["inaccessible_node"]

    def test_lines_owned_by_failed_node_marked_incoherent(self):
        machine = FlashMachine(small_config()).start()
        # Node 3 fetches a node-1 line exclusive, then dies with it.
        def program():
            yield Store(line_at(machine, 1), value="doomed")

        machine.run_programs([(3, program())])
        machine.quiesce()
        trigger_and_recover(machine, FaultSpec.node_failure(3))
        entry = machine.nodes[1].directory.entry(line_at(machine, 1))
        assert entry.state == DirState.INCOHERENT
        errors = []

        def checker():
            try:
                yield Load(line_at(machine, 1))
            except BusError as error:
                errors.append(error.kind.value)

        machine.nodes[0].processor.run_program(checker())
        machine.run(until=machine.sim.now + 1_000_000)
        assert errors == ["incoherent_line"]

    def test_shared_lines_survive(self):
        machine = FlashMachine(small_config()).start()
        line = line_at(machine, 1)

        def writer():
            yield Store(line, value="keep-me")

        machine.run_programs([(0, writer())])
        machine.quiesce()
        trigger_and_recover(machine, FaultSpec.node_failure(3))
        values = []

        def reader():
            values.append((yield Load(line)))

        machine.nodes[2].processor.run_program(reader())
        machine.run(until=machine.sim.now + 2_000_000)
        assert values == ["keep-me"]

    def test_deadlocked_lock_released_by_recovery(self):
        """A line locked by a transaction whose participant died must be
        usable again after recovery (§3.2: deadlock resolution)."""
        machine = FlashMachine(small_config()).start()
        line = line_at(machine, 1)

        def owner_program():
            yield Store(line, value="owned-by-3")

        machine.run_programs([(3, owner_program())])
        machine.quiesce()
        machine.injector.inject(FaultSpec.node_failure(3))
        # Node 0's store needs node 3 (owner): home locks the line,
        # forwards, the forward dies with node 3, node 0 times out.
        results = []

        def stuck_writer():
            try:
                value = yield Store(line, value="from-0")
                results.append(("ok", value))
            except BusError as error:
                results.append(("bus_error", error.kind.value))

        machine.nodes[0].processor.run_program(stuck_writer())
        machine.run_until_recovered()
        machine.run(until=machine.sim.now + 5_000_000)
        assert len(results) == 1
        # The line's only copy died with node 3: the retried store must be
        # bus-errored as incoherent, never silently give stale data.
        assert results[0] == ("bus_error", "incoherent_line")


class TestOtherFaultTypes:
    def test_router_failure_strands_and_excludes_node(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.router_failure(2))
        assert 2 not in report.available_nodes
        assert report.available_nodes == {0, 1, 3}

    def test_link_failure_keeps_all_nodes(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.link_failure(0, 1))
        assert report.available_nodes == {0, 1, 2, 3}

    def test_link_failure_reroutes_traffic(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        trigger_and_recover(machine, FaultSpec.link_failure(0, 1))
        values = []

        def program():
            values.append((yield Load(line_at(machine, 1, 5))))

        machine.nodes[0].processor.run_program(program())
        machine.run(until=machine.sim.now + 2_000_000)
        assert len(values) == 1   # reachable around the dead link

    def test_wedged_node_excluded(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.infinite_loop(1))
        assert 1 not in report.available_nodes
        assert report.available_nodes == {0, 2, 3}

    def test_wedged_node_congestion_cleared(self):
        """After recovery, the backed-up traffic toward the wedged node is
        gone and the fabric carries traffic again (§3.1, §4.4)."""
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        trigger_and_recover(machine, FaultSpec.infinite_loop(1))
        machine.quiesce()
        assert machine.network.total_buffered_packets() == 0

    def test_false_alarm_no_data_loss(self):
        machine = FlashMachine(small_config()).start()
        line = line_at(machine, 2)

        def writer():
            yield Store(line, value="survives-false-alarm")

        machine.run_programs([(0, writer())])
        machine.quiesce()
        report = trigger_and_recover(machine, FaultSpec.false_alarm(1))
        assert report.available_nodes == {0, 1, 2, 3}
        assert report.marked_incoherent == 0
        values = []

        def reader():
            values.append((yield Load(line)))

        machine.nodes[3].processor.run_program(reader())
        machine.run(until=machine.sim.now + 2_000_000)
        assert values == ["survives-false-alarm"]

    def test_false_alarm_brief_interruption_only(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.false_alarm(0))
        # "The sole effect of a false alarm is a brief interruption" (§4.1).
        assert report.total_duration < 100_000_000   # well under 100 ms


class TestRecoveryMechanics:
    def test_recovery_spreads_by_ping_wave(self):
        machine = FlashMachine(small_config(num_nodes=9)).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.node_failure(8))
        # All 8 survivors ran dissemination rounds: they all recovered.
        assert set(report.agent_rounds) == set(range(8))

    def test_dissemination_round_counts_bounded(self):
        machine = FlashMachine(small_config(num_nodes=9)).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.node_failure(8))
        # 2h bound: h <= diameter of the surviving 3x3 mesh = 4.
        assert all(rounds <= 2 * 4 + 1
                   for rounds in report.agent_rounds.values())

    def test_processors_resume_and_reissue(self):
        machine = FlashMachine(small_config()).start()
        values = []

        def program():
            # This load will be interrupted by recovery and reissued.
            values.append((yield Load(line_at(machine, 1))))
            values.append((yield Load(line_at(machine, 2))))

        machine.nodes[0].processor.run_program(program())
        machine.run(until=50_000)   # let the first load complete
        machine.injector.inject(FaultSpec.false_alarm(2))
        machine.run_until_recovered()
        machine.run(until=machine.sim.now + 5_000_000)
        assert len(values) == 2
        assert machine.nodes[0].processor.stats.recoveries_survived >= 0

    def test_hypercube_topology_recovers(self):
        machine = FlashMachine(
            small_config(num_nodes=8, topology="hypercube")).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.node_failure(7))
        assert report.available_nodes == set(range(7))

    def test_two_node_machine_recovers(self):
        machine = FlashMachine(small_config(num_nodes=2)).start()
        fill_some_state(machine, lines_per_node=4)
        report = trigger_and_recover(machine, FaultSpec.node_failure(1))
        assert report.available_nodes == {0}

    def test_second_fault_during_recovery_restarts(self):
        machine = FlashMachine(small_config(num_nodes=9)).start()
        fill_some_state(machine)
        machine.injector.inject(FaultSpec.node_failure(8))

        def probe():
            try:
                yield Load(line_at(machine, 8))
            except BusError:
                pass

        machine.nodes[0].processor.run_program(probe())
        # Let recovery get under way, then kill a second node mid-recovery.
        machine.run_until(
            lambda: machine.recovery_manager.in_progress,
            limit=10_000_000_000)
        machine.sim.schedule(8_000_000, machine.injector.inject,
                             FaultSpec.node_failure(4))
        report = machine.run_until_recovered(limit=50_000_000_000)
        assert report.available_nodes == set(range(8)) - {4}
        assert report.restarts >= 1

    def test_multi_node_failure_unit_shuts_down_whole_unit(self):
        config = small_config(num_nodes=4,
                              failure_units=(frozenset({0, 1}),
                                             frozenset({2, 3})))
        machine = FlashMachine(config).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.node_failure(3),
                                     prober=0)
        # Node 2 is healthy but shares a failure unit with dead node 3.
        assert report.available_nodes == {0, 1}
        assert 2 in report.shutdown_nodes

    def test_recovery_report_wb_duration_recorded(self):
        machine = FlashMachine(small_config()).start()
        fill_some_state(machine)
        report = trigger_and_recover(machine, FaultSpec.node_failure(3))
        assert report.wb_duration > 0

    def test_marked_incoherent_counted_in_report(self):
        machine = FlashMachine(small_config()).start()

        def program():
            yield Store(line_at(machine, 1), value="will-die")

        machine.run_programs([(3, program())])
        machine.quiesce()
        report = trigger_and_recover(machine, FaultSpec.node_failure(3))
        assert report.marked_incoherent >= 1


class TestOrphanGrantContainment:
    def test_grant_cancelled_by_recovery_does_not_lose_line(self):
        """A data grant that lands after recovery NAK'd its request must be
        returned home, not stranded: otherwise a node's *own* lines could
        be marked incoherent by a fault in someone else's failure unit —
        violating the §3.3 intra-unit guarantee.

        Deterministic staging: the home has granted the line exclusive
        (memory marked invalid) but the grant reply is still in flight when
        recovery starts; it is delivered into the requester's drain-mode
        controller, which must send the data home as a writeback.
        """
        machine = FlashMachine(small_config()).start()
        line = line_at(machine, 0)   # node 0's own memory
        home_magic = machine.nodes[0].magic
        entry = home_magic.directory.entry(line)
        entry.state = DirState.EXCLUSIVE
        entry.owner = 0
        entry.memory_valid = False   # grant outstanding, cache not filled

        machine.injector.inject(FaultSpec.false_alarm(1))
        # The grant reply arrives while node 0 is already in recovery.
        from repro.coherence.messages import MessageKind, make_packet
        machine.sim.schedule(
            200_000.0, home_magic.ni.inbox.put,
            make_packet(machine.params, 0, 0, MessageKind.DATA_EXCL,
                        {"line": line, "value": "granted-copy"}))
        report = machine.run_until_recovered(limit=60_000_000_000)

        assert report.marked_incoherent == 0
        refreshed = home_magic.directory.entry(line)
        assert refreshed.state != DirState.INCOHERENT
        assert home_magic.memory.read_line(line) == "granted-copy"
        values = []

        def reader():
            values.append((yield Load(line)))

        machine.nodes[2].processor.run_program(reader())
        machine.run(until=machine.sim.now + 5_000_000)
        assert values == ["granted-copy"]
