"""Fleet observability read/write sides: status sidecars, availability
accounting, the aggregated report, and bench provenance stamps."""

import json
import os
import re
import types

from repro.telemetry.availability import (
    availability_from_reports,
    format_availability,
    merge_availability,
)
from repro.telemetry.report import (
    aggregate,
    collect_sources,
    render_html,
    write_report,
)
from repro.telemetry.scalability import (
    append_bench_history,
    bench_meta,
    write_bench_json,
)
from repro.telemetry.status import (
    StatusWriter,
    format_status,
    read_status,
    status_sidecar_path,
)

# ---------------------------------------------------------------- status


class TestStatusWriter:
    def test_update_writes_readable_document(self, tmp_path):
        path = str(tmp_path / "records.jsonl.status.json")
        writer = StatusWriter(path, kind="campaign", total=10)
        assert writer.update(done=3, counts={"pass": 3},
                             in_flight=[{"run_index": 4,
                                         "elapsed_s": 0.5}])
        doc = read_status(path)
        assert doc["kind"] == "campaign"
        assert doc["total"] == 10 and doc["done"] == 3
        assert doc["counts"] == {"pass": 3}
        assert doc["in_flight"][0]["run_index"] == 4
        assert doc["finished"] is False
        assert doc["pid"] == os.getpid()

    def test_updates_throttle_unless_forced_or_final(self, tmp_path):
        path = str(tmp_path / "status.json")
        writer = StatusWriter(path, kind="fuzz", total=None,
                              min_interval_s=3600.0)
        assert writer.update(done=1)
        assert not writer.update(done=2)        # inside the interval
        assert read_status(path)["done"] == 1   # document untouched
        assert writer.update(done=2, force=True)
        assert writer.update(done=3, finished=True)
        doc = read_status(path)
        assert doc["done"] == 3 and doc["finished"] is True

    def test_no_tmp_droppings_left_behind(self, tmp_path):
        path = str(tmp_path / "status.json")
        StatusWriter(path, kind="fuzz").update(done=1)
        assert sorted(entry.name for entry in tmp_path.iterdir()) == [
            "status.json"]

    def test_extras_round_trip(self, tmp_path):
        path = str(tmp_path / "status.json")
        StatusWriter(path, kind="fuzz").update(
            done=5, extras={"coverage_features": 41, "corpus_size": 7})
        doc = read_status(path)
        assert doc["extras"] == {"coverage_features": 41, "corpus_size": 7}

    def test_format_status_renders_progress_and_counts(self, tmp_path):
        path = str(tmp_path / "x.jsonl.status.json")
        writer = StatusWriter(path, kind="campaign", total=8)
        writer.update(done=8, counts={"pass": 7, "fail": 1}, finished=True)
        text = format_status(read_status(path))
        assert "campaign sweep [finished]" in text
        assert "8/8" in text
        assert "pass=7" in text and "fail=1" in text


class TestSidecarResolution:
    def test_directory_resolves_to_inner_status(self, tmp_path):
        assert status_sidecar_path(str(tmp_path)) == str(
            tmp_path / "status.json")

    def test_records_path_gains_suffix(self):
        assert status_sidecar_path("out/records.jsonl") == \
            "out/records.jsonl.status.json"

    def test_sidecar_paths_pass_through(self):
        assert status_sidecar_path("a/b.jsonl.status.json") == \
            "a/b.jsonl.status.json"
        assert status_sidecar_path("session/status.json") == \
            "session/status.json"

    def test_read_status_absent_or_torn_is_none(self, tmp_path):
        assert read_status(str(tmp_path / "nope.jsonl")) is None
        torn = tmp_path / "torn.jsonl.status.json"
        torn.write_text('{"kind": "campaign", "done"')
        assert read_status(str(tmp_path / "torn.jsonl")) is None


# ---------------------------------------------------------- availability


def _report(trigger, complete, shutdown=(), restarts=0):
    return types.SimpleNamespace(trigger_time=trigger,
                                 complete_time=complete,
                                 shutdown_nodes=list(shutdown),
                                 restarts=restarts)


class TestAvailability:
    def test_single_episode_accounting(self):
        # 4 nodes, 100ms window; one episode 10ms->30ms kills node 3.
        summary = availability_from_reports(
            [_report(10e6, 30e6, shutdown=[3])], window_ns=100e6,
            num_nodes=4)
        assert summary["episodes"] == 1
        assert summary["downtime_ms"] == 20.0
        per_node = summary["per_node"]
        assert per_node["3"]["state"] == "down"
        assert per_node["3"]["down_ms"] == 90.0     # from trigger onward
        assert per_node["0"]["state"] == "up"
        assert per_node["0"]["degraded_ms"] == 20.0
        assert per_node["0"]["availability"] == 0.8
        # Mean availability averages the three *surviving* nodes.
        assert summary["availability"] == 0.8
        assert summary["nodes"] == {"total": 4, "up": 3, "down": 1}
        assert summary["mttr_ms"]["count"] == 1
        assert summary["mttr_ms"]["mean"] == 20.0
        assert summary["episode_durations_ms"] == [20.0]

    def test_incomplete_episode_extends_to_window_end(self):
        summary = availability_from_reports(
            [_report(40e6, None)], window_ns=100e6, num_nodes=2)
        assert summary["downtime_ms"] == 60.0
        assert summary["episode_durations_ms"] == []   # never completed
        assert "mttr_ms" not in summary
        assert not summary["timeline"][0]["completed"]

    def test_format_availability_renders(self):
        summary = availability_from_reports(
            [_report(10e6, 30e6)], window_ns=100e6, num_nodes=2)
        text = format_availability(summary)
        assert "availability: 0.8000" in text
        assert "MTTR" in text and "2 up, 0 down of 2" in text

    def test_merge_recomputes_percentiles_over_episodes(self):
        runs = [
            availability_from_reports([_report(0, 10e6)], 100e6, 2),
            availability_from_reports([_report(0, 30e6),
                                       _report(50e6, 90e6)], 100e6, 2),
        ]
        merged = merge_availability(runs)
        assert merged["runs"] == 2
        assert merged["episodes"] == 3
        # Percentiles come from the raw durations {10, 30, 40} ms, not
        # from averaging the two runs' own percentiles.
        assert merged["mttr_ms"]["count"] == 3
        assert merged["mttr_ms"]["p50"] <= merged["mttr_ms"]["p99"]
        assert merged["availability_min"] <= merged["availability_mean"]

    def test_merge_skips_empty_sections(self):
        merged = merge_availability([None, {}, availability_from_reports(
            [], 100e6, 2)])
        assert merged["runs"] == 1
        assert merged["episodes"] == 0


# --------------------------------------------------------------- report


def _campaign_record(status="pass", durations=(20.0,), blast=None):
    record = {
        "run_index": 0,
        "status": status,
        "metrics": {
            "availability": {
                "episodes": len(durations),
                "availability": 0.9,
                "nodes": {"total": 4, "up": 4, "down": 0},
                "episode_durations_ms": list(durations),
            },
        },
    }
    if blast is not None:
        record["forensics"] = {
            "faults": [{"root": 0, "blast_nodes": list(blast)}]}
    return record


def _fuzz_record(run_index, new_features=(), containment_ns=(),
                 status="pass"):
    return {
        "run_index": run_index,
        "status": status,
        "lineage": [],
        "new_features": list(new_features),
        "containment_ns": list(containment_ns),
    }


def _write_jsonl(path, records):
    with open(str(path), "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestCollectSources:
    def test_kind_sniffing(self, tmp_path):
        campaign = tmp_path / "records.jsonl"
        _write_jsonl(campaign, [_campaign_record()])
        session = tmp_path / "session"
        session.mkdir()
        _write_jsonl(session / "records.jsonl", [_fuzz_record(0)])
        fuzz_file = tmp_path / "fuzz.jsonl"
        _write_jsonl(fuzz_file, [_fuzz_record(0)])

        sources = collect_sources([str(campaign), str(session),
                                   str(fuzz_file)])
        assert [source["kind"] for source in sources] == [
            "campaign", "fuzz", "fuzz"]
        assert all(source["records"] for source in sources)

    def test_torn_tail_line_skipped(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text(json.dumps(_campaign_record()) + "\n"
                        + '{"status": "pa')
        (source,) = collect_sources([str(path)])
        assert len(source["records"]) == 1


class TestAggregate:
    def test_full_aggregate(self, tmp_path):
        campaign = tmp_path / "records.jsonl"
        _write_jsonl(campaign, [
            _campaign_record("pass", durations=(20.0,), blast=[1]),
            _campaign_record("fail", durations=(35.0, 80.0), blast=[1, 2]),
        ])
        session = tmp_path / "session"
        session.mkdir()
        _write_jsonl(session / "records.jsonl", [
            _fuzz_record(0, new_features=["a", "b"],
                         containment_ns=(25e6,)),
            _fuzz_record(1, new_features=["c"], status="hung"),
        ])
        agg = aggregate(collect_sources([str(campaign), str(session)]))

        assert agg["runs"] == 4
        assert agg["outcomes"] == {"pass": 2, "fail": 1, "crashed": 0,
                                   "hung": 1}
        # 3 availability episodes + 1 fuzz containment_ns fallback.
        assert agg["containment_ms"]["count"] == 4
        assert agg["containment_ms"]["p50"] is not None
        assert agg["containment_ms"]["p50"] <= agg["containment_ms"]["p99"]
        assert agg["availability"]["runs"] == 2
        assert agg["availability"]["mttr_ms"]["count"] == 3
        assert agg["blast_radius"] == {"1": 1, "2": 1}
        assert agg["coverage_growth"] == [(1, 2), (2, 3)]

    def test_pre_availability_records_fall_back_to_recovery(self,
                                                           tmp_path):
        path = tmp_path / "old.jsonl"
        _write_jsonl(path, [{"status": "pass",
                             "metrics": {"recovery": {"total_ms": 42.0}}}])
        agg = aggregate(collect_sources([str(path)]))
        assert agg["containment_ms"]["count"] == 1
        assert agg["availability"]["runs"] == 0


class TestRenderHtml:
    def test_report_is_self_contained_with_all_sections(self, tmp_path):
        campaign = tmp_path / "records.jsonl"
        _write_jsonl(campaign, [_campaign_record(blast=[1, 2])])
        session = tmp_path / "session"
        session.mkdir()
        _write_jsonl(session / "records.jsonl",
                     [_fuzz_record(0, ["a"]), _fuzz_record(1, ["b"])])
        out = tmp_path / "report.html"
        agg = write_report([str(campaign), str(session)], str(out),
                           title="smoke <report>")
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "smoke &lt;report&gt;" in text          # titles escaped
        assert "Outcome mix" in text
        assert "Containment time" in text
        assert "Availability" in text
        assert "Blast-radius distribution" in text
        assert "Coverage growth" in text
        assert "<svg" in text
        # Self-contained: no external fetches of any kind.
        assert "http://" not in text and "https://" not in text
        assert agg["runs"] == 3

    def test_empty_aggregate_renders_placeholders(self):
        agg = aggregate([])
        text = render_html(agg)
        assert "no recovery episodes observed" in text
        assert "no fuzz sessions" in text


# ------------------------------------------------------ bench provenance


class TestBenchProvenance:
    def test_bench_meta_carries_sha_and_utc_timestamp(self):
        meta = bench_meta()
        # In this work tree the SHA must resolve; in CI GITHUB_SHA would.
        assert re.fullmatch(r"[0-9a-f]{40}|unknown", meta["git_sha"])
        assert meta["timestamp"].endswith("+00:00")

    def test_write_bench_json_stamps_meta_once(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        write_bench_json({"benchmark": "x", "events_per_sec": {"a": 1}},
                         path)
        payload = json.loads(open(path).read())
        assert payload["meta"]["git_sha"]
        # An existing stamp is preserved, not overwritten.
        write_bench_json({"benchmark": "x",
                          "meta": {"git_sha": "pinned"}}, path)
        assert json.loads(open(path).read())["meta"] == {
            "git_sha": "pinned"}

    def test_append_bench_history_keeps_headlines_only(self, tmp_path):
        path = str(tmp_path / "BENCH_history.jsonl")
        append_bench_history({"benchmark": "simcore",
                              "events_per_sec": {"stream4": 100.0},
                              "results": [{"huge": "blob"}] * 50,
                              "flight_overhead": {"overhead": 0.01}},
                             path)
        append_bench_history({"benchmark": "scalability",
                              "sublinear": {"ok": True}}, path)
        lines = [json.loads(line)
                 for line in open(path).read().splitlines()]
        assert [line["benchmark"] for line in lines] == ["simcore",
                                                         "scalability"]
        assert "results" not in lines[0]            # compact, diffable
        assert lines[0]["events_per_sec"] == {"stream4": 100.0}
        assert lines[0]["flight_overhead"] == {"overhead": 0.01}
        assert lines[1]["sublinear"] == {"ok": True}
        assert all(line["meta"]["git_sha"] for line in lines)
