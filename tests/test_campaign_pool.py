"""The batch worker pool and its machine-reuse determinism contract.

A pooled worker holds one :class:`~repro.core.machine.MachineFactory`
for its lifetime and builds every run's machine through it.  That is
only sound if a machine built from a reused factory behaves
bit-identically to a fresh one — the directed test here — and if the
pool's records match the one-process-per-run path byte for byte.
"""

import random

from repro.campaign.pool import BatchWorkerPool, _execute_schedule_run
from repro.campaign.records import RunStatus
from repro.campaign.runner import CampaignRunner
from repro.campaign.schedule import make_schedule
from repro.core.machine import MachineFactory


def _strip_wall_clock(payload):
    data = dict(payload)
    data.pop("elapsed_s", None)
    return data


def _schedules(count, num_nodes=4):
    rng = random.Random(17)
    return [make_schedule("random-multi", rng, num_nodes=num_nodes)
            for _ in range(count)]


class TestMachineReuseDeterminism:
    def test_reused_factory_matches_fresh_machines(self):
        """The directed test: one factory across back-to-back runs vs a
        fresh machine per run — identical payloads (minus wall clock)."""
        schedules = _schedules(3)
        factory = MachineFactory()
        reused = [_execute_schedule_run(
            schedule.to_dict(), seed=100 + index,
            run_limit=60_000_000_000, mem_per_node=64 << 10,
            l2_size=8 << 10, factory=factory)
            for index, schedule in enumerate(schedules)]
        fresh = [_execute_schedule_run(
            schedule.to_dict(), seed=100 + index,
            run_limit=60_000_000_000, mem_per_node=64 << 10,
            l2_size=8 << 10)
            for index, schedule in enumerate(schedules)]
        for left, right in zip(reused, fresh):
            assert _strip_wall_clock(left) == _strip_wall_clock(right)

    def test_reuse_holds_with_coverage_extraction(self):
        schedule = _schedules(1)[0]
        factory = MachineFactory()
        reused = _execute_schedule_run(
            schedule.to_dict(), seed=7, run_limit=60_000_000_000,
            mem_per_node=64 << 10, l2_size=8 << 10, factory=factory,
            coverage=True)
        fresh = _execute_schedule_run(
            schedule.to_dict(), seed=7, run_limit=60_000_000_000,
            mem_per_node=64 << 10, l2_size=8 << 10, coverage=True)
        assert _strip_wall_clock(reused) == _strip_wall_clock(fresh)

    def test_factory_memoizes_topology(self):
        factory = MachineFactory()
        from repro.core.config import MachineConfig
        config = MachineConfig(num_nodes=4, mem_per_node=64 << 10,
                               l2_size=8 << 10, seed=1)
        machine_a = factory.build(config)
        machine_b = factory.build(config)
        assert machine_a.topology is machine_b.topology


class TestBatchWorkerPool:
    def test_pool_results_match_inline_execution(self):
        schedules = _schedules(4)
        expected = {
            index: _strip_wall_clock(_execute_schedule_run(
                schedule.to_dict(), seed=200 + index,
                run_limit=60_000_000_000, mem_per_node=64 << 10,
                l2_size=8 << 10))
            for index, schedule in enumerate(schedules)}
        got = {}
        with BatchWorkerPool(jobs=2, timeout_s=120.0,
                             run_limit=60_000_000_000) as pool:
            pending = list(enumerate(schedules))
            while pending or len(got) < len(schedules):
                while pending and pool.idle_count():
                    index, schedule = pending.pop(0)
                    pool.submit(index, schedule.to_dict(), 200 + index)
                for index, payload in pool.poll():
                    got[index] = _strip_wall_clock(payload)
        assert got == expected

    def test_pool_statuses_are_valid(self):
        statuses = {status.value for status in RunStatus}
        with BatchWorkerPool(jobs=1, timeout_s=120.0,
                             run_limit=60_000_000_000) as pool:
            pool.submit(0, _schedules(1)[0].to_dict(), 5)
            results = []
            while not results:
                results = pool.poll()
        assert results[0][1]["status"] in statuses


class TestCampaignRunnerReuse:
    def test_pooled_campaign_matches_per_process_campaign(self):
        """reuse_machines=True must change throughput, never records."""
        def run(reuse):
            runner = CampaignRunner(
                kind="random-multi", runs=3, campaign_seed=11,
                num_nodes=4, jobs=2, timeout_s=120.0,
                reuse_machines=reuse)
            records = runner.run().records
            return [
                {"run_index": r.run_index, "seed": r.seed,
                 "status": r.status, "schedule": r.schedule,
                 "problems": r.problems, "restarts": r.restarts,
                 "episodes": r.episodes, "metrics": r.metrics,
                 "forensics": r.forensics}
                for r in sorted(records, key=lambda r: r.run_index)]
        assert run(True) == run(False)
