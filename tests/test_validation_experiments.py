"""End-to-end validation-experiment harness tests (paper §5.2 methodology).

Each test is one full Table 5.3-style run at a small configuration: fill,
inject, recover, read all memory, verify against the oracle.
"""

import pytest

from repro import MachineConfig
from repro.core.experiment import (
    expected_failed_nodes,
    run_validation_experiment,
)
from repro.faults.models import FaultSpec, FaultType


def config(seed, num_nodes=4):
    return MachineConfig(num_nodes=num_nodes, mem_per_node=1 << 16,
                         l2_size=1 << 13, seed=seed)


@pytest.mark.parametrize("fault", [
    FaultSpec.node_failure(3),
    FaultSpec.router_failure(2),
    FaultSpec.link_failure(0, 1),
    FaultSpec.infinite_loop(1),
    FaultSpec.false_alarm(0),
], ids=lambda f: f.fault_type.value)
def test_validation_passes_for_every_fault_type(fault):
    result = run_validation_experiment(fault, config=config(seed=31))
    assert result.passed, result.problems[:5]
    assert result.lines_checked > 0


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_validation_across_seeds(seed):
    result = run_validation_experiment(
        FaultSpec.node_failure(2), config=config(seed=seed), seed=seed)
    assert result.passed, result.problems[:5]


def test_marked_lines_subset_of_allowed():
    result = run_validation_experiment(
        FaultSpec.node_failure(1), config=config(seed=77))
    assert result.lines_marked_incoherent <= result.lines_allowed_incoherent


def test_false_alarm_marks_nothing():
    result = run_validation_experiment(
        FaultSpec.false_alarm(2), config=config(seed=5))
    assert result.passed
    assert result.lines_marked_incoherent == 0


def test_node_failure_marks_something_when_state_exists():
    # With a 60% exclusive fill, the dead node almost surely owned lines
    # homed elsewhere.
    result = run_validation_experiment(
        FaultSpec.node_failure(3), config=config(seed=13),
        fill_fraction=0.8)
    assert result.passed
    assert result.lines_marked_incoherent > 0


def test_eight_node_machine():
    result = run_validation_experiment(
        FaultSpec.infinite_loop(5), config=config(seed=9, num_nodes=8))
    assert result.passed, result.problems[:5]


def test_expected_failed_nodes_mapping():
    from repro import FlashMachine
    machine = FlashMachine(config(seed=1))
    assert expected_failed_nodes(
        machine, FaultSpec.node_failure(2)) == {2}
    assert expected_failed_nodes(
        machine, FaultSpec.router_failure(1)) == {1}
    assert expected_failed_nodes(
        machine, FaultSpec.infinite_loop(0)) == {0}
    assert expected_failed_nodes(
        machine, FaultSpec.link_failure(0, 1)) == set()
    assert expected_failed_nodes(
        machine, FaultSpec.false_alarm(0)) == set()


def test_validation_result_string_form():
    result = run_validation_experiment(
        FaultSpec.false_alarm(1), config=config(seed=3))
    text = str(result)
    assert "PASS" in text and "false_alarm" in text


def test_recovery_report_attached():
    result = run_validation_experiment(
        FaultSpec.node_failure(3), config=config(seed=8))
    report = result.recovery_report
    assert report.total_duration > 0
    assert report.available_nodes == {0, 1, 2}
