"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Channel, Event, Interrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(30, log.append, "c")
    sim.schedule(10, log.append, "a")
    sim.schedule(20, log.append, "b")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 30


def test_schedule_ties_break_by_insertion_order():
    sim = Simulator()
    log = []
    sim.schedule(10, log.append, "first")
    sim.schedule(10, log.append, "second")
    sim.run()
    assert log == ["first", "second"]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_cancelled_call_does_not_run():
    sim = Simulator()
    log = []
    handle = sim.schedule(10, log.append, "x")
    handle.cancel()
    sim.run()
    assert log == []


def test_run_until_time_bound():
    sim = Simulator()
    log = []
    sim.schedule(10, log.append, "a")
    sim.schedule(100, log.append, "b")
    sim.run(until=50)
    assert log == ["a"]
    assert sim.now == 50


def test_process_timeout_advances_clock():
    sim = Simulator()
    times = []

    def proc():
        yield 5
        times.append(sim.now)
        yield 7.5
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [5.0, 12.5]


def test_process_result_captured():
    sim = Simulator()

    def proc():
        yield 1
        return 42

    process = sim.spawn(proc())
    sim.run()
    assert process.result == 42
    assert not process.alive


def test_process_waits_for_event():
    sim = Simulator()
    event = Event(sim)
    seen = []

    def waiter():
        value = yield event
        seen.append((sim.now, value))

    sim.spawn(waiter())
    sim.schedule(25, event.trigger, "payload")
    sim.run()
    assert seen == [(25.0, "payload")]


def test_pretriggered_event_resumes_immediately():
    sim = Simulator()
    event = Event(sim)
    event.trigger("early")
    seen = []

    def waiter():
        value = yield event
        seen.append(value)

    sim.spawn(waiter())
    sim.run()
    assert seen == ["early"]


def test_event_double_trigger_raises():
    sim = Simulator()
    event = Event(sim)
    event.trigger()
    with pytest.raises(RuntimeError):
        event.trigger()


def test_process_joins_process():
    sim = Simulator()
    order = []

    def child():
        yield 10
        order.append("child-done")
        return "child-result"

    def parent():
        child_proc = sim.spawn(child())
        result = yield child_proc
        order.append(("parent-saw", result, sim.now))

    sim.spawn(parent())
    sim.run()
    assert order == ["child-done", ("parent-saw", "child-result", 10.0)]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    events = [Event(sim) for _ in range(3)]
    seen = []

    def waiter():
        values = yield AllOf(events)
        seen.append((sim.now, values))

    sim.spawn(waiter())
    sim.schedule(5, events[1].trigger, "b")
    sim.schedule(10, events[0].trigger, "a")
    sim.schedule(15, events[2].trigger, "c")
    sim.run()
    assert seen == [(15.0, ["a", "b", "c"])]


def test_all_of_empty_resumes_immediately():
    sim = Simulator()
    seen = []

    def waiter():
        values = yield AllOf([])
        seen.append(values)

    sim.spawn(waiter())
    sim.run()
    assert seen == [[]]


def test_any_of_resumes_on_first():
    sim = Simulator()
    events = [Event(sim) for _ in range(3)]
    seen = []

    def waiter():
        index, value = yield AnyOf(events)
        seen.append((sim.now, index, value))

    sim.spawn(waiter())
    sim.schedule(5, events[2].trigger, "late-winner")
    sim.schedule(9, events[0].trigger, "loser")
    sim.run()
    assert seen == [(5.0, 2, "late-winner")]


def test_interrupt_throws_into_generator():
    sim = Simulator()
    seen = []

    def victim():
        try:
            yield 1000
        except Interrupt as interrupt:
            seen.append((sim.now, interrupt.cause))

    process = sim.spawn(victim())
    sim.schedule(40, process.interrupt, "nmi")
    sim.run()
    assert seen == [(40.0, "nmi")]


def test_interrupt_cancels_pending_timeout():
    sim = Simulator()
    seen = []

    def victim():
        try:
            yield 1000
        except Interrupt:
            seen.append(sim.now)
            yield 5
            seen.append(sim.now)

    process = sim.spawn(victim())
    sim.schedule(10, process.interrupt, None)
    sim.run()
    assert seen == [10.0, 15.0]
    assert sim.now == 15.0   # original 1000ns timeout did not fire


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield 1

    process = sim.spawn(quick())
    sim.run()
    process.interrupt("too-late")   # must not raise
    sim.run()


def test_unhandled_interrupt_kills_process_quietly():
    sim = Simulator()

    def victim():
        yield 1000

    process = sim.spawn(victim())
    sim.schedule(5, process.interrupt, "boom")
    sim.run()
    assert not process.alive
    assert isinstance(process.exception, Interrupt)


def test_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield 1
        raise ValueError("model bug")

    sim.spawn(bad())
    with pytest.raises(ValueError):
        sim.run()


def test_kill_stops_process():
    sim = Simulator()
    ran = []

    def victim():
        yield 10
        ran.append("should not happen")

    process = sim.spawn(victim())
    sim.schedule(5, process.kill)
    sim.run()
    assert ran == []
    assert not process.alive


def test_channel_fifo_order():
    sim = Simulator()
    channel = Channel(sim)
    seen = []

    def consumer():
        for _ in range(3):
            item = yield channel.get()
            seen.append(item)

    sim.spawn(consumer())
    sim.schedule(1, channel.put, "a")
    sim.schedule(2, channel.put, "b")
    sim.schedule(3, channel.put, "c")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_channel_get_before_put_blocks():
    sim = Simulator()
    channel = Channel(sim)
    seen = []

    def consumer():
        item = yield channel.get()
        seen.append((sim.now, item))

    sim.spawn(consumer())
    sim.schedule(50, channel.put, "x")
    sim.run()
    assert seen == [(50.0, "x")]


def test_channel_try_get_and_peek():
    sim = Simulator()
    channel = Channel(sim)
    assert channel.try_get() is None
    assert channel.peek() is None
    channel.put(1)
    channel.put(2)
    assert channel.peek() == 1
    assert channel.try_get() == 1
    assert len(channel) == 1


def test_channel_clear_reports_dropped():
    sim = Simulator()
    channel = Channel(sim)
    channel.put("a")
    channel.put("b")
    assert channel.clear() == ["a", "b"]
    assert len(channel) == 0


def test_channel_watch_fires_on_put():
    sim = Simulator()
    channel = Channel(sim)
    seen = []

    def watcher():
        yield channel.watch()
        seen.append(sim.now)

    sim.spawn(watcher())
    sim.schedule(7, channel.put, "data")
    sim.run()
    assert seen == [7.0]
    assert len(channel) == 1   # watch does not consume


def test_two_channel_ping_pong():
    sim = Simulator()
    a_to_b = Channel(sim)
    b_to_a = Channel(sim)
    transcript = []

    def side_a():
        a_to_b.put("ping-0")
        for round_no in range(1, 3):
            msg = yield b_to_a.get()
            transcript.append(("a", sim.now, msg))
            yield 10
            a_to_b.put("ping-%d" % round_no)

    def side_b():
        for _ in range(3):
            msg = yield a_to_b.get()
            transcript.append(("b", sim.now, msg))
            yield 5
            b_to_a.put("pong for " + msg)

    sim.spawn(side_a())
    sim.spawn(side_b())
    sim.run()
    b_msgs = [entry[2] for entry in transcript if entry[0] == "b"]
    assert b_msgs == ["ping-0", "ping-1", "ping-2"]


def test_rng_determinism():
    values_1 = Simulator(seed=123).rng.random()
    values_2 = Simulator(seed=123).rng.random()
    assert values_1 == values_2


def test_schedule_at_clamps_epsilon_negative_delay():
    # A caller computing an absolute time from `now` through a chain of
    # float additions can come out a few ulps below `now`; schedule_at
    # must clamp that to "now" instead of raising.
    sim = Simulator()
    sim.schedule(0.1 + 0.2, lambda: None)   # 0.30000000000000004
    sim.run()
    log = []
    target = sim.now - 1e-13
    sim.schedule_at(target, log.append, "clamped")
    sim.run()
    assert log == ["clamped"]


def test_schedule_at_rejects_genuinely_past_time():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(50, lambda: None)


def test_pending_events_excludes_cancelled():
    sim = Simulator(compact_min_cancelled=10**9)   # compaction off
    handles = [sim.schedule(10 + i, lambda: None) for i in range(8)]
    for handle in handles[:5]:
        handle.cancel()
    assert sim.pending_events == 3
    assert sim.heap_size == 8


def test_cancel_storm_keeps_heap_bounded():
    # MAGIC's per-op watchdog pattern: arm a long-deadline timer, cancel
    # it almost immediately.  Lazy deletion alone would grow the heap to
    # ~`ops` entries; compaction must keep it within a small multiple of
    # the live count.
    sim = Simulator()
    ops = 20_000
    peak = {"heap": 0}

    def stream():
        for _ in range(ops):
            timer = sim.schedule(1_000_000.0, pytest.fail)
            yield 10.0
            timer.cancel()
            peak["heap"] = max(peak["heap"], sim.heap_size)

    sim.spawn(stream())
    sim.run()
    assert peak["heap"] < 256
    assert sim.compactions > 0
    assert sim.events_executed >= ops


def test_cancel_after_fire_does_not_corrupt_accounting():
    # Cancelling a call that already ran (the common waker/canceller
    # race) must not skew the dead-entry count that drives compaction.
    sim = Simulator()
    handle = sim.schedule(5, lambda: None)
    sim.run()
    handle.cancel()
    handle.cancel()
    assert sim._cancelled == 0
    assert sim.pending_events == 0


def _compaction_workload(sim, log):
    """Deterministic arm/cancel/sleep mix driven by the sim's own RNG."""

    def worker(worker_id):
        armed = []
        for step_no in range(300):
            roll = sim.rng.random()
            if roll < 0.45:
                armed.append(sim.schedule(
                    50_000.0 + step_no, log.append,
                    ("fired", worker_id, step_no)))
            elif armed and roll < 0.85:
                armed.pop(0).cancel()
            yield 1.0 + (roll * 5.0)
            log.append(("tick", worker_id, step_no, sim.now))

    for worker_id in range(6):
        sim.spawn(worker(worker_id), name="w%d" % worker_id)


def test_compaction_preserves_event_order_bit_identically():
    # The determinism directed test: the same seed must produce the same
    # event trace whether the heap compacts aggressively, lazily, or
    # never.  Compaction may only change *when* dead entries are
    # reclaimed, never what executes or at what virtual time.
    traces = []
    for compact_min in (1, 64, 10**9):
        sim = Simulator(seed=42, compact_min_cancelled=compact_min)
        log = []
        _compaction_workload(sim, log)
        sim.run()
        traces.append((log, sim.now, sim.events_executed))
    assert traces[0][0] == traces[1][0] == traces[2][0]
    assert traces[0][1] == traces[1][1] == traces[2][1]
    assert traces[0][2] == traces[1][2] == traces[2][2]
    # The aggressive config really did compact; the disabled one never.
    aggressive = Simulator(seed=42, compact_min_cancelled=1)
    log = []
    _compaction_workload(aggressive, log)
    aggressive.run()
    assert aggressive.compactions > 0


def test_channel_watcher_reregister_during_callback_not_dropped():
    # A watcher that re-registers from its wakeup must see the next put
    # exactly once (the pre-snapshot code could drop or double-fire it).
    sim = Simulator()
    channel = Channel(sim)
    wakeups = []

    def watcher():
        while len(wakeups) < 3:
            yield channel.watch()
            wakeups.append(sim.now)

    sim.spawn(watcher())
    sim.schedule(10, channel.put, "a")
    sim.schedule(20, channel.put, "b")
    sim.schedule(30, channel.put, "c")
    sim.run()
    assert wakeups == [10.0, 20.0, 30.0]


def test_channel_put_discards_stale_watchers():
    # A watch event triggered out-of-band must not be re-fired by put.
    sim = Simulator()
    channel = Channel(sim)
    stale = channel.watch()
    stale.trigger("external")
    fresh = channel.watch()
    channel.put("item")
    sim.run()
    assert fresh.triggered
    assert fresh.value is channel
    assert channel._watchers == []


def test_channel_many_watchers_all_fire_once():
    sim = Simulator()
    channel = Channel(sim)
    fired = []
    for index in range(5):
        channel.watch().subscribe(
            lambda value, index=index: fired.append(index))
    channel.put("x")
    sim.run()
    assert sorted(fired) == [0, 1, 2, 3, 4]
    assert channel._watchers == []


def test_run_until_predicate():
    sim = Simulator()
    state = {"done": False}

    def proc():
        yield 100
        state["done"] = True
        yield 100

    sim.spawn(proc())
    sim.run_until(lambda: state["done"], limit=1_000)
    assert sim.now == 100.0
