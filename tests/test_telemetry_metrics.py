"""Tests for the metrics registry, hardware-stat harvesting and the
per-run summary the campaign engine records."""

import pytest

from repro.campaign.records import RunRecord, RunStatus
from repro.campaign.schedule import FaultSchedule, TimedFault
from repro.core.config import MachineConfig
from repro.core.experiment import run_schedule_experiment
from repro.faults.models import FaultSpec
from repro.telemetry.metrics import (
    MACHINE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    harvest_machine_metrics,
    summarize_run,
)
from repro.telemetry.scalability import run_scalability_point


class TestInstruments:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_histogram_stats(self):
        histogram = Histogram()
        for value in (1, 3, 100):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 1 and histogram.max == 100
        assert abs(histogram.mean - 104 / 3) < 1e-9

    def test_histogram_power_of_two_buckets(self):
        histogram = Histogram()
        histogram.observe(3)     # -> bucket 4
        histogram.observe(4)     # -> bucket 4
        histogram.observe(5)     # -> bucket 8
        assert histogram.buckets == {4: 2, 8: 1}
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["buckets"] == {4: 2, 8: 1}

    def test_percentile_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(50) is None
        assert histogram.percentiles() == {"p50": None, "p95": None,
                                           "p99": None}

    def test_percentile_walks_buckets(self):
        histogram = Histogram()
        for value in range(1, 101):          # buckets 1, 2, 4, ... 128
            histogram.observe(value)
        # p50 lands in the bucket holding rank 50 (bound 64); the top
        # percentiles land in the last bucket, clipped to the true max.
        assert histogram.percentile(50) == 64
        assert histogram.percentile(95) == 100
        assert histogram.percentile(99) == 100

    def test_percentile_single_observation(self):
        histogram = Histogram()
        histogram.observe(7)
        assert histogram.percentiles() == {"p50": 7, "p95": 7, "p99": 7}

    def test_snapshot_includes_percentiles(self):
        histogram = Histogram()
        histogram.observe(3)
        snapshot = histogram.snapshot()
        assert snapshot["p50"] == 3 and snapshot["p99"] == 3


class TestRegistry:
    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x", node=1) is registry.counter("x", node=1)
        assert registry.counter("x", node=1) is not registry.counter(
            "x", node=2)

    def test_machine_wide_label(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert registry.counter_by_node("x") == {}
        assert registry.counter_total("x") == 1

    def test_aggregation_across_nodes(self):
        registry = MetricsRegistry()
        registry.counter("drops", node=0).inc(2)
        registry.counter("drops", node=1).inc(3)
        registry.counter("other", node=0).inc(100)
        assert registry.counter_total("drops") == 5
        assert registry.counter_by_node("drops") == {0: 2, 1: 3}

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("c", node=2).inc()
        registry.gauge("g").set(7)
        registry.histogram("h", node=0).observe(4)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"]["2"] == 1
        assert snapshot["gauges"]["g"][MACHINE] == 7
        assert snapshot["histograms"]["h"]["0"]["count"] == 1
        assert registry.names() == ["c", "g", "h"]


class TestHarvestAndSummary:
    def test_harvest_after_recovery(self, recovered_point):
        machine = recovered_point
        registry = harvest_machine_metrics(machine)
        assert registry.counter_total("router.forwarded") > 0
        assert registry.counter_total("magic.timeouts") >= 1
        assert registry.counter_total("recovery.episodes") == 1
        total = registry.histogram("recovery.total_ns")
        assert total.count == 1 and total.min > 0
        assert registry.gauge("sim.events_executed").value > 0

    def test_summarize_run_shape(self, recovered_point):
        summary = summarize_run(recovered_point)
        assert summary["packets"]["forwarded"] > 0
        assert summary["packets"]["delivered"] > 0
        assert summary["detectors"]["timeouts"] >= 1
        assert summary["recovery"]["episodes"] == 1
        assert summary["recovery"]["total_ms"] > 0
        assert set(summary["recovery"]["phase_ms"]) >= {
            "P1", "P2", "P3", "P4"}
        assert summary["sim_events"] > 0

    def test_summary_reports_recovery_percentiles(self, recovered_point):
        summary = summarize_run(recovered_point)
        percentiles = summary["recovery"]["total_ms_percentiles"]
        assert set(percentiles) == {"p50", "p95", "p99"}
        # One episode: every percentile is that episode's (bucketed,
        # max-clipped) latency — the exact total in ms.
        assert percentiles["p50"] == summary["recovery"]["total_ms"]
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]

    def test_summary_is_json_friendly(self, recovered_point):
        import json
        json.dumps(summarize_run(recovered_point))


@pytest.fixture(scope="module")
def recovered_point():
    """One recovered 4-node machine, shared across harvesting tests."""
    from repro.core.experiment import _start_prober
    from repro.core.machine import FlashMachine
    config = MachineConfig(num_nodes=4, mem_per_node=64 << 10,
                           l2_size=8 << 10, seed=0)
    machine = FlashMachine(config).start()
    machine.quiesce()
    fault = machine.injector.inject(FaultSpec.node_failure(3))
    _start_prober(machine, fault)
    machine.run_until_recovered()
    return machine


class TestCampaignMetrics:
    def test_schedule_experiment_collects_metrics(self):
        schedule = FaultSchedule(
            entries=(TimedFault(FaultSpec.node_failure(3), time=100_000.0),),
            num_nodes=4)
        config = MachineConfig(num_nodes=4, mem_per_node=64 << 10,
                               l2_size=8 << 10, seed=0)
        result = run_schedule_experiment(schedule, config=config,
                                         collect_metrics=True)
        assert result.metrics is not None
        assert result.metrics["recovery"]["episodes"] == result.episodes
        # Off by default: the plain path stays metrics-free.
        plain = run_schedule_experiment(schedule, config=config)
        assert plain.metrics is None

    def test_run_record_metrics_roundtrip(self):
        record = RunRecord(
            run_index=1, seed=2, status=RunStatus.PASS,
            schedule={"entries": []},
            metrics={"recovery": {"episodes": 1}})
        decoded = RunRecord.from_dict(record.to_dict())
        assert decoded.metrics == {"recovery": {"episodes": 1}}

    def test_run_record_metrics_default_empty(self):
        decoded = RunRecord.from_dict({
            "run_index": 0, "seed": 0, "status": "pass", "schedule": {}})
        assert decoded.metrics == {}


class TestScalabilityPointMetrics:
    def test_point_reports_throughput(self):
        result = run_scalability_point(4)
        assert result["completed"]
        assert result["sim"]["events_executed"] > 0
        assert result["sim"]["events_per_sec"] > 0
        assert result["recovery"]["total_ms"] > 0
