"""The fuzz loop end to end: corpus, sessions, resume, replay, CLI.

The slow tests here run real (small) simulations; they are sized so the
whole module stays within a tier-1 budget while still proving the
acceptance criteria: coverage grows past the generator seeds, sessions
resume from JSONL, and any recorded lineage replays bit-identically.
"""

import json

import pytest

from repro.campaign.records import RunStatus
from repro.campaign.runner import run_schedule_isolated
from repro.campaign.schedule import SCHEDULE_GENERATORS
from repro.cli import main as cli_main
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.engine import FuzzEngine, format_report
from repro.fuzz.mutate import (
    derive_mutant_seed,
    rebuild_from_lineage,
    rng_for,
    root_schedule,
)


def _entry(kind, salt, features):
    schedule, lineage = root_schedule(0, kind, salt)
    return CorpusEntry(lineage=lineage, schedule=schedule, seed=salt,
                       features=features)


class TestCorpus:
    def test_add_dedups_by_fingerprint(self):
        corpus = Corpus()
        assert corpus.add(_entry("random-multi", 0, ["a"]))
        assert not corpus.add(_entry("random-multi", 0, ["b"]))
        assert corpus.add(_entry("random-multi", 1, ["a"]))
        assert len(corpus) == 2

    def test_select_parent_prefers_rare_features(self):
        corpus = Corpus()
        corpus.add(_entry("random-multi", 0, ["common"]))
        corpus.add(_entry("random-multi", 1, ["rare"]))
        coverage = CoverageMap()
        for _ in range(50):
            coverage.add(["common"])
        coverage.add(["rare"])
        rng = rng_for(0, "test-selection")
        picks = [corpus.select_parent(rng, coverage).lineage
                 for _ in range(200)]
        rare_lineage = corpus.entries[1].lineage
        assert picks.count(rare_lineage) > 100

    def test_select_donor_excludes_parent(self):
        corpus = Corpus()
        corpus.add(_entry("random-multi", 0, []))
        parent = corpus.entries[0]
        rng = rng_for(0, "donor")
        assert corpus.select_donor(rng, parent) is None
        corpus.add(_entry("flaky-links", 1, []))
        for _ in range(10):
            donor = corpus.select_donor(rng, parent)
            assert donor.fingerprint != parent.fingerprint

    def test_jsonl_round_trip_tolerates_torn_line(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        corpus = Corpus()
        for salt in range(3):
            entry = _entry("random-multi", salt, ["f%d" % salt])
            corpus.add(entry)
            corpus.append_to(path, entry)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lineage": "g:torn')   # killed mid-append
        loaded = Corpus.load(path)
        assert len(loaded) == 3
        assert [e.to_dict() for e in loaded.entries] \
            == [e.to_dict() for e in corpus.entries]


class TestFuzzSession:
    """One tiny real session, shared across the assertions below."""

    RUNS = 8

    @classmethod
    def setup_class(cls):
        cls.out = None   # set via the fixture below

    @pytest.fixture(autouse=True, scope="class")
    def session(self, request, tmp_path_factory):
        out = tmp_path_factory.mktemp("fuzz")
        engine = FuzzEngine(campaign_seed=0, runs=self.RUNS, jobs=2,
                            out_dir=str(out), max_shrinks=1,
                            shrink_checks=10)
        report = engine.run()
        request.cls.out = out
        request.cls.engine = engine
        request.cls.report = report

    def test_all_runs_recorded(self):
        assert self.report["stats"]["runs"] == self.RUNS
        with open(self.out / "records.jsonl", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert sorted(r["run_index"] for r in records) \
            == list(range(self.RUNS))

    def test_coverage_grows_past_the_seed_corpus(self):
        """Acceptance criterion: the generators alone seed the corpus;
        fuzzing must reach coverage beyond run 0's features."""
        assert self.report["coverage_features"] > 0
        growth = self.report["growth"]
        assert growth[-1][1] > growth[0][1]
        assert self.report["corpus_size"] >= 1

    def test_seed_runs_cover_every_generator(self):
        with open(self.out / "records.jsonl", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        seeds = [r for r in records if r["op"] == "seed"
                 and r["run_index"] < len(SCHEDULE_GENERATORS)]
        kinds = {r["lineage"].split(":")[1] for r in seeds}
        assert kinds == set(SCHEDULE_GENERATORS)

    def test_every_recorded_lineage_rebuilds_its_schedule(self):
        with open(self.out / "records.jsonl", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        for record in records:
            rebuilt = rebuild_from_lineage(0, record["lineage"])
            assert rebuilt.to_dict() == record["schedule"], \
                record["lineage"]

    def test_recorded_run_replays_bit_identically(self):
        with open(self.out / "records.jsonl", encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        schedule = rebuild_from_lineage(0, record["lineage"])
        seed = derive_mutant_seed(0, record["lineage"])
        assert seed == record["seed"]

        def replay():
            data = run_schedule_isolated(schedule, seed,
                                         timeout_s=120.0).to_dict()
            data.pop("elapsed_s")
            return data

        first, second = replay(), replay()
        assert first == second
        assert first["status"] == record["status"]

    def test_resume_continues_at_next_index(self):
        resumed = FuzzEngine(campaign_seed=0, runs=self.RUNS,
                             out_dir=str(self.out))
        assert resumed.resume() == self.RUNS
        assert len(resumed.coverage) == self.report["coverage_features"]
        assert len(resumed.corpus) == self.report["corpus_size"]
        assert resumed._next_index == self.RUNS
        # A resumed session with a larger budget plans fresh indices.
        resumed.runs = self.RUNS + 1
        schedule, lineage, _op = resumed._plan_next(self.RUNS)
        assert lineage   # planning works off the reloaded corpus

    def test_report_formats(self):
        text = format_report(self.report)
        assert "coverage:" in text
        assert "%d runs" % self.RUNS in text


class TestStrategies:
    def test_random_strategy_plans_only_roots(self):
        engine = FuzzEngine(campaign_seed=0, runs=20, strategy="random")
        for run_index in range(12):
            _schedule, lineage, op = engine._plan_next(run_index)
            assert op == "seed"
            assert lineage.startswith("g:")
            assert "/m" not in lineage

    def test_coverage_strategy_breeds_after_seeding(self):
        engine = FuzzEngine(campaign_seed=0, runs=50)
        # Fake a seeded state: corpus + coverage without running sims.
        for salt, kind in enumerate(sorted(SCHEDULE_GENERATORS)):
            entry = _entry(kind, 0, ["f|%s" % kind])
            engine.coverage.add(entry.features)
            engine.corpus.add(entry)
            engine.seen_fingerprints.add(entry.fingerprint)
        ops = set()
        for run_index in range(len(SCHEDULE_GENERATORS), 40):
            _schedule, _lineage, op = engine._plan_next(run_index)
            ops.add(op)
        assert ops - {"seed"}, "mutation ops never selected"


class TestCli:
    def test_fuzz_session_and_replay(self, tmp_path, capsys):
        out = tmp_path / "session"
        code = cli_main(["fuzz", "--runs", "5", "--seed", "0", "--jobs",
                         "2", "--out", str(out), "--summary-json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["runs"] == 5
        assert payload["coverage_features"] > 0
        assert payload["out_dir"] == str(out)

        # Refuses to clobber an existing session without --resume.
        with pytest.raises(SystemExit):
            cli_main(["fuzz", "--runs", "5", "--seed", "0",
                      "--out", str(out)])

        # Resume extends the same directory.
        code = cli_main(["fuzz", "--runs", "6", "--seed", "0", "--out",
                         str(out), "--resume", "--summary-json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["runs"] == 6

        # Replay one recorded lineage; exit code mirrors the verdict.
        with open(out / "records.jsonl", encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        code = cli_main(["fuzz", "--replay", record["lineage"], "--seed",
                         "0", "--summary-json"])
        replayed = json.loads(capsys.readouterr().out)
        assert replayed["status"] == record["status"]
        assert (code == 0) == (record["status"]
                               == RunStatus.PASS.value)

    def test_replay_rejects_bad_lineage(self):
        with pytest.raises(SystemExit):
            cli_main(["fuzz", "--replay", "not-a-lineage", "--seed", "0"])
