"""Schema tests for the Chrome trace_event export (repro.telemetry.chrome).

The output must follow the Trace Event Format's JSON-object flavour so it
loads directly in chrome://tracing / Perfetto: a ``traceEvents`` array of
"X" (complete), "i" (instant) and "M" (metadata) events with microsecond
timestamps.
"""

import json

import pytest

from repro.telemetry.chrome import PID, to_chrome_trace, write_chrome_trace
from repro.telemetry.trace import TraceEvent


def _ev(time, category, name, node=None, **data):
    return TraceEvent(time, category, name, node, data)


@pytest.fixture()
def sample_events():
    return [
        _ev(1_000.0, "episode", "begin", node=0,
            trigger_node=0, reason="timeout", epoch=1),
        _ev(2_000.0, "phase", "enter", node=0, phase="P1", epoch=1),
        _ev(3_000.0, "phase", "enter", node=1, phase="P1", epoch=1),
        _ev(5_000.0, "phase", "exit", node=0, phase="P1", epoch=1),
        _ev(6_000.0, "phase", "exit", node=1, phase="P1", epoch=1),
        _ev(7_000.0, "pkt", "drop", node=1, reason="link",
            kind="<MessageKind.GET>"),
        _ev(8_000.0, "episode", "end", epoch=1, available=2),
    ]


class TestSchema:
    def test_top_level_shape(self, sample_events):
        payload = to_chrome_trace(sample_events)
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)

    def test_process_metadata_first(self, sample_events):
        payload = to_chrome_trace(sample_events, label="my run")
        first = payload["traceEvents"][0]
        assert first["ph"] == "M" and first["name"] == "process_name"
        assert first["args"]["name"] == "my run"

    def test_thread_metadata_per_node(self, sample_events):
        payload = to_chrome_trace(sample_events)
        names = {e["tid"]: e["args"]["name"]
                 for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names[0] == "node 0" and names[1] == "node 1"

    def test_phase_pairs_become_complete_events(self, sample_events):
        payload = to_chrome_trace(sample_events)
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert event["name"] == "P1"
            assert event["cat"] == "phase"
            assert event["pid"] == PID
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid", "args"}
        by_tid = {e["tid"]: e for e in complete}
        # ns -> us conversion
        assert by_tid[0]["ts"] == 2.0 and by_tid[0]["dur"] == 3.0
        assert by_tid[1]["ts"] == 3.0 and by_tid[1]["dur"] == 3.0

    def test_other_events_become_thread_instants(self, sample_events):
        payload = to_chrome_trace(sample_events)
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {
            "episode.begin", "pkt.drop", "episode.end"}
        for event in instants:
            assert event["s"] == "t"
            assert isinstance(event["ts"], float)

    def test_args_sanitized_to_json_scalars(self, sample_events):
        payload = to_chrome_trace(sample_events)
        text = json.dumps(payload)     # must not raise
        for event in json.loads(text)["traceEvents"]:
            for value in event["args"].values():
                assert isinstance(value, (str, int, float, bool,
                                          type(None)))

    def test_unpaired_enter_is_dropped(self):
        payload = to_chrome_trace([
            _ev(1.0, "phase", "enter", node=0, phase="P1", epoch=1)])
        assert [e for e in payload["traceEvents"] if e["ph"] == "X"] == []

    def test_write_roundtrip(self, sample_events, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_events, path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(
            to_chrome_trace(sample_events)))


class TestFlowArrows:
    def _causal_events(self):
        return [
            TraceEvent(1_000.0, "fault", "inject", 3, {"root": "F0"}, 0),
            TraceEvent(2_000.0, "pkt", "send", 3, {"kind": "GETX"}, 1, 0),
            TraceEvent(3_000.0, "pkt", "recv", 1, {"kind": "GETX"}, 2,
                       (1, 99)),   # merged cause with one unknown parent
        ]

    def test_cause_edges_become_flow_pairs(self):
        payload = to_chrome_trace(self._causal_events())
        starts = [e for e in payload["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "f"]
        # Two resolvable edges (0->1, 1->2); the eid-99 parent is unknown
        # and silently skipped.
        assert len(starts) == 2 and len(ends) == 2
        for start, end in zip(starts, ends):
            assert start["id"] == end["id"]
            assert start["cat"] == end["cat"] == "flow"
            assert end["bp"] == "e"
            assert start["ts"] <= end["ts"]
        # The 0->1 arrow stays on node 3's track; 1->2 crosses to node 1.
        assert starts[0]["tid"] == 3 and ends[0]["tid"] == 3
        assert starts[1]["tid"] == 3 and ends[1]["tid"] == 1

    def test_no_cause_no_flow_events(self, sample_events):
        payload = to_chrome_trace(sample_events)
        assert [e for e in payload["traceEvents"]
                if e.get("cat") == "flow"] == []
