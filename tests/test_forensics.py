"""Fault forensics: causal DAGs, blast radii and containment audits.

The directed pair at the heart of this file mirrors the paper's §3.3
argument observationally:

* a contained fault's causal descendants stay inside its failure unit
  (except repair traffic and packets destroyed at the boundary), so the
  audit verdict is ``contained`` with a nonempty blast radius;
* with the firewall disabled, a rogue node's speculative write-grant
  escapes the cell, the audit flags the very causal path whose corruption
  the oracle's committed-value bookkeeping also exposes.
"""

from repro import FaultSpec, FlashMachine, MachineConfig
from repro.core.experiment import run_validation_experiment
from repro.interconnect.packet import merge_causes
from repro.node.processor import FlushLine, SpeculativeStore, Store
from repro.telemetry import Telemetry, analyze, build_dag, forensic_summary
from repro.telemetry.forensics import format_forensics
from repro.telemetry.scalability import run_scalability_point
from repro.telemetry.trace import TraceEvent, TraceRecorder


def small_config(**overrides):
    defaults = dict(num_nodes=4, mem_per_node=1 << 16, l2_size=1 << 13,
                    seed=19, failure_units=((0, 1), (2, 3)))
    defaults.update(overrides)
    return MachineConfig(**defaults)


def _event(eid, cause=None, category="pkt", name="send", node=0, **data):
    return TraceEvent(float(eid), category, name, node, data, eid, cause)


class TestCausalPlumbing:
    def test_emit_returns_eid_and_threads_cause(self):
        recorder = TraceRecorder()
        first = recorder.emit("fault", "inject", node=1)
        second = recorder.emit("pkt", "send", node=1, cause=first)
        assert first == 0 and second == 1
        assert recorder.events[1].cause == 0
        assert recorder.events[0].cause is None

    def test_emit_cause_not_leaked_into_data(self):
        recorder = TraceRecorder()
        recorder.emit("pkt", "drop", node=2, cause=7, reason="link")
        assert recorder.events[0].data == {"reason": "link"}

    def test_to_dict_carries_eid_and_cause(self):
        recorder = TraceRecorder()
        recorder.emit("a", "b", cause=(3, 4))
        payload = recorder.events[0].to_dict()
        assert payload["eid"] == 0 and payload["cause"] == [3, 4]

    def test_merge_causes(self):
        assert merge_causes(None, None) is None
        assert merge_causes(5, None) == 5
        assert merge_causes(None, 5) == 5
        assert merge_causes(5, 5) == 5
        assert merge_causes(5, 6) == (5, 6)
        assert merge_causes((5, 6), 7) == (5, 6, 7)
        assert merge_causes((5, 6), (6, 8)) == (5, 6, 8)

    def test_build_dag_children_and_dangling(self):
        events = [_event(0), _event(1, cause=0), _event(2, cause=(0, 1)),
                  _event(3, cause=99)]
        children, dangling = build_dag(events)
        assert children[0] == [1, 2]
        assert children[1] == [2]
        assert dangling == 1


class TestContainedFault:
    def test_node_failure_blast_radius_confined_to_cell(self):
        telemetry = Telemetry()
        result = run_validation_experiment(
            FaultSpec.node_failure(7), seed=0, telemetry=telemetry)
        assert result.passed
        report = analyze(telemetry.recorder)
        assert report.verdict == "contained"
        assert not report.truncated
        assert len(report.faults) == 1
        fault = report.faults[0]
        assert fault.root == "F0"
        assert fault.cell == [7]
        # The fault reached something (nonempty radius) but nothing outside
        # the failed cell except repair and boundary-destroyed packets.
        assert fault.blast_events > 0
        assert fault.blast_nodes and set(fault.blast_nodes) <= {7}
        assert fault.violations == []
        assert fault.repair_events > 0
        text = format_forensics(report)
        assert "contained" in text and "F0" in text

    def test_injector_mints_distinct_roots(self):
        telemetry = Telemetry()
        machine = FlashMachine(small_config(), telemetry=telemetry).start()
        machine.injector.inject(FaultSpec.false_alarm(0))
        machine.run_until_recovered()
        machine.injector.inject(FaultSpec.false_alarm(3))
        machine.run_until_recovered()
        roots = [event.data["root"] for event in telemetry.recorder.events
                 if event.key == "fault.inject"]
        assert roots == ["F0", "F1"]

    def test_false_alarm_blast_is_pure_repair(self):
        telemetry = Telemetry()
        machine = FlashMachine(small_config(), telemetry=telemetry).start()
        machine.injector.inject(FaultSpec.false_alarm(2))
        machine.run_until_recovered()
        report = analyze(telemetry.recorder)
        fault = report.faults[0]
        # Nothing fails in a false alarm: every descendant is recovery
        # machinery, so the audit sees repair, not contamination.
        assert fault.verdict == "contained"
        assert fault.violations == [] and fault.crossings == []
        assert fault.repair_events > 0


class _EscapeRun:
    """The §3.3 speculative-write hazard, instrumented end to end."""

    def __init__(self, firewall_enabled):
        self.telemetry = Telemetry()
        self.machine = FlashMachine(
            small_config(firewall_enabled=firewall_enabled, seed=23),
            telemetry=self.telemetry).start()
        machine = self.machine
        self.line = machine.line_homed_at(0, 12)
        page = self.line - (self.line % machine.params.page_size)
        machine.nodes[0].magic.set_firewall(page, {0, 1})

        def victim():
            yield Store(self.line, value="good")
            yield FlushLine(self.line)

        machine.run_programs([(0, victim())])
        machine.quiesce()
        assert machine.oracle.committed_value(self.line) == "good"

        # Node 3's firmware is rogue from injection (delayed wedge with a
        # dwell beyond the test horizon): everything it sends descends
        # from fault F0, whose cell is {2, 3}.
        machine.injector.inject(
            FaultSpec.delayed_wedge(3, dwell=1e15))

        def speculator():
            yield SpeculativeStore(self.line)

        machine.run_programs([(3, speculator())])
        machine.quiesce()

    def corrupt_and_flush(self):
        """Model the hardware corruption: the rogue node scribbles on the
        exclusively held line (no oracle-visible Store commit) and writes
        it back, so home memory diverges from the committed value."""
        machine = self.machine
        machine.nodes[3].cache.write(self.line, "garbage")

        def flusher():
            yield FlushLine(self.line)

        machine.run_programs([(3, flusher())])
        machine.quiesce()

    def report(self):
        return analyze(self.telemetry.recorder)


class TestEscapeAudit:
    def test_firewall_disabled_escape_is_flagged(self):
        run = _EscapeRun(firewall_enabled=False)
        machine = run.machine
        from repro.common.types import CacheState
        assert machine.nodes[3].cache.state_of(run.line) == \
            CacheState.EXCLUSIVE
        run.corrupt_and_flush()

        # The observable corruption the oracle's bookkeeping exposes ...
        assert machine.nodes[0].memory.read_line(run.line) == "garbage"
        assert machine.oracle.committed_value(run.line) == "good"

        # ... and the causal path the audit flags for the same escape.
        report = run.report()
        assert report.verdict == "escape"
        fault = report.faults[0]
        assert fault.cell == [2, 3]
        kinds = {violation["kind"] for violation in fault.violations}
        assert "DATA_EXCL" in kinds     # write grant issued outside cell
        assert "PUT" in kinds           # dirty data absorbed outside cell
        assert all(violation["node"] not in (2, 3)
                   for violation in fault.violations)
        assert any(violation["line"] == run.line
                   for violation in fault.violations)
        text = format_forensics(report)
        assert "VIOLATION" in text and "escape" in text

    def test_firewall_enabled_same_scenario_is_contained(self):
        run = _EscapeRun(firewall_enabled=True)
        machine = run.machine
        from repro.common.types import CacheState
        # The §3.3 defense refused the grant: no exclusive copy escapes
        # into the rogue cell, and the audit agrees.
        assert machine.nodes[3].cache.state_of(run.line) == \
            CacheState.INVALID
        report = run.report()
        assert report.verdict == "contained"
        assert report.faults[0].violations == []


class TestTruncationDegradesGracefully:
    def test_dropped_events_accounting(self):
        recorder = TraceRecorder(max_events=2)
        eids = [recorder.emit("pkt", "send", node=0) for _ in range(5)]
        assert eids == [0, 1, None, None, None]
        assert len(recorder.events) == 2
        assert recorder.dropped_events == 3

    def test_capped_trace_reports_truncation(self):
        full = Telemetry()
        run_validation_experiment(FaultSpec.node_failure(7), seed=0,
                                  telemetry=full)
        total = len(full.recorder.events)
        inject = [event.eid for event in full.recorder.events
                  if event.key == "fault.inject"]
        cap = inject[0] + 50
        assert cap < total

        capped = Telemetry(max_events=cap)
        run_validation_experiment(FaultSpec.node_failure(7), seed=0,
                                  telemetry=capped)
        recorder = capped.recorder
        assert recorder.dropped_events == total - cap
        report = analyze(recorder)
        assert report.truncated
        assert report.dropped_events == total - cap
        # The DAG still builds and the fault is still found; the verdict
        # just carries the caveat.
        assert len(report.faults) == 1
        payload = report.to_dict()
        assert payload["truncated"] is True
        assert payload["dropped_events"] == total - cap

    def test_summary_carries_truncation_flag(self):
        capped = Telemetry(max_events=1500)
        run_validation_experiment(FaultSpec.node_failure(7), seed=0,
                                  telemetry=capped)
        summary = forensic_summary(capped.recorder)
        assert summary["truncated"] is True
        assert summary["verdict"] in ("contained", "escape", "no-fault")


class TestForensicsDeterminism:
    def test_forensic_analysis_leaves_runs_bit_identical(self):
        """Tracing + forensics must not perturb the simulation: the §9
        zero-cost contract extends to the causal ids (pure data on packets,
        never branched on)."""
        def fingerprint(telemetry):
            result = run_scalability_point(4, seed=5, telemetry=telemetry)
            if telemetry is not None:
                analyze(telemetry.recorder)
            sim = result["sim"]
            return (result["recovery"], sim["sim_ns"],
                    sim["events_executed"])

        plain = fingerprint(None)
        traced = fingerprint(Telemetry())
        assert traced == plain
        assert fingerprint(None) == plain
