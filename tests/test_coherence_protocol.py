"""Functional tests for the directory coherence protocol (no faults)."""

import pytest

from tests.helpers import RawMachine
from repro.common.errors import BusError
from repro.common.types import BusErrorKind, CacheState, DirState
from repro.node.processor import (
    Compute,
    FlushLine,
    Load,
    Store,
    UncachedLoad,
    UncachedStore,
)


def remote_line(machine, home_node, index=0):
    """A line address homed at ``home_node``."""
    start, _ = machine.address_map.usable_range(home_node)
    return start + index * machine.params.line_size


def run_one(machine, node_id, ops):
    """Run a straight-line program of ops; return the list of results."""
    results = []

    def program():
        for op in ops:
            value = yield op
            results.append(value)

    machine.run_programs([(node_id, program())])
    return results


class TestReadPath:
    def test_local_read_returns_initial_value(self):
        machine = RawMachine()
        line = remote_line(machine, 0)
        results = run_one(machine, 0, [Load(line)])
        assert results == [("init", line)]

    def test_remote_read_returns_initial_value(self):
        machine = RawMachine()
        line = remote_line(machine, 3)
        results = run_one(machine, 0, [Load(line)])
        assert results == [("init", line)]

    def test_read_fills_cache_shared(self):
        machine = RawMachine()
        line = remote_line(machine, 2)
        run_one(machine, 0, [Load(line)])
        assert machine.node(0).cache.state_of(line) == CacheState.SHARED

    def test_second_read_hits_in_cache(self):
        machine = RawMachine()
        line = remote_line(machine, 2)
        run_one(machine, 0, [Load(line), Load(line)])
        assert machine.node(0).cache.hits == 1

    def test_directory_tracks_sharers(self):
        machine = RawMachine()
        line = remote_line(machine, 2)
        run_one(machine, 0, [Load(line)])
        run_one(machine, 1, [Load(line)])
        entry = machine.node(2).directory.entry(line)
        assert entry.state == DirState.SHARED
        assert entry.sharers == {0, 1}

    def test_remote_read_slower_than_local(self):
        machine_a = RawMachine()
        line_local = remote_line(machine_a, 0)
        t0 = machine_a.sim.now
        run_one(machine_a, 0, [Load(line_local)])
        local_time = machine_a.sim.now - t0

        machine_b = RawMachine()
        line_remote = remote_line(machine_b, 3)
        t0 = machine_b.sim.now
        run_one(machine_b, 0, [Load(line_remote)])
        remote_time = machine_b.sim.now - t0
        assert remote_time > local_time


class TestWritePath:
    def test_store_makes_line_exclusive(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Store(line, value="v1")])
        assert machine.node(0).cache.state_of(line) == CacheState.EXCLUSIVE
        entry = machine.node(1).directory.entry(line)
        assert entry.state == DirState.EXCLUSIVE
        assert entry.owner == 0
        assert not entry.memory_valid

    def test_store_then_load_same_node(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        results = run_one(machine, 0, [Store(line, value="v1"), Load(line)])
        assert results == ["v1", "v1"]

    def test_store_visible_to_other_node(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Store(line, value="v1")])
        results = run_one(machine, 2, [Load(line)])
        assert results == ["v1"]

    def test_read_of_dirty_line_downgrades_owner(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Store(line, value="v1")])
        run_one(machine, 2, [Load(line)])
        assert machine.node(0).cache.state_of(line) == CacheState.SHARED
        entry = machine.node(1).directory.entry(line)
        assert entry.state == DirState.SHARED
        assert entry.sharers == {0, 2}
        assert entry.memory_valid
        assert machine.node(1).memory.read_line(line) == "v1"

    def test_write_invalidates_sharers(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Load(line)])
        run_one(machine, 2, [Load(line)])
        run_one(machine, 3, [Store(line, value="v2")])
        assert machine.node(0).cache.state_of(line) == CacheState.INVALID
        assert machine.node(2).cache.state_of(line) == CacheState.INVALID
        entry = machine.node(1).directory.entry(line)
        assert entry.state == DirState.EXCLUSIVE and entry.owner == 3

    def test_write_steals_exclusive_from_owner(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Store(line, value="v1")])
        results = run_one(machine, 2, [Store(line, value="v2"), Load(line)])
        assert results == ["v2", "v2"]
        assert machine.node(0).cache.state_of(line) == CacheState.INVALID

    def test_successive_writers_chain(self):
        machine = RawMachine()
        line = remote_line(machine, 0)
        for writer, value in [(1, "a"), (2, "b"), (3, "c"), (1, "d")]:
            run_one(machine, writer, [Store(line, value=value)])
        results = run_one(machine, 2, [Load(line)])
        assert results == ["d"]

    def test_store_hit_on_exclusive_line_is_fast(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Store(line, value="v1")])
        misses_before = machine.node(0).cache.misses
        run_one(machine, 0, [Store(line, value="v2")])
        assert machine.node(0).cache.misses == misses_before

    def test_store_to_shared_line_upgrades(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Load(line), Store(line, value="v9")])
        entry = machine.node(1).directory.entry(line)
        assert entry.state == DirState.EXCLUSIVE and entry.owner == 0
        results = run_one(machine, 2, [Load(line)])
        assert results == ["v9"]


class TestEvictionsAndWritebacks:
    def test_dirty_eviction_writes_back(self):
        machine = RawMachine(l2_lines=2)
        lines = [remote_line(machine, 1, i) for i in range(3)]
        run_one(machine, 0, [Store(lines[0], value="dirty0"),
                             Store(lines[1], value="dirty1"),
                             Store(lines[2], value="dirty2")])
        machine.run(until=machine.sim.now + 1_000_000)
        # lines[0] was evicted (LRU) and must be home and valid again.
        entry = machine.node(1).directory.entry(lines[0])
        assert entry.state == DirState.UNOWNED
        assert entry.memory_valid
        assert machine.node(1).memory.read_line(lines[0]) == "dirty0"

    def test_clean_eviction_silent(self):
        machine = RawMachine(l2_lines=2)
        lines = [remote_line(machine, 1, i) for i in range(3)]
        run_one(machine, 0, [Load(lines[0]), Load(lines[1]),
                             Load(lines[2])])
        machine.run(until=machine.sim.now + 1_000_000)
        # Home still lists node 0 as a sharer of the evicted line: a later
        # writer invalidates it and node 0 acks blindly.
        run_one(machine, 2, [Store(lines[0], value="w")])
        entry = machine.node(1).directory.entry(lines[0])
        assert entry.state == DirState.EXCLUSIVE and entry.owner == 2

    def test_flush_line_writes_back_dirty(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        run_one(machine, 0, [Store(line, value="vf"), FlushLine(line)])
        machine.run(until=machine.sim.now + 1_000_000)
        entry = machine.node(1).directory.entry(line)
        assert entry.state == DirState.UNOWNED and entry.memory_valid
        assert machine.node(1).memory.read_line(line) == "vf"
        assert machine.node(0).cache.state_of(line) == CacheState.INVALID


class TestContention:
    def test_many_writers_same_line(self):
        machine = RawMachine()
        line = remote_line(machine, 0)
        programs = []
        for node_id in range(4):
            def program(node_id=node_id):
                for i in range(5):
                    yield Store(line, value=("n%d" % node_id, i))
                    yield Compute(50)
            programs.append((node_id, program()))
        machine.run_programs(programs)
        # The directory must end in a consistent single-owner state.
        entry = machine.node(0).directory.entry(line)
        assert entry.state == DirState.EXCLUSIVE
        owner_value = machine.node(entry.owner).cache.value_of(line)
        assert owner_value is not None

    def test_readers_and_writer_interleaved(self):
        machine = RawMachine()
        line = remote_line(machine, 2)
        seen = []

        def writer():
            for i in range(4):
                yield Store(line, value=("w", i))
                yield Compute(200)

        def reader(node_id):
            for _ in range(6):
                value = yield Load(line)
                seen.append((node_id, value))
                yield Compute(150)

        machine.run_programs([(0, writer()), (1, reader(1)),
                              (3, reader(3))])
        assert len(seen) == 12
        # Every observed value is either the initial token or a writer value.
        for _, value in seen:
            assert value == ("init", line) or value[0] == "w"

    def test_no_deadlock_under_cross_traffic(self):
        machine = RawMachine()
        lines = [remote_line(machine, n) for n in range(4)]
        programs = []
        for node_id in range(4):
            def program(node_id=node_id):
                for i in range(8):
                    yield Store(lines[(node_id + i) % 4],
                                value=(node_id, i))
                    yield Load(lines[(node_id + i + 1) % 4])
            programs.append((node_id, program()))
        machine.run_programs(programs)   # must terminate


class TestUncachedOps:
    def test_local_io_read_write(self):
        machine = RawMachine()
        io_base = machine.address_map.io_region_start(0)
        results = run_one(machine, 0, [UncachedStore(io_base, 5),
                                       UncachedLoad(io_base)])
        assert results == [None, 5]
        assert machine.node(0).io_device.write_counts[0] == 1

    def test_remote_io_within_failure_unit(self):
        machine = RawMachine()
        for node in machine.nodes:
            node.magic.set_failure_unit({0, 1})
        io_base = machine.address_map.io_region_start(1)
        results = run_one(machine, 0, [UncachedStore(io_base, 3),
                                       UncachedLoad(io_base)])
        assert results == [None, 3]

    def test_remote_io_across_failure_unit_bus_errors(self):
        machine = RawMachine()   # default failure unit = self only
        io_base = machine.address_map.io_region_start(1)
        caught = []

        def program():
            try:
                yield UncachedLoad(io_base)
            except BusError as error:
                caught.append(error)

        machine.run_programs([(0, program())])
        assert len(caught) == 1
        assert caught[0].kind == BusErrorKind.REMOTE_UNCACHED_IO
        assert machine.node(1).io_device.total_operations() == 0

    def test_uncached_memory_read_remote(self):
        machine = RawMachine()
        for node in machine.nodes:
            node.magic.set_failure_unit({0, 1, 2, 3})
        line = remote_line(machine, 2)
        results = run_one(machine, 0, [UncachedLoad(line)])
        assert results == [("init", line)]


class TestContainmentChecks:
    def test_vector_range_reads_are_node_local(self):
        machine = RawMachine()
        results_0 = run_one(machine, 0, [Load(0x100)])
        results_3 = run_one(machine, 3, [Load(0x100)])
        assert results_0[0][1] == 0   # served by node 0's replica
        assert results_3[0][1] == 3   # served by node 3's replica

    def test_vector_range_write_rejected(self):
        machine = RawMachine()
        caught = []

        def program():
            try:
                yield Store(0x100, value="evil")
            except BusError as error:
                caught.append(error)

        machine.run_programs([(0, program())])
        assert caught and caught[0].kind == BusErrorKind.RANGE_CHECK

    def test_magic_region_local_write_rejected(self):
        machine = RawMachine()
        address = machine.address_map.magic_region_start(0)
        caught = []

        def program():
            try:
                yield Store(address, value="evil")
            except BusError as error:
                caught.append(error)

        machine.run_programs([(0, program())])
        assert caught and caught[0].kind == BusErrorKind.RANGE_CHECK

    def test_magic_region_remote_write_rejected(self):
        machine = RawMachine()
        address = machine.address_map.magic_region_start(2)
        caught = []

        def program():
            try:
                yield Store(address, value="evil")
            except BusError as error:
                caught.append(error)

        machine.run_programs([(0, program())])
        assert caught and caught[0].kind == BusErrorKind.RANGE_CHECK

    def test_magic_region_remote_read_allowed(self):
        machine = RawMachine()
        address = machine.address_map.magic_region_start(2)
        results = run_one(machine, 0, [Load(address)])
        assert results[0] is not None

    def test_firewall_blocks_unauthorized_writer(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        page = line - (line % machine.params.page_size)
        machine.node(1).magic.set_firewall(page, {1, 2})
        caught = []

        def program():
            try:
                yield Store(line, value="blocked")
            except BusError as error:
                caught.append(error)

        machine.run_programs([(0, program())])
        assert caught and caught[0].kind == BusErrorKind.FIREWALL
        assert machine.node(1).magic.stats.firewall_rejections == 1

    def test_firewall_allows_authorized_writer(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        page = line - (line % machine.params.page_size)
        machine.node(1).magic.set_firewall(page, {1, 2})
        results = run_one(machine, 2, [Store(line, value="allowed")])
        assert results == ["allowed"]

    def test_firewall_never_blocks_reads(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        page = line - (line % machine.params.page_size)
        machine.node(1).magic.set_firewall(page, {1})
        results = run_one(machine, 0, [Load(line)])
        assert results == [("init", line)]

    def test_firewall_disabled_allows_everything(self):
        machine = RawMachine(firewall_enabled=False)
        line = remote_line(machine, 1)
        page = line - (line % machine.params.page_size)
        machine.node(1).magic.set_firewall(page, {1})
        results = run_one(machine, 0, [Store(line, value="open")])
        assert results == ["open"]

    def test_node_map_blocks_requests_to_failed_home(self):
        machine = RawMachine()
        line = remote_line(machine, 3)
        machine.node(0).magic.update_node_map({0, 1, 2})
        caught = []

        def program():
            try:
                yield Load(line)
            except BusError as error:
                caught.append(error)

        machine.run_programs([(0, program())])
        assert caught and caught[0].kind == BusErrorKind.INACCESSIBLE_NODE


class TestIncoherentLines:
    def test_access_to_incoherent_line_bus_errors(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        entry = machine.node(1).directory.entry(line)
        entry.unlock(DirState.INCOHERENT)
        caught = []

        def program():
            try:
                yield Load(line)
            except BusError as error:
                caught.append(error)

        machine.run_programs([(0, program())])
        assert caught and caught[0].kind == BusErrorKind.INCOHERENT_LINE

    def test_scrub_resets_incoherent_lines(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        page = line - (line % machine.params.page_size)
        entry = machine.node(1).directory.entry(line)
        entry.unlock(DirState.INCOHERENT)

        collected = []

        def program():
            event = machine.node(0).magic.request_scrub(page)
            status, reset = yield event
            collected.append((status, reset))

        machine.sim.spawn(program())
        machine.run(until=machine.sim.now + 10_000_000)
        assert collected == [("ok", 1)]
        results = run_one(machine, 0, [Load(line)])
        assert results[0][0] == "init"   # fresh value after scrub
