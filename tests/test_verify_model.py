"""Small-model checker tests: clean-tree verification plus directed
seeded-bug experiments.

The seeded bugs are the point of the tentpole: each one mutates the
*real* protocol source in a way the syntactic lint rules cannot
distinguish from correct code (the guard is still present, the unlock
still exists on some other path), then asserts the exhaustive
explorer catches the resulting invariant breach with a reproduction
trace.
"""

import os

import pytest

from repro.lint import Module, Project
from repro.lint.extract import extract_from_source
from repro.lint.protocol import PROTOCOL_MODULE
from repro.lint.verifyrules import VerifyChecker
from repro.verify import verify_spec
from repro.verify.checker import static_checks
from repro.verify.model import _admissible_states, _may_states, _must_states

PROTOCOL_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro", "coherence", "protocol.py")

with open(PROTOCOL_PATH) as _handle:
    CLEAN_SOURCE = _handle.read()


def mutate(old, new):
    """Apply a single-site mutation to the real protocol source."""
    assert CLEAN_SOURCE.count(old) == 1, "mutation anchor must be unique"
    return CLEAN_SOURCE.replace(old, new)


def model_violations(source, max_states=200000):
    spec = extract_from_source(source, strict=True).to_spec()
    report = verify_spec(spec, max_states=max_states)
    return report, {v.invariant for v in report.violations()}


def static_findings(source):
    """Run only the syntactic VerifyChecker rules (no golden-spec
    drift, which would trivially fire on any mutation)."""
    project = Project([Module(PROTOCOL_MODULE, source)])
    checker = VerifyChecker(spec_path=None)
    return list(checker.check_project(project))


class TestCleanTree:
    def test_clean_protocol_verifies_exhaustively(self):
        report, invariants = model_violations(CLEAN_SOURCE)
        assert report.ok, "clean tree must verify: %s" % sorted(invariants)
        assert report.total_states > 5000, (
            "exploration suspiciously small: %d states"
            % report.total_states)
        assert report.total_transitions > report.total_states

    def test_clean_protocol_has_no_static_findings(self):
        assert static_findings(CLEAN_SOURCE) == []

    def test_static_checks_flag_missing_uncached_rejection(self):
        spec = extract_from_source(CLEAN_SOURCE).to_spec()
        assert static_checks(spec) == []
        gutted = dict(spec)
        gutted["transitions"] = [t for t in spec["transitions"]
                                 if t["kind"] != "UC_WRITE"]
        invariants = {v.invariant for v in static_checks(gutted)}
        assert "missing-handler" in invariants


class TestStateAlgebra:
    """may/must guard interpretation feeding _admissible_states."""

    def test_positive_state_guard(self):
        items = [["guard", ["state", "LOCKED"], True]]
        assert _admissible_states(items) == frozenset({"LOCKED"})

    def test_negated_or_of_states(self):
        atom = ["not", ["or", [["state", "UNOWNED"], ["state", "SHARED"]]]]
        assert _may_states(atom) == frozenset(
            {"EXCLUSIVE", "LOCKED", "INCOHERENT"})
        assert _must_states(atom) == frozenset(
            {"EXCLUSIVE", "LOCKED", "INCOHERENT"})

    def test_unknown_atoms_widen_may_and_narrow_must(self):
        atom = ["and", [["state", "LOCKED"], ["acks_remaining"]]]
        assert _may_states(atom) == frozenset({"LOCKED"})
        assert _must_states(atom) == frozenset()

    def test_sharing_wb_main_path_reduces_to_locked(self):
        """The SHARING_WB main path is guarded by a negated stray
        check (``not (state is not LOCKED or ...)``); the algebra must
        still pin it to exactly {LOCKED}."""
        model = extract_from_source(CLEAN_SOURCE)
        spec = model.to_spec()
        main = [t for t in spec["transitions"]
                if t["kind"] == "SHARING_WB"
                and not any(i[0] == "stray" for i in t["items"])]
        assert main, "SHARING_WB main path missing from extraction"
        for transition in main:
            assert _admissible_states(transition["items"]) == frozenset(
                {"LOCKED"}), transition["path"]


# ---------------------------------------------------------- seeded bugs

LOCK_LEAK = (
    # _home_fwd_miss stale-memory branch: drop the unlock but keep the
    # NAK.  Syntactically a release for pending GET/GETX still exists
    # on other paths, so the shape-based lock-leak rule stays green.
    "        requester = entry.pending_requester\n"
    "        entry.unlock(DirState.EXCLUSIVE)\n"
    "        self._reply_nak(requester, line)\n",

    "        requester = entry.pending_requester\n"
    "        self._reply_nak(requester, line)\n",
)

FIREWALL_BYPASS = (
    # _home_getx: invert the membership test so *remote* writers skip
    # the firewall check.  The guard still mentions firewall_enabled,
    # so the syntactic escape-send rule is satisfied.
    "        if (magic.firewall_enabled\n"
    "                and requester not in magic.failure_unit):",

    "        if (magic.firewall_enabled\n"
    "                and requester in magic.failure_unit):",
)

WRITEBACK_RACE = (
    # _home_put LOCKED branch: reintroduce the original seed bug by
    # completing the pending transaction from the freshly absorbed
    # writeback while the forwarded intervention is still in flight.
    "            magic.memory.write_line(line, value)\n"
    "            entry.memory_valid = True\n"
    "            magic.hooks.on_put_absorbed(magic.node_id, line)\n"
    "            return self.params.handler_time\n",

    "            magic.memory.write_line(line, value)\n"
    "            entry.memory_valid = True\n"
    "            magic.hooks.on_put_absorbed(magic.node_id, line)\n"
    "            self._complete_pending_from_memory(entry, line)\n"
    "            return self.params.handler_time\n",
)


class TestSeededLockLeak:
    def test_model_catches_it(self):
        report, invariants = model_violations(mutate(*LOCK_LEAK))
        assert "lock-deadlock" in invariants
        witness = next(v for v in report.violations()
                       if v.invariant == "lock-deadlock")
        assert witness.trace, "violation must carry a reproduction trace"

    def test_syntactic_linter_misses_it(self):
        findings = static_findings(mutate(*LOCK_LEAK))
        assert [f for f in findings if f.rule == "lock-leak"] == []


class TestSeededFirewallBypass:
    def test_model_catches_it(self):
        report, invariants = model_violations(mutate(*FIREWALL_BYPASS))
        assert "escape-send" in invariants
        witness = next(v for v in report.violations()
                       if v.invariant == "escape-send")
        assert witness.scenario == "failed-cell", (
            "the bypass must manifest as a grant into the failed cell")

    def test_syntactic_linter_misses_it(self):
        findings = static_findings(mutate(*FIREWALL_BYPASS))
        assert [f for f in findings if f.rule == "escape-send"] == []


class TestSeededWritebackRace:
    def test_model_catches_the_original_seed_bug(self):
        """Regression: the race the checker originally found must stay
        findable if anyone reintroduces the eager completion."""
        report, invariants = model_violations(mutate(*WRITEBACK_RACE))
        assert not report.ok
        assert invariants & {"single-owner", "lock-bookkeeping",
                             "sharer-vector"}, sorted(invariants)
