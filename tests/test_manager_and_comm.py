"""Tests for the recovery manager's deterministic view computations and
the recovery communication layer."""

from repro import FlashMachine, MachineConfig
from repro.coherence.messages import MessageKind
from repro.recovery.comm import RecoveryComm
from repro.recovery.view import LinkStatus, NodeStatus, SystemView


def machine(num_nodes=9, **overrides):
    defaults = dict(num_nodes=num_nodes, mem_per_node=1 << 16,
                    l2_size=1 << 13, seed=23)
    defaults.update(overrides)
    return FlashMachine(MachineConfig(**defaults)).start()


def full_view(num_nodes, dead_nodes=(), down_links=()):
    view = SystemView()
    for node_id in range(num_nodes):
        view.observe_node(
            node_id,
            NodeStatus.DEAD if node_id in dead_nodes else NodeStatus.ALIVE)
    for a, b in down_links:
        view.observe_link(a, b, LinkStatus.DOWN)
    return view


class TestManagerComputations:
    def test_cwn_graph_healthy_mesh_is_mesh(self):
        m = machine()
        view = full_view(9)
        edges = m.recovery_manager.cwn_graph_for_view(view)
        # Healthy 3x3 mesh: cwn edges == mesh edges.
        assert edges[4] == {1, 3, 5, 7}
        assert edges[0] == {1, 3}

    def test_cwn_graph_skips_dead_controller(self):
        m = machine()
        # Node 4's controller died (router alive): its neighbors become
        # each other's closest working neighbors through it.
        view = full_view(9, dead_nodes={4})
        edges = m.recovery_manager.cwn_graph_for_view(view)
        assert 4 not in edges
        assert 3 in edges[5] and 1 in edges[7]   # connected through 4

    def test_barrier_tree_consistent_across_nodes(self):
        m = machine()
        view = full_view(9, dead_nodes={8})
        parents = {}
        for node_id in range(8):
            (parent, children), routes = (
                m.recovery_manager.barrier_tree_for_view(view, node_id))
            parents[node_id] = parent
            for child in children:
                assert routes[child] is not None
        # Exactly one root; every non-root has a parent.
        roots = [n for n, p in parents.items() if p is None]
        assert roots == [0]

    def test_available_nodes_excludes_broken_units(self):
        m = machine(failure_units=(frozenset({0, 1}), frozenset({2, 3})))
        view = full_view(9, dead_nodes={3})
        available = m.recovery_manager.available_nodes_for_view(view)
        assert 2 not in available          # unit {2,3} broken
        assert {0, 1} <= available

    def test_available_nodes_excludes_units_with_internal_dead_link(self):
        m = machine(num_nodes=4,
                    failure_units=(frozenset({0, 1}), frozenset({2, 3})))
        view = full_view(4, down_links=[(0, 1)])
        available = m.recovery_manager.available_nodes_for_view(view)
        assert 0 not in available and 1 not in available
        assert {2, 3} <= available

    def test_routing_tables_cached_per_view(self):
        m = machine()
        view_a = full_view(9, dead_nodes={4})
        view_b = full_view(9, dead_nodes={4})
        tables_a = m.recovery_manager.routing_tables_for_view(view_a)
        tables_b = m.recovery_manager.routing_tables_for_view(view_b)
        assert tables_a is tables_b   # memoized on the view signature

    def test_source_route_for_view(self):
        m = machine()
        view = full_view(9, down_links=[(0, 1)])
        route = m.recovery_manager.source_route_for_view(view, 0, 1)
        assert route is not None and len(route) >= 2   # around the cut

    def test_bft_height_uses_lowest_alive_root(self):
        m = machine()
        view = full_view(9)
        height = m.recovery_manager.bft_height_for_view(view, 5)
        # Root = node 0 (corner of the 3x3 mesh): height = its
        # eccentricity = 4.
        assert height == 4


class TestRecoveryComm:
    def make_comm(self, m, node_id=0, epoch=1):
        return RecoveryComm(m.sim, m.params, m.nodes[node_id].magic, epoch)

    def test_receive_times_out(self):
        m = machine(num_nodes=4)
        comm = self.make_comm(m)
        results = []

        def proc():
            packet = yield from comm.receive(
                lambda p: True, deadline=m.sim.now + 10_000)
            results.append(packet)

        m.sim.spawn(proc())
        m.run(until=100_000)
        assert results == [None]

    def test_receive_buffers_non_matching(self):
        m = machine(num_nodes=4)
        comm = self.make_comm(m)
        magic = m.nodes[0].magic
        from repro.interconnect.packet import Packet
        from repro.common.types import Lane
        wanted = Packet(1, 0, Lane.RECOVERY_A, MessageKind.BARRIER_UP,
                        payload={"epoch": 1, "tag": "wanted"})
        unwanted = Packet(2, 0, Lane.RECOVERY_A, MessageKind.DISSEMINATE,
                          payload={"epoch": 1, "tag": "later"})
        magic.recovery_inbox.put(unwanted)
        magic.recovery_inbox.put(wanted)
        results = []

        def proc():
            packet = yield from comm.receive(
                lambda p: p.kind == MessageKind.BARRIER_UP,
                deadline=m.sim.now + 50_000)
            results.append(packet.payload["tag"])
            packet = yield from comm.receive(
                lambda p: p.kind == MessageKind.DISSEMINATE,
                deadline=m.sim.now + 50_000)
            results.append(packet.payload["tag"])

        m.sim.spawn(proc())
        m.run(until=200_000)
        assert results == ["wanted", "later"]

    def test_stale_epoch_packets_dropped(self):
        m = machine(num_nodes=4)
        comm = self.make_comm(m, epoch=2)
        magic = m.nodes[0].magic
        from repro.interconnect.packet import Packet
        from repro.common.types import Lane
        stale = Packet(1, 0, Lane.RECOVERY_A, MessageKind.BARRIER_UP,
                       payload={"epoch": 1})
        magic.recovery_inbox.put(stale)
        results = []

        def proc():
            packet = yield from comm.receive(
                lambda p: True, deadline=m.sim.now + 20_000)
            results.append(packet)

        m.sim.spawn(proc())
        m.run(until=100_000)
        assert results == [None]

    def test_auto_handler_consumes(self):
        m = machine(num_nodes=4)
        comm = self.make_comm(m)
        magic = m.nodes[0].magic
        seen = []
        comm.auto_handlers[MessageKind.PING] = (
            lambda p: seen.append(p.payload["epoch"]))
        from repro.interconnect.packet import Packet
        from repro.common.types import Lane
        magic.recovery_inbox.put(
            Packet(1, 0, Lane.RECOVERY_A, MessageKind.PING,
                   payload={"epoch": 1}))
        results = []

        def proc():
            packet = yield from comm.receive(
                lambda p: True, deadline=m.sim.now + 20_000)
            results.append(packet)

        m.sim.spawn(proc())
        m.run(until=100_000)
        assert seen == [1]
        assert results == [None]   # the ping was consumed, not matched
