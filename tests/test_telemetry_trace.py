"""Tests for the telemetry event bus (repro.telemetry.trace).

The central contract is the disabled-by-default overhead rule (DESIGN.md
§9): without a telemetry bundle every component's ``trace`` attribute is
None and recording cannot perturb the simulation — a traced run and an
untraced run of the same experiment must be identical event for event.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.faults.models import FaultSpec
from repro.telemetry import NULL_RECORDER, Telemetry, TraceRecorder
from repro.telemetry.scalability import run_scalability_point


def small_config(num_nodes=4, seed=0):
    return MachineConfig(num_nodes=num_nodes, mem_per_node=64 << 10,
                         l2_size=8 << 10, seed=seed)


class TestTraceRecorder:
    def test_emit_records_time_and_data(self):
        recorder = TraceRecorder()

        class FakeSim:
            now = 42.0

        recorder.bind(FakeSim())
        recorder.emit("pkt", "drop", node=3, reason="link")
        (event,) = recorder.events
        assert event.time == 42.0
        assert event.key == "pkt.drop"
        assert event.node == 3
        assert event.data == {"reason": "link"}

    def test_unbound_recorder_stamps_zero(self):
        recorder = TraceRecorder()
        recorder.emit("a", "b")
        assert recorder.events[0].time == 0.0

    def test_disabled_recorder_records_nothing(self):
        recorder = TraceRecorder()
        recorder.enabled = False
        recorder.emit("a", "b")
        assert len(recorder) == 0

    def test_max_events_cap_counts_drops(self):
        recorder = TraceRecorder(max_events=2)
        for _ in range(5):
            recorder.emit("a", "b")
        assert len(recorder) == 2
        assert recorder.dropped_events == 3

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.emit("a", "b", node=1, anything=2)
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.enabled is False

    def test_queries_and_clear(self):
        recorder = TraceRecorder()
        recorder.emit("pkt", "send")
        recorder.emit("pkt", "recv")
        recorder.emit("detect", "timeout")
        assert recorder.count("pkt") == 2
        assert recorder.count("pkt", "recv") == 1
        assert [e.key for e in recorder.events_of("detect")] == [
            "detect.timeout"]
        dicts = recorder.to_dicts()
        assert dicts[0]["category"] == "pkt"
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped_events == 0


class TestZeroCostWhenDisabled:
    def test_components_default_to_no_trace(self):
        machine = FlashMachine(small_config())
        assert machine.telemetry is None
        assert all(r.trace is None for r in machine.network.routers)
        assert all(i.trace is None for i in machine.network.interfaces)
        assert all(n.magic.trace is None for n in machine.nodes)
        assert machine.recovery_manager.trace is None
        assert machine.injector.trace is None

    def test_attach_recorder_reaches_every_component(self):
        machine = FlashMachine(small_config(), telemetry=Telemetry())
        recorder = machine.telemetry.recorder
        assert all(r.trace is recorder for r in machine.network.routers)
        assert all(i.trace is recorder for i in machine.network.interfaces)
        assert all(n.magic.trace is recorder for n in machine.nodes)
        assert machine.recovery_manager.trace is recorder
        assert machine.injector.trace is recorder

    def test_traced_and_untraced_runs_are_identical(self):
        """Recording must not perturb the simulation: same events executed,
        same virtual time, same recovery outcome."""
        plain = run_scalability_point(4, seed=3)
        traced = run_scalability_point(4, seed=3, telemetry=Telemetry())
        assert plain["recovery"] == traced["recovery"]
        assert plain["sim"]["sim_ns"] == traced["sim"]["sim_ns"]
        assert (plain["sim"]["events_executed"]
                == traced["sim"]["events_executed"])


class TestEventCapture:
    @pytest.fixture(scope="class")
    def traced_run(self):
        telemetry = Telemetry()
        result = run_scalability_point(8, telemetry=telemetry)
        assert result["completed"]
        return telemetry, result

    def test_episode_lifecycle_events(self, traced_run):
        telemetry, _ = traced_run
        recorder = telemetry.recorder
        assert recorder.count("episode", "begin") == 1
        assert recorder.count("episode", "end") == 1
        assert recorder.count("fault", "inject") == 1
        assert recorder.count("recovery", "trigger") >= 1
        assert recorder.count("detect", "timeout") >= 1

    def test_phase_events_balance(self, traced_run):
        telemetry, _ = traced_run
        recorder = telemetry.recorder
        enters = recorder.events_of("phase", "enter")
        exits = recorder.events_of("phase", "exit")
        # 7 surviving agents x 4 phases, no restarts in this scenario
        assert len(enters) == len(exits) == 7 * 4
        assert {e.data["phase"] for e in enters} == {"P1", "P2", "P3", "P4"}

    def test_packet_and_round_events(self, traced_run):
        telemetry, _ = traced_run
        recorder = telemetry.recorder
        assert recorder.count("pkt", "send") > 0
        assert recorder.count("pkt", "recv") > 0
        assert recorder.count("round", "done") > 0
        assert recorder.count("barrier", "done") > 0

    def test_events_are_time_ordered(self, traced_run):
        telemetry, _ = traced_run
        times = [e.time for e in telemetry.events]
        assert times == sorted(times)


class TestInjectorEvents:
    def test_skip_event_on_already_failed_target(self):
        telemetry = Telemetry()
        machine = FlashMachine(small_config(), telemetry=telemetry).start()
        machine.injector.inject(FaultSpec.node_failure(2))
        with pytest.warns(UserWarning):
            machine.injector.inject(FaultSpec.node_failure(2))
        recorder = telemetry.recorder
        assert recorder.count("fault", "inject") == 1
        assert recorder.count("fault", "skip") == 1


class TestStrayMessageTelemetry:
    """ProtocolEngine.handle's stray path is visible in traces and metrics
    (the dynamic counterpart of the lint's protocol-exhaustiveness rule)."""

    def _stray_packet(self, machine):
        from repro.coherence.messages import MessageKind, make_packet
        # NAK is a reply kind with no _HANDLERS entry; feeding it straight
        # to the protocol engine models an unhandled kind reaching dispatch.
        return make_packet(machine.params, 0, 1, MessageKind.NAK,
                           {"line": machine.line_homed_at(1)})

    def test_stray_emits_trace_event_and_metrics_counter(self):
        telemetry = Telemetry()
        machine = FlashMachine(small_config(), telemetry=telemetry)
        magic = machine.nodes[1].magic
        cost = magic.protocol.handle(self._stray_packet(machine))
        assert cost == machine.params.short_handler_time
        assert magic.stats.stray_messages == 1
        (event,) = telemetry.recorder.events_of("protocol", "stray")
        assert event.node == 1
        assert event.data["reason"] == "no-handler"
        assert "NAK" in event.data["kind"]
        assert telemetry.metrics.counter_total("protocol.stray_messages") == 1

    def test_stray_path_is_inert_without_telemetry(self):
        machine = FlashMachine(small_config())
        magic = machine.nodes[1].magic
        assert magic.trace is None and magic.metrics is None
        magic.protocol.handle(self._stray_packet(machine))
        assert magic.stats.stray_messages == 1
