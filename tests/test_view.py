"""Unit + property tests for the dissemination view merge (paper §4.3).

The merge must be commutative, associative and idempotent — the order in
which observations flood through the cwn graph cannot change the final
view, or different nodes would disagree on the global state.
"""

from hypothesis import given, settings, strategies as st

from repro.interconnect.topology import make_topology
from repro.recovery.view import (
    LinkStatus,
    NodeStatus,
    SystemView,
    surviving_adjacency_from_view,
)


class TestObservations:
    def test_alive_observation(self):
        view = SystemView()
        view.observe_node(3, NodeStatus.ALIVE)
        assert view.alive_nodes() == {3}

    def test_alive_wins_over_dead(self):
        view = SystemView()
        view.observe_node(3, NodeStatus.ALIVE)
        view.observe_node(3, NodeStatus.DEAD)
        assert view.nodes[3] == NodeStatus.ALIVE

    def test_dead_then_alive_upgrades(self):
        view = SystemView()
        view.observe_node(3, NodeStatus.DEAD)
        view.observe_node(3, NodeStatus.ALIVE)
        assert view.nodes[3] == NodeStatus.ALIVE

    def test_down_wins_over_up(self):
        view = SystemView()
        view.observe_link(0, 1, LinkStatus.DOWN)
        view.observe_link(1, 0, LinkStatus.UP)
        assert view.links[frozenset((0, 1))] == LinkStatus.DOWN

    def test_link_key_is_undirected(self):
        view = SystemView()
        view.observe_link(2, 3, LinkStatus.UP)
        view.observe_link(3, 2, LinkStatus.UP)
        assert len(view.links) == 1


class TestMerge:
    def test_merge_reports_change(self):
        a = SystemView()
        b = SystemView()
        b.observe_node(1, NodeStatus.ALIVE)
        assert a.merge(b) is True
        assert a.merge(b) is False   # second merge is a no-op

    def test_merge_alive_wins(self):
        a = SystemView()
        a.observe_node(1, NodeStatus.DEAD)
        b = SystemView()
        b.observe_node(1, NodeStatus.ALIVE)
        a.merge(b)
        assert a.nodes[1] == NodeStatus.ALIVE

    def test_merge_down_wins(self):
        a = SystemView()
        a.observe_link(0, 1, LinkStatus.UP)
        b = SystemView()
        b.observe_link(0, 1, LinkStatus.DOWN)
        a.merge(b)
        assert a.down_links() == {frozenset((0, 1))}

    def test_wire_roundtrip(self):
        view = SystemView()
        view.observe_node(0, NodeStatus.ALIVE)
        view.observe_node(5, NodeStatus.DEAD)
        view.observe_link(0, 5, LinkStatus.DOWN)
        decoded = SystemView.decode(view.encode())
        assert decoded == view

    def test_entry_count(self):
        view = SystemView()
        view.observe_node(0, NodeStatus.ALIVE)
        view.observe_link(0, 1, LinkStatus.UP)
        assert view.entry_count() == 2

    def test_signature_detects_equality(self):
        a = SystemView()
        b = SystemView()
        a.observe_node(1, NodeStatus.ALIVE)
        b.observe_node(1, NodeStatus.ALIVE)
        assert a.signature() == b.signature()


class TestCopyAndQueries:
    def test_copy_is_independent(self):
        view = SystemView()
        view.observe_node(0, NodeStatus.ALIVE)
        view.observe_link(0, 1, LinkStatus.UP)
        clone = view.copy()
        clone.observe_node(1, NodeStatus.DEAD)
        clone.observe_link(0, 1, LinkStatus.DOWN)
        assert view == SystemView(
            {0: NodeStatus.ALIVE}, {frozenset((0, 1)): LinkStatus.UP})
        assert clone != view

    def test_signature_detects_difference(self):
        a = SystemView()
        b = SystemView()
        a.observe_node(1, NodeStatus.ALIVE)
        b.observe_node(1, NodeStatus.DEAD)
        assert a.signature() != b.signature()

    def test_repr_mentions_population(self):
        view = SystemView()
        view.observe_node(2, NodeStatus.ALIVE)
        view.observe_link(0, 1, LinkStatus.DOWN)
        text = repr(view)
        assert "alive=[2]" in text and "down_links=1" in text


class TestSurvivingAdjacency:
    def test_full_view_keeps_full_topology(self):
        topology = make_topology("mesh", 4)
        view = SystemView()
        for node_id in range(4):
            view.observe_node(node_id, NodeStatus.ALIVE)
        adjacency = surviving_adjacency_from_view(topology, view)
        assert set(adjacency) == {0, 1, 2, 3}
        edges = {(rid, nbr) for rid, entries in adjacency.items()
                 for _, nbr, _ in entries}
        assert all((b, a) in edges for a, b in edges)

    def test_down_link_removed_both_directions(self):
        topology = make_topology("mesh", 4)
        view = SystemView()
        view.observe_link(0, 1, LinkStatus.DOWN)
        adjacency = surviving_adjacency_from_view(topology, view)
        assert all(nbr != 1 for _, nbr, _ in adjacency[0])
        assert all(nbr != 0 for _, nbr, _ in adjacency[1])

    def test_dead_node_router_still_forwards(self):
        # The controller died, not the router: it must stay in the graph.
        topology = make_topology("mesh", 4)
        view = SystemView()
        view.observe_node(3, NodeStatus.DEAD)
        adjacency = surviving_adjacency_from_view(topology, view)
        assert 3 in adjacency
        assert any(nbr == 3 for _, nbr, _ in adjacency[1])

    def test_unprobed_links_default_to_up(self):
        topology = make_topology("mesh", 4)
        adjacency = surviving_adjacency_from_view(topology, SystemView())
        assert all(len(entries) == 2 for entries in adjacency.values())


# --- property tests ------------------------------------------------------------

node_obs = st.tuples(st.integers(0, 7),
                     st.sampled_from(list(NodeStatus)))
link_obs = st.tuples(st.integers(0, 7), st.integers(0, 7),
                     st.sampled_from(list(LinkStatus)))


def build_view(nodes, links):
    view = SystemView()
    for node_id, status in nodes:
        view.observe_node(node_id, status)
    for a, b, status in links:
        if a != b:
            view.observe_link(a, b, status)
    return view


view_strategy = st.builds(
    build_view,
    st.lists(node_obs, max_size=12),
    st.lists(link_obs, max_size=12))


@given(view_strategy, view_strategy)
@settings(max_examples=100, deadline=None)
def test_property_merge_commutative(a, b):
    left = a.copy()
    left.merge(b)
    right = b.copy()
    right.merge(a)
    assert left == right


@given(view_strategy, view_strategy, view_strategy)
@settings(max_examples=100, deadline=None)
def test_property_merge_associative(a, b, c):
    left = a.copy()
    left.merge(b)
    left.merge(c)
    bc = b.copy()
    bc.merge(c)
    right = a.copy()
    right.merge(bc)
    assert left == right


@given(view_strategy)
@settings(max_examples=100, deadline=None)
def test_property_merge_idempotent(a):
    merged = a.copy()
    changed = merged.merge(a)
    assert not changed
    assert merged == a
