"""Multi-fault recovery: the §4.1 restart rule, injector hardening, and
the transient fault models."""

import random

import pytest

from repro import FlashMachine, MachineConfig
from repro.campaign.schedule import FaultSchedule, TimedFault
from repro.common.types import Lane
from repro.core.experiment import run_schedule_experiment, run_validation_experiment
from repro.faults.models import FaultSpec, FaultType
from repro.interconnect.topology import make_topology


def small_config(seed=11, num_nodes=8):
    return MachineConfig(num_nodes=num_nodes, mem_per_node=1 << 16,
                         l2_size=1 << 13, seed=seed)


# ------------------------------------------------- §4.1 restart, per phase

class TestSecondFaultDuringRecovery:
    """A node dies just as its own agent enters each recovery phase."""

    @pytest.mark.parametrize("phase", ["P1", "P2", "P3", "P4"])
    def test_second_fault_each_phase_contained(self, phase):
        schedule = FaultSchedule(
            entries=(
                TimedFault(FaultSpec.node_failure(7), time=0.0),
                TimedFault(FaultSpec.node_failure(4),
                           phase=phase, phase_node=4),
            ),
            num_nodes=8, topology="mesh", name="directed-" + phase)
        result = run_schedule_experiment(
            schedule, config=small_config(11), seed=11)

        assert result.passed, result.problems
        assert result.episodes >= 1
        survivors = set(result.reports[-1].available_nodes)
        assert 7 not in survivors
        assert 4 not in survivors
        assert survivors, "recovery lost the whole machine"
        if phase == "P1":
            # A death during P1 needs no restart: P1 *is* the discovery
            # phase — the CWN probing observes the node dead and the views
            # absorb it (every agent is still building its view, none has
            # committed to the victim as a protocol partner yet).
            assert result.restarts >= 0
        else:
            # P2-P4: the victim is already a dissemination/barrier partner
            # of the surviving agents, so its death mid-protocol must trip
            # the §4.1 restart rule — and recovery must still converge.
            assert result.restarts >= 1, (
                "second fault in %s was silently absorbed" % phase)


# ------------------------------------------------------ injector hardening

class TestInjectorHardening:
    def test_fault_on_failed_node_is_noop(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(FaultSpec.node_failure(2))
        with pytest.warns(UserWarning, match="already-failed"):
            machine.injector.inject(FaultSpec.node_failure(2))
        assert len(machine.injector.injected) == 1
        assert len(machine.injector.skipped) == 1

    def test_wedge_on_wedged_node_is_noop(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(FaultSpec.infinite_loop(1))
        with pytest.warns(UserWarning, match="already-failed"):
            machine.injector.inject(FaultSpec.infinite_loop(1))
        assert len(machine.injector.skipped) == 1

    def test_fault_on_failed_link_is_noop(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(FaultSpec.link_failure(0, 1))
        with pytest.warns(UserWarning, match="already-failed"):
            machine.injector.inject(FaultSpec.link_failure(0, 1))
        assert len(machine.injector.skipped) == 1

    def test_link_fault_with_dead_endpoint_router_is_noop(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(FaultSpec.router_failure(1))
        with pytest.warns(UserWarning, match="already-failed"):
            machine.injector.inject(FaultSpec.link_failure(0, 1))
        assert len(machine.injector.skipped) == 1

    def test_fault_on_failed_router_is_noop(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(FaultSpec.router_failure(2))
        with pytest.warns(UserWarning, match="already-failed"):
            machine.injector.inject(FaultSpec.router_failure(2))
        assert len(machine.injector.skipped) == 1

    def test_unknown_link_still_raises(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        with pytest.raises(ValueError):
            machine.injector.inject(FaultSpec.link_failure(0, 3))


# -------------------------------------------------- FaultSpec.random exclude

class TestRandomExclude:
    def test_excluded_nodes_never_drawn(self):
        topo = make_topology("mesh", 8)
        rng = random.Random(5)
        exclude = {0, 1, 2, 3, 4, 5, 6}
        for _ in range(30):
            spec = FaultSpec.random(rng, topo, FaultType.NODE_FAILURE,
                                    exclude=exclude)
            assert spec.target == 7

    def test_all_nodes_excluded_raises(self):
        topo = make_topology("mesh", 4)
        rng = random.Random(5)
        with pytest.raises(ValueError):
            FaultSpec.random(rng, topo, FaultType.NODE_FAILURE,
                             exclude={0, 1, 2, 3})

    def test_excluded_links_never_drawn(self):
        topo = make_topology("mesh", 4)
        rng = random.Random(5)
        all_links = {frozenset((a, b)) for a, _, b, _ in topo.links()}
        keep = sorted(all_links, key=sorted)[0]
        exclude = all_links - {keep}
        for _ in range(30):
            spec = FaultSpec.random(rng, topo, FaultType.LINK_FAILURE,
                                    exclude=exclude)
            assert frozenset(spec.target) == keep

    def test_all_links_excluded_raises(self):
        topo = make_topology("mesh", 4)
        rng = random.Random(5)
        all_links = {frozenset((a, b)) for a, _, b, _ in topo.links()}
        with pytest.raises(ValueError):
            FaultSpec.random(rng, topo, FaultType.LINK_FAILURE,
                             exclude=all_links)

    def test_sequential_draws_are_disjoint(self):
        topo = make_topology("mesh", 8)
        rng = random.Random(9)
        used = set()
        for _ in range(6):
            spec = FaultSpec.random(rng, topo, exclude=used)
            assert not (spec.excluded_targets() & used)
            used |= spec.excluded_targets()


# ------------------------------------------------------ transient fault models

class TestTransientModels:
    def test_transient_link_heals_after_dwell(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        link = machine.network.link_between(0, 1)
        machine.injector.inject(
            FaultSpec.transient_link_failure(0, 1, dwell=500_000.0))
        assert link.failed
        machine.sim.run(until=machine.sim.now + 600_000.0)
        assert not link.failed

    def test_heal_is_refused_when_endpoint_router_died(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(
            FaultSpec.transient_link_failure(0, 1, dwell=500_000.0))
        machine.injector.inject(FaultSpec.router_failure(0))
        machine.sim.run(until=machine.sim.now + 600_000.0)
        assert machine.network.link_between(0, 1).failed

    def test_intermittent_drops_only_normal_lanes(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(
            FaultSpec.intermittent_link(0, 1, drop_rate=1.0))
        link = machine.network.link_between(0, 1)

        class _Packet:
            def __init__(self, lane):
                self.lane = lane

        assert link.should_drop(_Packet(Lane.REQUEST))
        assert link.should_drop(_Packet(Lane.REPLY))
        # Recovery traffic lanes are CRC-protected short control packets
        # (§4.1) and must never be dropped by the flaky-connector model.
        assert not link.should_drop(_Packet(Lane.RECOVERY_A))
        assert not link.should_drop(_Packet(Lane.RECOVERY_B))

    def test_intermittent_disarmed_at_recovery_start(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(
            FaultSpec.intermittent_link(0, 1, drop_rate=1.0))
        link = machine.network.link_between(0, 1)
        assert link.drop_rate == 1.0
        machine.recovery_manager.note_phase_entry("P1", 2)
        assert link.drop_rate == 0.0

    def test_delayed_wedge_manifests_after_dwell(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(
            FaultSpec.delayed_wedge(2, dwell=400_000.0))
        assert not machine.nodes[2].magic.wedged
        machine.sim.run(until=machine.sim.now + 500_000.0)
        assert machine.nodes[2].magic.wedged

    def test_delayed_wedge_skipped_if_node_died_meanwhile(self):
        machine = FlashMachine(small_config(3, num_nodes=4)).start()
        machine.injector.inject(
            FaultSpec.delayed_wedge(2, dwell=400_000.0))
        machine.injector.inject(FaultSpec.node_failure(2))
        machine.sim.run(until=machine.sim.now + 500_000.0)
        assert not machine.nodes[2].magic.wedged

    @pytest.mark.parametrize("fault_type", [
        FaultType.TRANSIENT_LINK_FAILURE,
        FaultType.INTERMITTENT_LINK,
        FaultType.DELAYED_WEDGE,
    ])
    def test_validation_passes_for_new_models(self, fault_type):
        topo = make_topology("mesh", 8)
        rng = random.Random(17)
        fault = FaultSpec.random(rng, topo, fault_type)
        result = run_validation_experiment(
            fault, config=small_config(17), seed=17)
        assert result.passed, result.problems

    def test_validation_accepts_schedule(self):
        """run_validation_experiment transparently handles schedules."""
        schedule = FaultSchedule(
            entries=(TimedFault(FaultSpec.false_alarm(1), time=0.0),),
            num_nodes=4, topology="mesh", name="one-alarm")
        result = run_validation_experiment(
            schedule, config=small_config(5, num_nodes=4), seed=5)
        assert result.passed, result.problems
        assert result.episodes >= 1
