"""Post-recovery routing-table reconfiguration (paper §4.4, step 3).

After interconnect recovery every surviving router must hold a programmed
table that reaches every surviving destination without crossing a failed
link or a failed router — verified here by walking the actual tables hop
by hop, and end-to-end by issuing reads across the reconfigured fabric.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.experiment import _start_prober
from repro.core.machine import FlashMachine
from repro.faults.models import FaultSpec
from repro.interconnect.router import LOCAL_PORT


def recover_from(fault, num_nodes=8, seed=0):
    config = MachineConfig(num_nodes=num_nodes, mem_per_node=64 << 10,
                           l2_size=8 << 10, seed=seed)
    machine = FlashMachine(config).start()
    machine.quiesce()
    machine.injector.inject(fault)
    _start_prober(machine, fault)
    report = machine.run_until_recovered()
    return machine, report


def walk_table_path(machine, src, dst, forbidden_links=()):
    """Follow the programmed tables from router ``src`` to ``dst``.

    Returns the router path; fails the test on a dead end, a loop, a hop
    over a forbidden/failed link, or a hop through a failed router.
    """
    forbidden = {frozenset(pair) for pair in forbidden_links}
    path = [src]
    current = src
    for _ in range(machine.config.num_nodes + 1):
        if current == dst:
            return path   # arrival: delivery is local, not a table lookup
        router = machine.network.router(current)
        assert not router.failed, "path transits failed router %d" % current
        port = router.table.get(dst)
        assert port is not None, (
            "router %d has no route to %d (table %r)"
            % (current, dst, router.table))
        assert port != LOCAL_PORT
        neighbor, _ = machine.topology.neighbors(current)[port]
        key = frozenset((current, neighbor))
        assert key not in forbidden, (
            "route %d->%d crosses failed link %s" % (src, dst, sorted(key)))
        link = machine.network.link_between(current, neighbor)
        assert link is not None and not link.failed
        path.append(neighbor)
        current = neighbor
    pytest.fail("routing loop: %s -> %d via %s" % (src, dst, path))


class TestLinkFailureReroute:
    @pytest.fixture(scope="class")
    def recovered(self):
        # 8-node mesh (4x2): losing link 6-7 leaves node 7 reachable the
        # long way around through 3.
        machine, report = recover_from(FaultSpec.link_failure(6, 7))
        assert report.complete_time is not None
        return machine, report

    def test_no_node_lost(self, recovered):
        _, report = recovered
        assert sorted(report.available_nodes) == list(range(8))

    def test_tables_route_around_the_failed_link(self, recovered):
        machine, report = recovered
        survivors = sorted(report.available_nodes)
        for src in survivors:
            for dst in survivors:
                path = walk_table_path(machine, src, dst,
                                       forbidden_links=[(6, 7)])
                assert path[-1] == dst

    def test_reads_cross_the_reconfigured_fabric(self, recovered):
        machine, _ = recovered
        # 6 -> 7 used the failed link before recovery; the read must now
        # take the detour and still complete without a bus error.
        from repro.node.processor import UncachedLoad

        results = []

        def program():
            value = yield UncachedLoad(machine.line_homed_at(7))
            results.append(value)

        # The detection prober ran on node 6; wait for its post-recovery
        # reissued read to finish before claiming the processor.
        machine.run_until(lambda: not machine.nodes[6].processor.busy,
                          limit=machine.sim.now + 1_000_000_000)
        machine.nodes[6].processor.run_program(program())
        machine.run_until(lambda: len(results) == 1,
                          limit=machine.sim.now + 1_000_000_000)


class TestOrphanRouterReprogramming:
    @pytest.fixture(scope="class")
    def recovered(self):
        machine, report = recover_from(FaultSpec.node_failure(5))
        assert report.complete_time is not None
        return machine, report

    def test_dead_controllers_local_port_discards(self, recovered):
        machine, _ = recovered
        # §4.4 step 1: the designated node programs the orphan router to
        # discard traffic bound for its dead controller.
        assert LOCAL_PORT in machine.network.router(5).discard_ports

    def test_orphan_router_still_forwards_transit_traffic(self, recovered):
        machine, report = recovered
        survivors = sorted(report.available_nodes)
        assert 5 not in survivors
        orphan_table = machine.network.router(5).table
        assert orphan_table, "orphan router was never reprogrammed"
        for src in survivors:
            for dst in survivors:
                walk_table_path(machine, src, dst)

    def test_no_surviving_route_targets_the_dead_node(self, recovered):
        machine, report = recovered
        for rid in sorted(report.available_nodes):
            table = machine.network.router(rid).table
            assert 5 not in table


class TestRouterFailureIsolation:
    def test_survivors_route_around_failed_router(self):
        machine, report = recover_from(FaultSpec.router_failure(7))
        survivors = sorted(report.available_nodes)
        # The stranded node shuts down (failure-unit rule); everyone else
        # must still reach everyone else without transiting router 7.
        assert 7 not in survivors
        assert len(survivors) >= 6
        for src in survivors:
            for dst in survivors:
                path = walk_table_path(machine, src, dst)
                assert 7 not in path
