"""End-to-end Hive + parallel-make experiment tests (paper Table 5.4)."""

import pytest

from repro.faults.models import FaultSpec
from repro.hive.endtoend import (
    expected_dead_cells,
    run_end_to_end_experiment,
)
from repro.hive.os import HiveConfig


def config(seed, **overrides):
    defaults = dict(cells=8, mem_per_node=1 << 17, l2_size=1 << 13,
                    seed=seed)
    defaults.update(overrides)
    return HiveConfig(**defaults)


@pytest.mark.parametrize("fault_factory, expected_survivor_compiles", [
    (lambda: FaultSpec.node_failure(3), 7),
    (lambda: FaultSpec.router_failure(6), 7),
    (lambda: FaultSpec.infinite_loop(2), 7),
    (lambda: FaultSpec.link_failure(0, 1), 8),
], ids=["node", "router", "loop", "link"])
def test_surviving_compiles_finish_correctly(fault_factory,
                                             expected_survivor_compiles):
    result = run_end_to_end_experiment(
        fault_factory(), hive_config=config(seed=61))
    assert result.recovered and result.os_recovered
    assert result.compiles_expected == expected_survivor_compiles
    assert result.compiles_correct == expected_survivor_compiles
    assert not result.failed, result.failure_reason


def test_file_server_failure_affects_every_compile():
    result = run_end_to_end_experiment(
        FaultSpec.node_failure(0), hive_config=config(seed=62))
    assert result.recovered
    assert result.compiles_expected == 0   # everyone depends on the server
    assert not result.failed


def test_late_injection_after_build_completes():
    result = run_end_to_end_experiment(
        FaultSpec.node_failure(5), hive_config=config(seed=63),
        inject_delay=60_000_000.0)
    assert result.recovered
    assert not result.failed


def test_early_injection_before_much_progress():
    result = run_end_to_end_experiment(
        FaultSpec.node_failure(5), hive_config=config(seed=64),
        inject_delay=100_000.0)
    assert result.recovered
    assert not result.failed, result.failure_reason


def test_bug_emulation_produces_paper_failure_mode():
    """With the Hive-bug emulation forced on, a client death that leaves
    incoherent shared-log lines crashes a surviving cell — the run counts
    as failed, like the paper's 99/1187."""
    result = run_end_to_end_experiment(
        FaultSpec.node_failure(3),
        hive_config=config(seed=65, os_incoherent_bug_rate=1.0))
    assert result.recovered
    assert result.failed
    assert ("crashed" in result.failure_reason
            or "state=" in result.failure_reason)


def test_no_bug_emulation_means_no_failures():
    for seed in (66, 67):
        result = run_end_to_end_experiment(
            FaultSpec.node_failure(4),
            hive_config=config(seed=seed, os_incoherent_bug_rate=0.0))
        assert not result.failed, result.failure_reason


def test_recovery_times_reported():
    result = run_end_to_end_experiment(
        FaultSpec.node_failure(2), hive_config=config(seed=68))
    assert result.hw_recovery_ns > 0
    assert result.os_recovery_ns > 0


def test_expected_dead_cells_for_multi_node_cells():
    hive_config = config(seed=69, cells=4, nodes_per_cell=2)
    from repro.hive.os import HiveOS
    hive = HiveOS(hive_config)
    fault = FaultSpec.node_failure(5)   # node 5 belongs to cell 2
    assert expected_dead_cells(hive, fault) == {2}
    assert expected_dead_cells(hive, FaultSpec.link_failure(0, 1)) == set()


def test_multi_node_cells_end_to_end():
    """Cells spanning two nodes: killing one node takes the whole cell
    (its failure unit) but nothing else."""
    result = run_end_to_end_experiment(
        FaultSpec.node_failure(5),
        hive_config=config(seed=70, cells=4, nodes_per_cell=2))
    assert result.recovered
    assert result.compiles_expected == 3
    assert not result.failed, result.failure_reason
