"""Tests for the scalability benchmark harness (repro.telemetry.scalability).

The directed sub-linearity test is the paper's headline claim (§5.3) in
executable form: recovery latency must grow slower than machine size.
"""

import json

import pytest

from repro.faults.models import FaultType
from repro.interconnect.topology import make_topology
from repro.telemetry.scalability import (
    DEFAULT_SIZES,
    default_fault,
    run_scalability_sweep,
    scalability_table,
    sublinear_check,
    sweep_ok,
    write_bench_json,
)


class TestDefaultFault:
    def test_node_fault_strikes_highest_id(self):
        topology = make_topology("mesh", 8)
        fault = default_fault("node_failure", 8, topology)
        assert fault.fault_type is FaultType.NODE_FAILURE
        assert fault.target == 7

    def test_link_fault_touches_victim(self):
        topology = make_topology("mesh", 8)
        fault = default_fault("link_failure", 8, topology)
        assert fault.fault_type is FaultType.LINK_FAILURE
        assert 7 in fault.target


@pytest.fixture(scope="module")
def small_sweep():
    """A 4/8/16-node sweep — the CI smoke shape, shared across tests."""
    return run_scalability_sweep(sizes=(4, 8, 16))


class TestSweepPayload:
    def test_payload_structure(self, small_sweep):
        payload = small_sweep
        assert payload["version"] == 1
        assert payload["benchmark"] == "recovery-scalability"
        assert payload["sizes"] == [4, 8, 16]
        assert len(payload["results"]) == 3
        for result in payload["results"]:
            assert result["completed"]
            recovery = result["recovery"]
            assert recovery["total_ms"] > 0
            assert set(recovery["phase_durations_ms"]) >= {
                "P1", "P2", "P3", "P4"}
            # Cumulative latencies are ordered: P1 <= P1,2 <= P1,2,3 <= total
            assert (recovery["P1_ms"] <= recovery["P12_ms"]
                    <= recovery["P123_ms"] <= recovery["total_ms"])
        assert sweep_ok(payload)

    def test_payload_json_roundtrip(self, small_sweep, tmp_path):
        path = tmp_path / "BENCH_scalability.json"
        write_bench_json(small_sweep, path)
        loaded = json.loads(path.read_text())
        assert loaded["sizes"] == [4, 8, 16]
        assert len(loaded["results"]) == 3

    def test_table_renders_each_size(self, small_sweep):
        table = scalability_table(small_sweep)
        assert "node_failure" in table
        for size in (4, 8, 16):
            assert "\n%d" % size in table

    def test_recovery_latency_grows_sublinearly(self, small_sweep):
        """Directed test of the paper's scalability claim: 4x the nodes
        must cost less than 4x the recovery time."""
        verdict = small_sweep["sublinear"]["node_failure"]
        assert verdict["ok"], verdict
        assert verdict["latency_ratio"] < verdict["node_ratio"] == 4.0


class TestSublinearCheck:
    def test_needs_two_completed_points(self):
        assert not sublinear_check([])["ok"]
        assert not sublinear_check(
            [{"nodes": 4, "completed": True,
              "recovery": {"total_ms": 1.0}}])["ok"]

    def test_flags_superlinear_growth(self):
        results = [
            {"nodes": 4, "completed": True, "recovery": {"total_ms": 1.0}},
            {"nodes": 16, "completed": True, "recovery": {"total_ms": 8.0}},
        ]
        verdict = sublinear_check(results)
        assert not verdict["ok"]
        assert verdict["latency_ratio"] == 8.0
        assert verdict["node_ratio"] == 4.0

    def test_incomplete_points_excluded(self):
        results = [
            {"nodes": 4, "completed": True, "recovery": {"total_ms": 1.0}},
            {"nodes": 8, "completed": False},
            {"nodes": 16, "completed": True, "recovery": {"total_ms": 2.0}},
        ]
        verdict = sublinear_check(results)
        assert verdict["ok"] and verdict["nodes"] == [4, 16]

    def test_incomplete_point_fails_sweep_gate(self):
        payload = {"results": [{"completed": True}, {"completed": False}]}
        assert not sweep_ok(payload)
        assert not sweep_ok({"results": []})


class TestDefaults:
    def test_default_sizes_reach_128(self):
        assert DEFAULT_SIZES[0] == 4
        assert DEFAULT_SIZES[-1] == 128
        assert list(DEFAULT_SIZES) == sorted(DEFAULT_SIZES)
