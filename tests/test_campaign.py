"""Campaign engine: schedules, records, the crash-isolated runner, the
shrinker, and the CLI subcommand."""

import json
import random

import pytest

from repro.campaign import (
    SCHEDULE_GENERATORS,
    CampaignRunner,
    FaultSchedule,
    RunRecord,
    RunStatus,
    TimedFault,
    make_schedule,
    repro_command,
    shrink_schedule,
)
from repro.campaign.records import (
    append_record,
    completed_indices,
    load_records,
)
from repro.campaign.runner import derive_run_seed
from repro.campaign.schedule import valid_for_machine
from repro.faults.models import FaultSpec


def false_alarm_schedule(num_nodes=4):
    return FaultSchedule(
        entries=(TimedFault(FaultSpec.false_alarm(1), time=0.0),),
        num_nodes=num_nodes, topology="mesh", name="one-alarm")


# ------------------------------------------------------------------ schedules

class TestSchedules:
    def test_roundtrip_through_json(self):
        rng = random.Random(3)
        for kind in SCHEDULE_GENERATORS:
            schedule = make_schedule(kind, rng, num_nodes=8)
            wire = json.dumps(schedule.to_dict())
            back = FaultSchedule.from_dict(json.loads(wire))
            assert back == schedule

    def test_phase_entry_roundtrip(self):
        entry = TimedFault(FaultSpec.node_failure(3), phase="P2",
                           phase_node=3)
        back = TimedFault.from_dict(entry.to_dict())
        assert back == entry

    def test_generators_produce_wellformed_schedules(self):
        rng = random.Random(11)
        for kind in SCHEDULE_GENERATORS:
            for _ in range(5):
                schedule = make_schedule(kind, rng, num_nodes=8)
                assert schedule.fault_count >= 1
                assert valid_for_machine(schedule, 8)
                # Multi-fault schedules never target the same thing twice.
                seen = set()
                for spec in schedule.specs():
                    assert not (spec.excluded_targets() & seen)
                    seen |= spec.excluded_targets()

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            make_schedule("nope", random.Random(0))

    def test_valid_for_machine_rejects_out_of_range(self):
        schedule = FaultSchedule(
            entries=(TimedFault(FaultSpec.node_failure(7)),),
            num_nodes=8)
        assert valid_for_machine(schedule, 8)
        assert not valid_for_machine(schedule, 4)


# -------------------------------------------------------------------- records

class TestRecords:
    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        record = RunRecord(run_index=3, seed=42, status=RunStatus.FAIL,
                           schedule=false_alarm_schedule().to_dict(),
                           problems=["line 0x80: stale"], restarts=1,
                           episodes=2, elapsed_s=1.5)
        append_record(path, record)
        loaded = load_records(path)
        assert loaded == [record]
        assert completed_indices(loaded) == {3}

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        record = RunRecord(run_index=0, seed=1, status=RunStatus.PASS,
                           schedule=false_alarm_schedule().to_dict())
        append_record(path, record)
        with open(path, "a") as handle:
            handle.write('{"run_index": 1, "seed"')   # killed mid-append
        assert load_records(path) == [record]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_records(tmp_path / "absent.jsonl") == []

    def test_forensics_roundtrip_and_default(self):
        summary = {"verdict": "escape", "truncated": False,
                   "faults": [{"root": "F0", "violations": 2}]}
        record = RunRecord(run_index=0, seed=1, status=RunStatus.FAIL,
                           schedule=false_alarm_schedule().to_dict(),
                           forensics=summary)
        decoded = RunRecord.from_dict(record.to_dict())
        assert decoded.forensics == summary
        bare = RunRecord.from_dict({
            "run_index": 0, "seed": 0, "status": "pass", "schedule": {}})
        assert bare.forensics == {}


# --------------------------------------------------------------------- runner

class TestRunner:
    def test_seeds_are_deterministic_and_distinct(self):
        seeds = [derive_run_seed(7, index) for index in range(50)]
        assert seeds == [derive_run_seed(7, index) for index in range(50)]
        assert len(set(seeds)) == 50
        assert seeds != [derive_run_seed(8, index) for index in range(50)]

    def test_small_campaign_all_pass(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        runner = CampaignRunner(
            schedule=false_alarm_schedule(), runs=2, campaign_seed=5,
            out_path=str(path), timeout_s=120.0)
        summary = runner.run()
        assert summary.total == 2
        assert summary.passed == 2
        assert summary.ok
        assert len(load_records(path)) == 2

    def test_resume_skips_completed_runs(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        runner = CampaignRunner(
            schedule=false_alarm_schedule(), runs=2, campaign_seed=5,
            out_path=str(path), timeout_s=120.0)
        runner.run()
        executed = []
        resumed = CampaignRunner(
            schedule=false_alarm_schedule(), runs=3, campaign_seed=5,
            out_path=str(path), timeout_s=120.0,
            progress=lambda record: executed.append(record.run_index))
        summary = resumed.run()
        # Runs 0 and 1 came from the file; only run 2 actually executed.
        assert executed == [2]
        assert summary.total == 3
        assert summary.passed == 3

    def test_crashing_run_is_recorded_not_fatal(self, tmp_path):
        # Node 9 does not exist on a 4-node machine: the worker raises
        # deep inside the simulator.  The batch must survive with a
        # CRASHED record carrying the traceback.
        bad = FaultSchedule(
            entries=(TimedFault(FaultSpec.node_failure(9), time=0.0),),
            num_nodes=4, topology="mesh", name="bad-target")
        path = tmp_path / "runs.jsonl"
        runner = CampaignRunner(schedule=bad, runs=1, campaign_seed=1,
                                out_path=str(path), timeout_s=120.0)
        summary = runner.run()
        assert summary.crashed == 1
        assert not summary.ok
        (record,) = summary.records
        assert record.status is RunStatus.CRASHED
        assert "Error" in record.error

    def test_worker_forensics_payload_reaches_record(self):
        import types
        runner = CampaignRunner(schedule=false_alarm_schedule(), runs=1)
        run = types.SimpleNamespace(run_index=0, seed=1,
                                    schedule=false_alarm_schedule())
        summary = {"verdict": "contained", "faults": []}
        record = runner._record(run, {"status": "fail",
                                      "forensics": summary})
        assert record.forensics == summary
        passing = runner._record(run, {"status": "pass"})
        assert passing.forensics == {}

    def test_watchdog_turns_wedged_run_into_hung(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        runner = CampaignRunner(
            schedule=false_alarm_schedule(), runs=1, campaign_seed=5,
            out_path=str(path), timeout_s=0.05)
        summary = runner.run()
        (record,) = summary.records
        assert record.status is RunStatus.HUNG
        assert "watchdog" in record.error
        assert not summary.ok


# ------------------------------------------------------------------- shrinker

class TestShrinker:
    def test_shrinks_to_minimal_failing_schedule(self):
        rng = random.Random(2)
        noise = [
            TimedFault(FaultSpec.false_alarm(n), time=137_000.0 * (n + 1))
            for n in (1, 2, 3)
        ]
        culprit = TimedFault(FaultSpec.node_failure(2), time=777_123.0)
        schedule = FaultSchedule(
            entries=tuple(noise[:2] + [culprit] + noise[2:]),
            num_nodes=8, topology="mesh", name="noisy")

        def still_fails(candidate):
            # Synthetic bug: failure reproduces iff node 2 is killed.
            return any(spec.target == 2 and not spec.is_link_fault
                       for spec in candidate.specs())

        result = shrink_schedule(schedule, still_fails)
        assert result.schedule.fault_count == 1
        (entry,) = result.schedule.entries
        assert entry.spec == culprit.spec
        assert entry.time == 0.0                      # timing simplified
        assert result.schedule.num_nodes == 4          # machine shrunk
        assert result.checks <= 30

    def test_crashing_predicate_counts_as_failing(self):
        schedule = false_alarm_schedule(num_nodes=8)

        def explodes(candidate):
            raise RuntimeError("predicate crashed")

        result = shrink_schedule(schedule, explodes)
        assert result.schedule.fault_count == 1

    def test_repro_command_roundtrips_schedule(self):
        schedule = false_alarm_schedule()
        command = repro_command(schedule, seed=99)
        assert "--seed 99" in command
        payload = command.split("--replay '")[1].split("'")[0]
        assert FaultSchedule.from_dict(json.loads(payload)) == schedule


# ------------------------------------------------------------------------ CLI

class TestCampaignCli:
    def test_campaign_subcommand_end_to_end(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "cli.jsonl"
        replay = json.dumps(false_alarm_schedule().to_dict())
        code = main([
            "campaign", "--replay", replay, "--runs", "2", "--seed", "3",
            "--out", str(out), "--timeout", "120",
        ])
        assert code == 0
        records = load_records(out)
        assert len(records) == 2
        assert all(r.status is RunStatus.PASS for r in records)

    def test_campaign_generator_subcommand(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "gen.jsonl"
        code = main([
            "campaign", "--schedule", "false-alarm-storm", "--runs", "1",
            "--seed", "3", "--nodes-count", "4", "--out", str(out),
            "--timeout", "120",
        ])
        assert code == 0
        assert len(load_records(out)) == 1
