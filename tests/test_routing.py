"""Unit + property tests for routing-table computation and rerouting."""

from hypothesis import given, settings, strategies as st

from repro.interconnect.routing import (
    bfs_tree,
    bft_height,
    channel_dependency_graph,
    compute_source_route,
    compute_up_down_tables,
    connected_component,
    graph_is_acyclic,
    surviving_adjacency,
)
from repro.interconnect.topology import FatHypercube, Mesh2D


def follow_tables(adjacency, tables, src, dst, limit=1000):
    """Walk the per-router tables from src to dst; return the path."""
    port_to_neighbor = {
        rid: {port: nbr for port, nbr, _ in entries}
        for rid, entries in adjacency.items()
    }
    path = [src]
    current = src
    for _ in range(limit):
        if current == dst:
            return path
        port = tables[current].get(dst)
        if port is None:
            return None
        current = port_to_neighbor[current][port]
        path.append(current)
    return None


class TestSurvivingAdjacency:
    def test_healthy_graph_matches_topology(self):
        mesh = Mesh2D(3, 3)
        adjacency = surviving_adjacency(mesh)
        assert set(adjacency) == set(range(9))
        assert len(adjacency[4]) == 4

    def test_dead_router_removed(self):
        mesh = Mesh2D(3, 3)
        adjacency = surviving_adjacency(mesh, dead_nodes={4})
        assert 4 not in adjacency
        assert all(nbr != 4 for entries in adjacency.values()
                   for _, nbr, _ in entries)

    def test_dead_link_removed_both_sides(self):
        mesh = Mesh2D(2, 2)
        adjacency = surviving_adjacency(mesh, dead_links=[(0, 1)])
        assert all(nbr != 1 for _, nbr, _ in adjacency[0])
        assert all(nbr != 0 for _, nbr, _ in adjacency[1])


class TestBfs:
    def test_tree_depth(self):
        mesh = Mesh2D(4, 1)
        adjacency = surviving_adjacency(mesh)
        _, depth = bfs_tree(adjacency, 0)
        assert depth == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_height_equals_eccentricity(self):
        mesh = Mesh2D(4, 4)
        adjacency = surviving_adjacency(mesh)
        assert bft_height(adjacency, 0) == 6      # corner: full diameter
        assert bft_height(adjacency, 5) == 4      # interior node

    def test_connected_component(self):
        mesh = Mesh2D(4, 1)   # line 0-1-2-3
        adjacency = surviving_adjacency(mesh, dead_links=[(1, 2)])
        assert connected_component(adjacency, 0) == {0, 1}
        assert connected_component(adjacency, 3) == {2, 3}


class TestUpDownTables:
    def test_healthy_mesh_all_pairs_reachable(self):
        mesh = Mesh2D(4, 4)
        adjacency = surviving_adjacency(mesh)
        tables = compute_up_down_tables(adjacency)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                path = follow_tables(adjacency, tables, src, dst)
                assert path is not None
                assert path[-1] == dst

    def test_paths_have_no_repeated_routers(self):
        mesh = Mesh2D(4, 4)
        adjacency = surviving_adjacency(mesh)
        tables = compute_up_down_tables(adjacency)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                path = follow_tables(adjacency, tables, src, dst)
                assert len(path) == len(set(path)), path

    def test_after_router_failure_survivors_reachable(self):
        mesh = Mesh2D(4, 4)
        adjacency = surviving_adjacency(mesh, dead_nodes={5, 6})
        tables = compute_up_down_tables(adjacency)
        survivors = sorted(adjacency)
        for src in survivors:
            for dst in survivors:
                if src == dst:
                    continue
                path = follow_tables(adjacency, tables, src, dst)
                assert path is not None and path[-1] == dst

    def test_dead_controllers_excluded_as_destinations(self):
        mesh = Mesh2D(2, 2)
        adjacency = surviving_adjacency(mesh)
        tables = compute_up_down_tables(
            adjacency, dead_node_controllers={3})
        assert all(3 not in table for table in tables.values())
        # ...but router 3 still forwards for others.
        assert tables[3] != {}

    def test_dependency_graph_acyclic_healthy(self):
        mesh = Mesh2D(4, 4)
        adjacency = surviving_adjacency(mesh)
        tables = compute_up_down_tables(adjacency)
        edges = channel_dependency_graph(adjacency, tables)
        assert graph_is_acyclic(edges)

    def test_dependency_graph_acyclic_after_faults(self):
        mesh = Mesh2D(4, 4)
        adjacency = surviving_adjacency(
            mesh, dead_nodes={9}, dead_links=[(0, 1), (2, 6)])
        tables = compute_up_down_tables(adjacency)
        edges = channel_dependency_graph(adjacency, tables)
        assert graph_is_acyclic(edges)

    def test_baseline_mesh_tables_would_not_be_acyclic_after_faults(self):
        # Sanity check for the *test harness*: dimension-ordered tables on a
        # healthy mesh are deadlock-free too.
        mesh = Mesh2D(3, 3)
        adjacency = surviving_adjacency(mesh)
        tables = {rid: mesh.baseline_table(rid) for rid in range(9)}
        edges = channel_dependency_graph(adjacency, tables)
        assert graph_is_acyclic(edges)

    def test_empty_graph(self):
        assert compute_up_down_tables({}) == {}


class TestSourceRoute:
    def test_direct_neighbor(self):
        mesh = Mesh2D(2, 1)
        adjacency = surviving_adjacency(mesh)
        route = compute_source_route(adjacency, 0, 1)
        assert route == [Mesh2D.EAST]

    def test_self_route_empty(self):
        mesh = Mesh2D(2, 2)
        adjacency = surviving_adjacency(mesh)
        assert compute_source_route(adjacency, 2, 2) == []

    def test_route_avoids_failed_region(self):
        mesh = Mesh2D(3, 3)
        # Fail the straight-line path between 3 and 5 (through 4).
        adjacency = surviving_adjacency(mesh, dead_nodes={4})
        route = compute_source_route(adjacency, 3, 5)
        assert route is not None
        assert len(route) == 4   # must detour around the center

    def test_unreachable_returns_none(self):
        mesh = Mesh2D(4, 1)
        adjacency = surviving_adjacency(mesh, dead_links=[(1, 2)])
        assert compute_source_route(adjacency, 0, 3) is None

    def test_route_is_shortest(self):
        cube = FatHypercube(4)
        adjacency = surviving_adjacency(cube)
        route = compute_source_route(adjacency, 0, 0b1111)
        assert len(route) == 4


class TestGraphIsAcyclic:
    def test_empty(self):
        assert graph_is_acyclic(set())

    def test_chain(self):
        assert graph_is_acyclic({("a", "b"), ("b", "c")})

    def test_cycle_detected(self):
        assert not graph_is_acyclic({("a", "b"), ("b", "c"), ("c", "a")})

    def test_self_loop_detected(self):
        assert not graph_is_acyclic({("a", "a")})


# --- property-based tests ----------------------------------------------------

@st.composite
def mesh_with_faults(draw):
    width = draw(st.integers(min_value=2, max_value=5))
    height = draw(st.integers(min_value=2, max_value=5))
    mesh = Mesh2D(width, height)
    node_count = mesh.num_nodes
    dead_nodes = draw(st.sets(
        st.integers(min_value=0, max_value=node_count - 1),
        max_size=max(0, node_count // 3)))
    all_links = [frozenset((a, b)) for a, _, b, _ in mesh.links()]
    dead_links = draw(st.sets(
        st.sampled_from(all_links), max_size=len(all_links) // 4)
        if all_links else st.just(set()))
    return mesh, dead_nodes, dead_links


@given(mesh_with_faults())
@settings(max_examples=60, deadline=None)
def test_property_up_down_tables_deadlock_free(case):
    """Rerouting after arbitrary faults never creates dependency cycles."""
    mesh, dead_nodes, dead_links = case
    adjacency = surviving_adjacency(
        mesh, dead_nodes=dead_nodes, dead_links=dead_links)
    if not adjacency:
        return
    # Restrict to the component containing the lowest surviving router, as
    # the recovery algorithm does (it assumes no split-brain, §4.2).
    root = min(adjacency)
    component = connected_component(adjacency, root)
    adjacency = {
        rid: [e for e in entries if e[1] in component]
        for rid, entries in adjacency.items() if rid in component
    }
    tables = compute_up_down_tables(adjacency)
    edges = channel_dependency_graph(adjacency, tables)
    assert graph_is_acyclic(edges)


@given(mesh_with_faults())
@settings(max_examples=60, deadline=None)
def test_property_up_down_tables_reach_all_survivors(case):
    """Within a surviving component, every pair is connected by the tables."""
    mesh, dead_nodes, dead_links = case
    adjacency = surviving_adjacency(
        mesh, dead_nodes=dead_nodes, dead_links=dead_links)
    if not adjacency:
        return
    root = min(adjacency)
    component = connected_component(adjacency, root)
    adjacency = {
        rid: [e for e in entries if e[1] in component]
        for rid, entries in adjacency.items() if rid in component
    }
    tables = compute_up_down_tables(adjacency)
    for src in component:
        for dst in component:
            if src == dst:
                continue
            path = follow_tables(adjacency, tables, src, dst)
            assert path is not None and path[-1] == dst


@given(mesh_with_faults())
@settings(max_examples=60, deadline=None)
def test_property_source_routes_valid(case):
    """Source routes computed on the surviving graph traverse live ports."""
    mesh, dead_nodes, dead_links = case
    adjacency = surviving_adjacency(
        mesh, dead_nodes=dead_nodes, dead_links=dead_links)
    survivors = sorted(adjacency)
    port_to_neighbor = {
        rid: {port: nbr for port, nbr, _ in entries}
        for rid, entries in adjacency.items()
    }
    for src in survivors[:4]:
        for dst in survivors[:4]:
            route = compute_source_route(adjacency, src, dst)
            if route is None:
                continue
            current = src
            for port in route:
                assert port in port_to_neighbor[current]
                current = port_to_neighbor[current][port]
            assert current == dst
