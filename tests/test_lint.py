"""Tests for repro.lint: the AST invariant linter.

Each rule gets a golden "bad module" fixture asserting exact findings,
plus suppression handling, baseline round-trips, and — the gate the CI
job relies on — a check that the real ``src/repro`` tree lints clean
with an empty baseline.
"""

import json
import textwrap

import pytest

from repro.lint import (
    Module,
    Project,
    Severity,
    all_rules,
    apply_baseline,
    format_json,
    format_text,
    lint_project,
    load_baseline,
    run_lint,
    write_baseline,
)


def make_module(source, rel="sim/bad.py"):
    return Module(rel, textwrap.dedent(source))


def lint_source(source, rel="sim/bad.py"):
    return lint_project(Project([make_module(source, rel)]))


def rules_of(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------- determinism

class TestDeterminismRules:
    def test_wall_clock_flagged_in_sim_zone(self):
        findings = lint_source("""
            import time

            def now():
                return time.time()
        """)
        (finding,) = findings
        assert finding.rule == "wall-clock"
        assert finding.severity is Severity.ERROR
        assert finding.line == 5
        assert "time.time" in finding.message

    def test_wall_clock_via_from_import_and_alias(self):
        findings = lint_source("""
            import time as t
            from datetime import datetime

            def stamp():
                return t.monotonic(), datetime.now()
        """)
        assert rules_of(findings) == ["wall-clock", "wall-clock"]

    def test_wall_clock_ignored_outside_zones(self):
        findings = lint_source("""
            import time

            def now():
                return time.time()
        """, rel="workloads/bench.py")
        assert findings == []

    def test_unseeded_random_flagged(self):
        findings = lint_source("""
            import random

            def pick(items):
                return items[random.randrange(len(items))]
        """)
        (finding,) = findings
        assert finding.rule == "unseeded-random"
        assert "random.Random" in finding.message

    def test_seeded_random_instances_allowed(self):
        findings = lint_source("""
            import random

            def make_rng(seed):
                rng = random.Random(seed)
                return rng.random() + rng.randint(0, 3)
        """)
        assert findings == []

    def test_sim_rng_draws_allowed(self):
        findings = lint_source("""
            def jitter(sim):
                return sim.rng.uniform(0.0, 5.0)
        """)
        assert findings == []

    def test_unordered_iteration_over_set_flagged(self):
        findings = lint_source("""
            def fan_out(sharers):
                for node in set(sharers):
                    yield node
                return [n for n in {1, 2} | set(sharers)]
        """)
        assert rules_of(findings) == ["unordered-iter", "unordered-iter"]
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_dict_keys_iteration_flagged(self):
        findings = lint_source("""
            def drain(table):
                for line in table.keys():
                    yield line
        """)
        assert rules_of(findings) == ["unordered-iter"]

    def test_sorted_iteration_allowed(self):
        findings = lint_source("""
            def fan_out(sharers):
                for node in sorted(set(sharers)):
                    yield node
        """)
        assert findings == []


# ---------------------------------------------------- protocol exhaustiveness

MESSAGES_GOOD = """
    import enum

    class MessageKind(enum.Enum):
        GET = "get"
        PUT = "put"
        NAK = "nak"
"""

TYPES_SOURCE = """
    import enum

    class DirState(enum.Enum):
        UNOWNED = "U"
        SHARED = "S"
        EXCLUSIVE = "E"
        LOCKED = "L"
        INCOHERENT = "X"
"""

MAGIC_SOURCE = """
    from repro.coherence.messages import MessageKind

    _REPLY_KINDS = frozenset({MessageKind.NAK})
"""

PROTOCOL_GOOD = """
    from repro.coherence.messages import MessageKind
    from repro.common.types import DirState

    class ProtocolEngine:
        def _home_get(self, packet):
            entry = self.entry(packet)
            if entry.state == DirState.INCOHERENT:
                return 10
            if entry.state == DirState.LOCKED:
                return 10
            if entry.state == DirState.UNOWNED:
                return 20
            if entry.state == DirState.SHARED:
                return 20
            return 30

        def _home_put(self, packet):
            entry = self.entry(packet)
            if entry.state == DirState.EXCLUSIVE:
                return 20
            return 10

    _HANDLERS = {
        MessageKind.GET: ProtocolEngine._home_get,
        MessageKind.PUT: ProtocolEngine._home_put,
    }
"""


def protocol_project(messages=MESSAGES_GOOD, protocol=PROTOCOL_GOOD,
                     magic=MAGIC_SOURCE, types=TYPES_SOURCE):
    return Project([
        make_module(messages, rel="coherence/messages.py"),
        make_module(protocol, rel="coherence/protocol.py"),
        make_module(magic, rel="node/magic.py"),
        make_module(types, rel="common/types.py"),
    ])


class TestProtocolExhaustiveness:
    def test_complete_protocol_is_clean(self):
        findings = lint_project(protocol_project())
        assert findings == []

    def test_unhandled_message_kind_flagged(self):
        messages = MESSAGES_GOOD + "        MYSTERY = \"mystery\"\n"
        findings = [f for f in lint_project(protocol_project(messages))
                    if f.rule == "protocol-exhaustive"]
        (finding,) = findings
        assert "MessageKind.MYSTERY" in finding.message
        assert "stray message" in finding.message
        assert finding.path == "coherence/messages.py"

    def test_unknown_handler_key_flagged(self):
        protocol = PROTOCOL_GOOD.replace(
            "MessageKind.PUT:", "MessageKind.TYPO:")
        findings = [f for f in lint_project(protocol_project(
            protocol=protocol)) if f.rule == "protocol-exhaustive"]
        # TYPO is not a member, and PUT loses its handler entry.
        assert {"MessageKind.TYPO", "MessageKind.PUT"} == {
            message.split(" ")[0] for message in
            (f.message for f in findings)}

    def test_missing_dirstate_branch_flagged(self):
        protocol = """
            from repro.coherence.messages import MessageKind
            from repro.common.types import DirState

            class ProtocolEngine:
                def _home_get(self, packet):
                    entry = self.entry(packet)
                    if entry.state == DirState.UNOWNED:
                        return 20
                    if entry.state == DirState.SHARED:
                        return 20

                def _home_put(self, packet):
                    return 10

            _HANDLERS = {
                MessageKind.GET: ProtocolEngine._home_get,
                MessageKind.PUT: ProtocolEngine._home_put,
            }
        """
        findings = [f for f in lint_project(protocol_project(
            protocol=protocol)) if f.rule == "protocol-exhaustive"]
        (finding,) = findings
        assert "_home_get" in finding.message
        for state in ("EXCLUSIVE", "LOCKED", "INCOHERENT"):
            assert state in finding.message

    def test_unknown_dirstate_member_flagged(self):
        protocol = PROTOCOL_GOOD.replace("DirState.INCOHERENT",
                                         "DirState.BROKEN")
        findings = [f for f in lint_project(protocol_project(
            protocol=protocol)) if f.rule == "protocol-exhaustive"]
        assert any("DirState.BROKEN" in f.message for f in findings)


# ------------------------------------------------------------ telemetry guard

class TestTelemetryGuard:
    def test_unguarded_emit_flagged(self):
        findings = lint_source("""
            class Router:
                def drop(self, packet):
                    self.trace.emit("pkt", "drop", node=self.router_id,
                                    cause=None)
        """, rel="interconnect/router.py")
        (finding,) = findings
        assert finding.rule == "telemetry-guard"
        assert "self.trace" in finding.message

    def test_guarded_emit_allowed(self):
        findings = lint_source("""
            class Router:
                def drop(self, packet):
                    tr = self.trace
                    if tr is not None:
                        tr.emit("pkt", "drop", node=self.router_id,
                                cause=None)
        """, rel="interconnect/router.py")
        assert findings == []

    def test_guard_must_cover_same_receiver(self):
        findings = lint_source("""
            class Router:
                def drop(self, packet, other):
                    tr = self.trace
                    if other is not None:
                        tr.emit("pkt", "drop", node=self.router_id,
                                cause=None)
        """, rel="interconnect/router.py")
        assert rules_of(findings) == ["telemetry-guard"]

    def test_unguarded_metrics_instrument_flagged(self):
        findings = lint_source("""
            class Engine:
                def note(self):
                    self.metrics.counter("protocol.stray").inc()
        """, rel="coherence/protocol.py")
        assert rules_of(findings) == ["telemetry-guard"]

    def test_guarded_metrics_allowed(self):
        findings = lint_source("""
            class Engine:
                def note(self):
                    metrics = self.metrics
                    if metrics is not None:
                        metrics.counter("protocol.stray").inc()
        """, rel="coherence/protocol.py")
        assert findings == []

    def test_unguarded_profiler_dispatch_flagged(self):
        findings = lint_source("""
            class Simulator:
                def step(self, call):
                    prof = self.profiler
                    prof.dispatch(call.callback, call.args)
        """, rel="sim/engine.py")
        assert rules_of(findings) == ["telemetry-guard"]
        assert "prof" in findings[0].message

    def test_guarded_profiler_dispatch_allowed(self):
        findings = lint_source("""
            class Simulator:
                def step(self, call):
                    prof = self.profiler
                    if prof is not None:
                        prof.dispatch(call.callback, call.args)
                    else:
                        call.callback(*call.args)
        """, rel="sim/engine.py")
        assert findings == []

    def test_unrelated_dispatch_receivers_ignored(self):
        findings = lint_source("""
            class Magic:
                def handle(self, message):
                    self.table.dispatch(message)
        """, rel="node/magic.py")
        assert findings == []

    def test_telemetry_package_is_exempt(self):
        findings = lint_source("""
            def replay(recorder, events):
                for event in events:
                    recorder.emit(event.category, event.name)
        """, rel="telemetry/replay.py")
        assert findings == []


# ------------------------------------------------------------ telemetry cause

class TestTelemetryCause:
    def test_emit_without_cause_flagged_in_packet_zone(self):
        findings = lint_source("""
            class Router:
                def drop(self, packet):
                    tr = self.trace
                    if tr is not None:
                        tr.emit("pkt", "drop", node=self.router_id)
        """, rel="interconnect/router.py")
        (finding,) = findings
        assert finding.rule == "telemetry-cause"
        assert "cause" in finding.message

    def test_explicit_cause_none_allowed(self):
        # cause=None states "no causal parent" explicitly; only the
        # *omission* of the keyword hides a hop from the forensic DAG.
        findings = lint_source("""
            class Router:
                def drop(self, packet):
                    tr = self.trace
                    if tr is not None:
                        tr.emit("pkt", "drop", node=self.router_id,
                                cause=packet.cause_eid)
        """, rel="interconnect/router.py")
        assert findings == []

    def test_rule_covers_magic_and_coherence(self):
        source = """
            class Handler:
                def note(self, magic):
                    tr = magic.trace
                    if tr is not None:
                        tr.emit("protocol", "stray", node=magic.node_id)
        """
        for rel in ("node/magic.py", "coherence/protocol.py"):
            assert rules_of(lint_source(source, rel)) == ["telemetry-cause"]

    def test_non_packet_zones_unaffected(self):
        findings = lint_source("""
            class Manager:
                def note(self):
                    tr = self.trace
                    if tr is not None:
                        tr.emit("episode", "begin", node=0)
        """, rel="recovery/manager.py")
        assert findings == []


# ---------------------------------------------------------------- sim hygiene

class TestSimHygiene:
    def test_sleep_and_open_flagged_in_sim_zone(self):
        findings = lint_source("""
            import time

            def checkpoint(state, path):
                time.sleep(0.1)
                with open(path, "w") as handle:
                    handle.write(state)
        """, rel="sim/engine.py")
        assert rules_of(findings) == ["sim-blocking", "sim-blocking"]

    def test_blocking_ignored_outside_sim_zones(self):
        findings = lint_source("""
            import subprocess

            def launch(args):
                return subprocess.run(args)
        """, rel="campaign/worker.py")
        assert findings == []

    def test_handler_missing_cost_flagged(self):
        findings = lint_source("""
            from repro.coherence.messages import MessageKind

            class ProtocolEngine:
                def _home_get(self, packet):
                    if packet.stale:
                        return
                    self.reply(packet)

            _HANDLERS = {MessageKind.GET: ProtocolEngine._home_get}
        """, rel="coherence/protocol.py")
        assert rules_of(findings) == ["handler-cost", "handler-cost"]
        messages = sorted(f.message for f in findings)
        assert any("fall off the end" in m for m in messages)
        assert any("returns no cost" in m for m in messages)

    def test_magic_dispatch_handlers_checked(self):
        findings = lint_source("""
            class Magic:
                def _handle_reply(self, packet):
                    self.stats.replies += 1
        """, rel="node/magic.py")
        assert rules_of(findings) == ["handler-cost"]

    def test_handler_returning_cost_everywhere_is_clean(self):
        findings = lint_source("""
            class Magic:
                def _handle_reply(self, packet):
                    if packet.kind == "nak":
                        return self.params.short_handler_time
                    return self.params.handler_time
        """, rel="node/magic.py")
        assert findings == []

    def test_broad_except_flagged_everywhere(self):
        findings = lint_source("""
            def guess(value):
                try:
                    return int(value)
                except Exception:
                    return 0
        """, rel="workloads/parse.py")
        assert rules_of(findings) == ["broad-except"]

    def test_bare_except_flagged(self):
        findings = lint_source("""
            def guess(value):
                try:
                    return int(value)
                except:
                    return 0
        """, rel="workloads/parse.py")
        assert rules_of(findings) == ["broad-except"]

    def test_specific_except_allowed(self):
        findings = lint_source("""
            def guess(value):
                try:
                    return int(value)
                except (ValueError, TypeError):
                    return 0
        """, rel="workloads/parse.py")
        assert findings == []


# ------------------------------------------------------------- suppressions

class TestSuppressions:
    def test_line_pragma_suppresses_single_rule(self):
        findings = lint_source("""
            import time

            def now():
                return time.time()   # repro-lint: disable=wall-clock — ok

            def later():
                return time.time()
        """)
        (finding,) = findings
        assert finding.line == 8

    def test_file_pragma_suppresses_whole_file(self):
        findings = lint_source("""
            # repro-lint: disable-file=wall-clock — harness-side module
            import time

            def now():
                return time.time()

            def later():
                return time.time()
        """)
        assert findings == []

    def test_pragma_only_covers_named_rules(self):
        findings = lint_source("""
            import time
            import random

            def now():
                return time.time() + random.random()   # repro-lint: disable=wall-clock
        """)
        assert rules_of(findings) == ["unseeded-random"]


# ------------------------------------------------------------------ baseline

class TestBaseline:
    def test_round_trip_suppresses_grandfathered(self, tmp_path):
        source = """
            import time

            def now():
                return time.time()
        """
        findings = lint_source(source)
        assert len(findings) == 1
        path = tmp_path / "baseline.json"
        write_baseline(str(path), findings)
        baseline = load_baseline(str(path))
        assert apply_baseline(findings, baseline) == []
        # New findings are NOT covered.
        fresh = lint_source(source + """
            def later():
                return time.monotonic()
        """)
        remaining = apply_baseline(fresh, baseline)
        assert len(remaining) == 1
        assert "time.monotonic" in remaining[0].message

    def test_baseline_entries_consumed_once(self, tmp_path):
        findings = lint_source("""
            import time

            def now():
                return time.time() + time.time()
        """)
        assert len(findings) == 2
        path = tmp_path / "baseline.json"
        write_baseline(str(path), findings[:1])
        remaining = apply_baseline(findings, load_baseline(str(path)))
        assert len(remaining) == 1


# ---------------------------------------------------------------- the gate

class TestRepoIsClean:
    def test_rule_registry_is_complete(self):
        assert set(all_rules()) == {
            "wall-clock", "unseeded-random", "unordered-iter",
            "protocol-exhaustive", "telemetry-guard", "telemetry-cause",
            "sim-blocking", "handler-cost", "broad-except",
            "lock-leak", "escape-send", "model-drift",
        }

    def test_src_repro_lints_clean_with_empty_baseline(self):
        findings, suppressed = run_lint()
        assert suppressed == 0
        assert findings == [], format_text(findings)

    def test_cli_lint_json_reports_clean(self, capsys):
        from repro.cli import main
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["findings"] == []

    def test_format_json_round_trips_findings(self):
        findings = lint_source("""
            import time

            def now():
                return time.time()
        """)
        payload = json.loads(format_json(findings))
        assert payload["count"] == 1
        assert payload["errors"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "wall-clock"
        assert entry["path"] == "sim/bad.py"


# ------------------------------------------------------------- CLI options

DIRTY_SOURCE = textwrap.dedent("""
    def first():
        try:
            return 1
        except Exception:
            return None

    def second():
        try:
            return 2
        except Exception:
            return None
""")


def _dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY_SOURCE)
    return str(path)


class TestCliLintOptions:
    def test_rule_filter_keeps_only_named_rules(self, tmp_path, capsys):
        from repro.cli import main
        path = _dirty_file(tmp_path)
        assert main(["lint", path, "--format", "json",
                     "--rule", "broad-except"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert {f["rule"] for f in payload["findings"]} == {"broad-except"}

    def test_rule_filter_can_silence_everything(self, tmp_path, capsys):
        from repro.cli import main
        path = _dirty_file(tmp_path)
        assert main(["lint", path, "--format", "json",
                     "--rule", "wall-clock"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0

    def test_unknown_rule_is_an_error(self, tmp_path):
        from repro.cli import main
        path = _dirty_file(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", path, "--rule", "no-such-rule"])
        assert "unknown rule" in str(excinfo.value)

    def test_github_format_emits_annotations(self, tmp_path, capsys):
        from repro.cli import main
        path = _dirty_file(tmp_path)
        assert main(["lint", path, "--format", "github"]) == 1
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("::error ")]
        assert len(lines) == 2
        assert all("file=" in l and "line=" in l and "[broad-except]" in l
                   for l in lines)


class TestCliBaselineRegeneration:
    """--update-baseline must regenerate from the unfiltered run.

    The original implementation wrote the post-baseline view, so every
    regeneration silently dropped the grandfathered findings that still
    existed -- the baseline shrank while the findings lived on, and the
    next gated run went red.
    """

    def test_update_twice_keeps_grandfathered_findings(self, tmp_path,
                                                       capsys):
        from repro.cli import main
        path = _dirty_file(tmp_path)
        baseline = str(tmp_path / "baseline.json")

        assert main(["lint", path, "--baseline", baseline,
                     "--update-baseline"]) == 0
        first = json.loads(open(baseline).read())
        assert len(first["findings"]) == 2

        # Gated run: everything grandfathered, exit clean.
        assert main(["lint", path, "--baseline", baseline]) == 0
        capsys.readouterr()

        # Regenerating with the baseline in place must NOT shrink it.
        assert main(["lint", path, "--baseline", baseline,
                     "--update-baseline"]) == 0
        second = json.loads(open(baseline).read())
        assert len(second["findings"]) == 2
        assert main(["lint", path, "--baseline", baseline]) == 0

    def test_update_baseline_requires_a_path(self):
        from repro.cli import main
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--update-baseline"])
        assert "--baseline" in str(excinfo.value)
