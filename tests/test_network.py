"""Functional tests for the assembled interconnect fabric."""

import pytest

from repro.common.params import TimingParams
from repro.common.types import Lane
from repro.interconnect.network import Network
from repro.interconnect.packet import Packet, ROUTER_PROBE, ROUTER_PROBE_REPLY
from repro.interconnect.routing import compute_source_route
from repro.interconnect.topology import Mesh2D
from repro.sim import Simulator


def build(width=3, height=3, **param_overrides):
    sim = Simulator(seed=1)
    params = TimingParams(**param_overrides)
    network = Network(sim, params, Mesh2D(width, height))
    network.start()
    return sim, params, network


def drain_all(sim, network, node_id, collected):
    """Consumer process storing every packet delivered to ``node_id``."""
    interface = network.interface(node_id)

    def consumer():
        while True:
            packet = yield interface.receive()
            collected.append((sim.now, packet))

    return sim.spawn(consumer(), name="drain%d" % node_id)


class TestDelivery:
    def test_single_packet_delivered(self):
        sim, _, network = build()
        received = []
        drain_all(sim, network, 8, received)
        network.interface(0).send(
            Packet(src=0, dst=8, lane=Lane.REQUEST, kind="test"))
        sim.run(until=1_000_000)
        assert len(received) == 1
        assert received[0][1].kind == "test"
        assert received[0][1].hops == 4   # 0 -> 8 in a 3x3 mesh

    def test_latency_scales_with_hops(self):
        sim, params, network = build(4, 1)
        received = []
        drain_all(sim, network, 1, received)
        drain_all(sim, network, 3, received)
        network.interface(0).send(
            Packet(src=0, dst=1, lane=Lane.REQUEST, kind="near"))
        network.interface(0).send(
            Packet(src=0, dst=3, lane=Lane.REQUEST, kind="far"))
        sim.run(until=1_000_000)
        by_kind = {p.kind: t for t, p in received}
        assert by_kind["far"] > by_kind["near"]

    def test_in_order_delivery_same_lane(self):
        sim, _, network = build()
        received = []
        drain_all(sim, network, 4, received)
        for seq in range(10):
            network.interface(0).send(
                Packet(src=0, dst=4, lane=Lane.REQUEST,
                       kind="seq", payload=seq))
        sim.run(until=1_000_000)
        assert [p.payload for _, p in received] == list(range(10))

    def test_bidirectional_traffic(self):
        sim, _, network = build()
        received_a, received_b = [], []
        drain_all(sim, network, 0, received_a)
        drain_all(sim, network, 8, received_b)
        network.interface(0).send(
            Packet(src=0, dst=8, lane=Lane.REQUEST, kind="ab"))
        network.interface(8).send(
            Packet(src=8, dst=0, lane=Lane.REQUEST, kind="ba"))
        sim.run(until=1_000_000)
        assert len(received_a) == 1 and len(received_b) == 1

    def test_many_to_one_all_delivered(self):
        sim, _, network = build()
        received = []
        drain_all(sim, network, 4, received)
        for src in range(9):
            if src == 4:
                continue
            for i in range(5):
                network.interface(src).send(
                    Packet(src=src, dst=4, lane=Lane.REQUEST,
                           kind="m", payload=(src, i)))
        sim.run(until=10_000_000)
        assert len(received) == 40


class TestSourceRouting:
    def test_source_routed_packet_follows_route(self):
        sim, _, network = build(3, 1)
        received = []
        drain_all(sim, network, 2, received)
        route = [Mesh2D.EAST, Mesh2D.EAST]
        network.interface(0).send(
            Packet(src=0, dst=2, lane=Lane.RECOVERY_A, kind="sr",
                   source_route=route))
        sim.run(until=1_000_000)
        assert len(received) == 1
        assert received[0][1].trace_ports == [Mesh2D.WEST, Mesh2D.WEST]

    def test_reversed_trace_reaches_origin(self):
        sim, _, network = build(3, 3)
        received = []
        drain_all(sim, network, 0, received)
        adjacency = network.true_surviving_adjacency()
        route = compute_source_route(adjacency, 8, 0)
        network.interface(8).send(
            Packet(src=8, dst=0, lane=Lane.RECOVERY_A, kind="fwd",
                   source_route=route))
        sim.run(until=1_000_000)
        assert len(received) == 1
        reply_route = list(reversed(received[0][1].trace_ports))
        received_back = []
        drain_all(sim, network, 8, received_back)
        network.interface(0).send(
            Packet(src=0, dst=8, lane=Lane.RECOVERY_A, kind="reply",
                   source_route=reply_route))
        sim.run(until=2_000_000)
        assert len(received_back) == 1


class TestRouterProbes:
    def test_probe_answered_by_live_router(self):
        sim, _, network = build(2, 1)
        received = []
        drain_all(sim, network, 0, received)
        network.interface(0).send(
            Packet(src=0, dst=None, lane=Lane.RECOVERY_A,
                   kind=ROUTER_PROBE, source_route=[Mesh2D.EAST]))
        sim.run(until=1_000_000)
        assert len(received) == 1
        reply = received[0][1]
        assert reply.kind == ROUTER_PROBE_REPLY
        assert reply.payload["router_id"] == 1

    def test_probe_into_failed_router_unanswered(self):
        sim, _, network = build(2, 1)
        received = []
        drain_all(sim, network, 0, received)
        network.fail_router(1)
        network.interface(0).send(
            Packet(src=0, dst=None, lane=Lane.RECOVERY_A,
                   kind=ROUTER_PROBE, source_route=[Mesh2D.EAST]))
        sim.run(until=1_000_000)
        assert received == []

    def test_probe_answered_when_node_dead_but_router_alive(self):
        sim, _, network = build(2, 1)
        received = []
        drain_all(sim, network, 0, received)
        network.fail_node_interface(1)   # node dead, router powered
        network.interface(0).send(
            Packet(src=0, dst=None, lane=Lane.RECOVERY_A,
                   kind=ROUTER_PROBE, source_route=[Mesh2D.EAST]))
        sim.run(until=1_000_000)
        assert len(received) == 1


class TestFailures:
    def test_failed_node_sinks_packets(self):
        sim, _, network = build(2, 1)
        network.fail_node_interface(1)
        network.interface(0).send(
            Packet(src=0, dst=1, lane=Lane.REQUEST, kind="doomed"))
        sim.run(until=1_000_000)
        assert len(network.interface(1).inbox) == 0

    def test_failed_link_black_holes_traffic(self):
        sim, _, network = build(2, 1)
        received = []
        drain_all(sim, network, 1, received)
        network.fail_link(0, 1)
        network.interface(0).send(
            Packet(src=0, dst=1, lane=Lane.REQUEST, kind="doomed"))
        sim.run(until=1_000_000)
        assert received == []
        assert network.router(0).stats.dropped_link == 1

    def test_link_failure_truncates_in_flight_packet(self):
        sim, params, network = build(2, 1)
        received = []
        drain_all(sim, network, 1, received)
        network.interface(0).send(
            Packet(src=0, dst=1, lane=Lane.REQUEST, kind="data",
                   payload="precious", flits=9))
        # Let the transfer start, then fail the link mid-flight.
        transfer_start = 5.0
        sim.run(until=transfer_start)
        # The packet should now be on the wire.
        link = network.link_between(0, 1)
        assert link.in_flight, "expected packet in flight"
        network.fail_link(0, 1)
        sim.run(until=1_000_000)
        assert len(received) == 1
        packet = received[0][1]
        assert packet.truncated
        assert packet.payload is None

    def test_failed_router_drops_buffered_packets(self):
        # Wedge node 2 so the flood backs up into router 1's buffers, then
        # fail router 1: whatever it held must be lost.
        sim, _, network = build(3, 1, magic_inbox_capacity=1,
                                buffer_capacity=1)
        network.wedge_node_interface(2)
        for _ in range(6):
            network.interface(0).send(
                Packet(src=0, dst=2, lane=Lane.REQUEST, kind="through"))
        sim.run(until=100_000)
        assert network.router(1).buffered_packet_count() >= 1
        network.fail_router(1)
        sim.run(until=1_000_000)
        assert network.router(1).stats.dropped_failed >= 1
        assert network.router(1).buffered_packet_count() == 0

    def test_wedged_interface_backs_up_traffic(self):
        """A controller that stops accepting packets congests the fabric
        (paper §3.1: infinite-loop firmware fault)."""
        sim, params, network = build(3, 1, magic_inbox_capacity=2,
                                     buffer_capacity=2)
        network.wedge_node_interface(2)
        for i in range(30):
            network.interface(0).send(
                Packet(src=0, dst=2, lane=Lane.REQUEST,
                       kind="flood", payload=i))
        sim.run(until=5_000_000)
        # Traffic must be stuck: buffered in routers or in the source outbox,
        # with the wedged inbox full.
        inbox_depth = len(network.interface(2).inbox)
        assert inbox_depth <= params.magic_inbox_capacity
        stuck = (network.total_buffered_packets()
                 + network.interface(0).outbox_depth
                 + inbox_depth)
        assert stuck >= 25

    def test_congestion_blocks_unrelated_traffic(self):
        """Back-pressure from a wedged node delays traffic that shares links."""
        sim, params, network = build(4, 1, magic_inbox_capacity=1,
                                     buffer_capacity=1)
        network.wedge_node_interface(3)
        for i in range(20):
            network.interface(0).send(
                Packet(src=0, dst=3, lane=Lane.REQUEST, kind="flood"))
        sim.run(until=100_000)
        received = []
        drain_all(sim, network, 2, received)
        # A packet from 1 to 2 must cross links shared with the flood.
        network.interface(1).send(
            Packet(src=1, dst=2, lane=Lane.REQUEST, kind="innocent"))
        sim.run(until=200_000)
        assert received == []   # stuck behind the congestion


class TestRecoveryLaneStallDiscard:
    def test_stalled_recovery_packets_discarded(self):
        """Recovery lanes never stay congested (paper §4.1)."""
        sim, params, network = build(3, 1, recovery_stall_discard=1_000.0,
                                     recovery_buffer_capacity=2,
                                     magic_inbox_capacity=2)
        # Wedge node 1: its inbox fills, recovery packets stall at router 1
        # and must be discarded rather than congest the recovery lane.
        network.wedge_node_interface(1)
        for i in range(10):
            network.interface(0).send(
                Packet(src=0, dst=1, lane=Lane.RECOVERY_A, kind="rec",
                       source_route=[Mesh2D.EAST]))
        sim.run(until=10_000_000)
        # All packets either delivered (up to inbox capacity) or discarded;
        # nothing remains buffered in the fabric.
        assert network.total_buffered_packets() == 0
        assert network.router(1).stats.dropped_stall >= 1

    def test_normal_lanes_do_not_stall_discard(self):
        sim, params, network = build(3, 1, recovery_stall_discard=1_000.0)
        network.wedge_node_interface(1)
        for i in range(30):
            network.interface(0).send(
                Packet(src=0, dst=1, lane=Lane.REQUEST, kind="norm"))
        sim.run(until=10_000_000)
        assert network.router(0).stats.dropped_stall == 0
        assert network.router(1).stats.dropped_stall == 0


class TestDiscardPorts:
    def test_discard_port_drops_traffic(self):
        sim, _, network = build(3, 1)
        received = []
        drain_all(sim, network, 2, received)
        network.router(1).set_discard_ports({Mesh2D.EAST})
        network.interface(0).send(
            Packet(src=0, dst=2, lane=Lane.REQUEST, kind="blocked"))
        sim.run(until=1_000_000)
        assert received == []
        assert network.router(1).stats.dropped_discard == 1

    def test_clearing_discard_restores_traffic(self):
        sim, _, network = build(3, 1)
        received = []
        drain_all(sim, network, 2, received)
        network.router(1).set_discard_ports({Mesh2D.EAST})
        network.interface(0).send(
            Packet(src=0, dst=2, lane=Lane.REQUEST, kind="first"))
        sim.run(until=100_000)
        network.router(1).set_discard_ports(set())
        network.interface(0).send(
            Packet(src=0, dst=2, lane=Lane.REQUEST, kind="second"))
        sim.run(until=1_000_000)
        assert [p.kind for _, p in received] == ["second"]


class TestReprogramming:
    def test_traffic_follows_new_tables(self):
        sim, _, network = build(2, 2)
        received = []
        drain_all(sim, network, 3, received)
        # Break the dimension-ordered path 0 -> 1 -> 3 by failing link 0-1,
        # then reprogram tables to go 0 -> 2 -> 3.
        network.fail_link(0, 1)
        from repro.interconnect.routing import (
            compute_up_down_tables, surviving_adjacency)
        adjacency = surviving_adjacency(
            network.topology, dead_links=[(0, 1)])
        tables = compute_up_down_tables(adjacency)
        for rid, table in tables.items():
            network.router(rid).program_table(table)
        network.interface(0).send(
            Packet(src=0, dst=3, lane=Lane.REQUEST, kind="rerouted"))
        sim.run(until=1_000_000)
        assert len(received) == 1
        assert received[0][1].hops == 2


class TestGroundTruth:
    def test_true_adjacency_reflects_failures(self):
        sim, _, network = build(3, 3)
        network.fail_router(4)
        network.fail_link(0, 1)
        adjacency = network.true_surviving_adjacency()
        assert 4 not in adjacency
        assert all(nbr != 1 for _, nbr, _ in adjacency[0])

    def test_no_link_between_non_neighbors(self):
        sim, _, network = build(3, 3)
        with pytest.raises(ValueError):
            network.fail_link(0, 8)
