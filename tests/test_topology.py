"""Unit tests for topologies and baseline routing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.interconnect.topology import (
    FatHypercube,
    Mesh2D,
    make_topology,
)


class TestMesh2D:
    def test_node_count(self):
        mesh = Mesh2D(4, 2)
        assert mesh.num_nodes == 8

    def test_coords_roundtrip(self):
        mesh = Mesh2D(4, 3)
        for rid in range(mesh.num_nodes):
            x, y = mesh.coords(rid)
            assert mesh.router_at(x, y) == rid

    def test_corner_has_two_neighbors(self):
        mesh = Mesh2D(3, 3)
        assert len(mesh.neighbors(0)) == 2

    def test_center_has_four_neighbors(self):
        mesh = Mesh2D(3, 3)
        assert len(mesh.neighbors(4)) == 4

    def test_neighbors_are_symmetric(self):
        mesh = Mesh2D(4, 4)
        for rid in range(mesh.num_nodes):
            for port, (nbr, nbr_port) in mesh.neighbors(rid).items():
                back = mesh.neighbors(nbr)[nbr_port]
                assert back == (rid, port)

    def test_dimension_ordered_route_reaches_destination(self):
        mesh = Mesh2D(4, 4)
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                if src == dst:
                    continue
                current = src
                hops = 0
                while current != dst:
                    port = mesh.routing_port(current, dst)
                    current, _ = mesh.neighbors(current)[port]
                    hops += 1
                    assert hops <= mesh.diameter()

    def test_route_is_minimal(self):
        mesh = Mesh2D(5, 3)
        src, dst = 0, mesh.num_nodes - 1
        current, hops = src, 0
        while current != dst:
            port = mesh.routing_port(current, dst)
            current, _ = mesh.neighbors(current)[port]
            hops += 1
        sx, sy = mesh.coords(src)
        dx, dy = mesh.coords(dst)
        assert hops == abs(sx - dx) + abs(sy - dy)

    def test_routing_to_self_rejected(self):
        with pytest.raises(ConfigurationError):
            Mesh2D(2, 2).routing_port(1, 1)

    def test_for_nodes_prefers_square(self):
        mesh = Mesh2D.for_nodes(16)
        assert {mesh.width, mesh.height} == {4}

    def test_for_nodes_rectangular(self):
        mesh = Mesh2D.for_nodes(8)
        assert sorted((mesh.width, mesh.height)) == [2, 4]

    def test_diameter(self):
        assert Mesh2D(4, 4).diameter() == 6
        assert Mesh2D(16, 8).diameter() == 22

    def test_links_counted_once(self):
        mesh = Mesh2D(3, 3)
        # 2D mesh links: h*(w-1) + w*(h-1)
        assert len(mesh.links()) == 3 * 2 + 3 * 2

    def test_baseline_table_complete(self):
        mesh = Mesh2D(3, 2)
        table = mesh.baseline_table(0)
        assert set(table) == set(range(1, 6))


class TestFatHypercube:
    def test_node_count(self):
        assert FatHypercube(3).num_nodes == 8

    def test_neighbors_flip_one_bit(self):
        cube = FatHypercube(4)
        for rid in range(cube.num_nodes):
            for bit, (nbr, nbr_port) in cube.neighbors(rid).items():
                assert nbr == rid ^ (1 << bit)
                assert nbr_port == bit

    def test_ecube_route_reaches_destination(self):
        cube = FatHypercube(4)
        for src in range(cube.num_nodes):
            for dst in range(cube.num_nodes):
                if src == dst:
                    continue
                current, hops = src, 0
                while current != dst:
                    port = cube.routing_port(current, dst)
                    current ^= (1 << port)
                    hops += 1
                assert hops == bin(src ^ dst).count("1")

    def test_diameter_is_dimension(self):
        assert FatHypercube(5).diameter() == 5

    def test_for_nodes_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            FatHypercube.for_nodes(12)

    def test_for_nodes_exact(self):
        assert FatHypercube.for_nodes(64).dimension == 6

    def test_links_counted_once(self):
        cube = FatHypercube(3)
        assert len(cube.links()) == 8 * 3 // 2


class TestMakeTopology:
    def test_mesh(self):
        assert make_topology("mesh", 12).num_nodes == 12

    def test_hypercube(self):
        assert make_topology("hypercube", 16).num_nodes == 16

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_topology("torus", 8)

    def test_single_node_mesh(self):
        mesh = make_topology("mesh", 1)
        assert mesh.num_nodes == 1
        assert mesh.neighbors(0) == {}
