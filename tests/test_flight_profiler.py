"""The always-on flight recorder and the sim-time profiler (DESIGN.md §15).

Two contracts anchor this file:

* **bit-identity** — a run with a FlightRecorder or SimProfiler attached
  executes the same events to the same virtual time and recovery outcome
  as a bare run (the §9 zero-perturbation rule extended to the new
  observers);
* **tail-window semantics** — the ring keeps the *last* N events with
  global eids, its dump survives a JSON round trip, and forensics can
  audit the window with the truncation caveat intact.
"""

import json
import random

import pytest

from repro.campaign.pool import _execute_schedule_run
from repro.campaign.schedule import make_schedule
from repro.core.config import MachineConfig
from repro.core.experiment import run_schedule_experiment
from repro.core.machine import FlashMachine
from repro.telemetry import Telemetry
from repro.telemetry.flight import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    analyze_dump,
    events_from_dump,
)
from repro.telemetry.forensics import analyze, forensic_summary
from repro.telemetry.profiler import SimProfiler, profile_table
from repro.telemetry.scalability import run_scalability_point


def small_schedule(num_nodes=4, seed=17):
    rng = random.Random(seed)
    return make_schedule("random-multi", rng, num_nodes=num_nodes)


# ------------------------------------------------------------------ ring


class TestFlightRing:
    def test_keeps_last_n_with_global_eids(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(7):
            recorder.emit("pkt", "send", node=index)
        assert len(recorder) == 3
        assert recorder.total_emitted == 7
        assert recorder.dropped_events == 4
        events = recorder.events
        # Oldest-first window of the newest events, eids are stream indices.
        assert [event.eid for event in events] == [4, 5, 6]
        assert [event.node for event in events] == [4, 5, 6]

    def test_fills_before_evicting(self):
        recorder = FlightRecorder(capacity=5)
        for _ in range(4):
            recorder.emit("a", "b")
        assert recorder.dropped_events == 0
        assert [event.eid for event in recorder.events] == [0, 1, 2, 3]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_disabled_ring_records_nothing(self):
        recorder = FlightRecorder(capacity=4)
        recorder.enabled = False
        assert recorder.emit("a", "b") is None
        assert len(recorder) == 0

    def test_clear_resets_ring_and_counters(self):
        recorder = FlightRecorder(capacity=2)
        for _ in range(5):
            recorder.emit("a", "b")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_emitted == 0
        assert recorder.dropped_events == 0
        recorder.emit("a", "b")
        assert [event.eid for event in recorder.events] == [0]

    def test_cause_edges_survive_eviction_as_dangling(self):
        recorder = FlightRecorder(capacity=2)
        root = recorder.emit("fault", "inject")
        child = recorder.emit("pkt", "send", cause=root)
        recorder.emit("pkt", "recv", cause=child)   # evicts the root
        events = recorder.events
        _children, dangling = __import__(
            "repro.telemetry.forensics", fromlist=["build_dag"]
        ).build_dag(events)
        assert dangling == 1   # the evicted root's edge dangles, no crash

    def test_recorder_api_compatibility(self):
        """Consumers written against TraceRecorder (timelines, chrome
        export, forensics) read .events/.events_of/.count unchanged."""
        recorder = FlightRecorder(capacity=8)
        recorder.emit("pkt", "send")
        recorder.emit("pkt", "recv")
        recorder.emit("detect", "timeout")
        assert recorder.count("pkt") == 2
        assert [e.key for e in recorder.events_of("detect")] == [
            "detect.timeout"]


class TestFlightDump:
    def test_dump_round_trips_through_json(self):
        recorder = FlightRecorder(capacity=4)
        a = recorder.emit("fault", "inject", node=1, fault="node_failure")
        recorder.emit("pkt", "send", node=1, cause=(a,))
        dump = json.loads(json.dumps(recorder.dump(), sort_keys=True))
        events = events_from_dump(dump)
        assert [event.key for event in events] == ["fault.inject",
                                                   "pkt.send"]
        assert events[1].cause == (a,)          # list -> tuple restored
        assert dump["evicted"] == 0

    def test_dump_limit_counts_clipped_as_evicted(self):
        recorder = FlightRecorder(capacity=10)
        for index in range(8):
            recorder.emit("pkt", "send", node=index)
        dump = recorder.dump(limit=3)
        assert len(dump["events"]) == 3
        assert dump["evicted"] == 5             # clipped, ring never evicted
        assert [entry["eid"] for entry in dump["events"]] == [5, 6, 7]

    def test_analyze_dump_carries_truncation_caveat(self):
        recorder = FlightRecorder(capacity=2)
        for _ in range(5):
            recorder.emit("pkt", "send")
        report = analyze_dump(recorder.dump())
        assert report.truncated
        assert report.dropped_events == 3


# ----------------------------------------------------------- bit-identity


class TestObserverBitIdentity:
    def test_flight_attached_run_is_identical(self):
        plain = run_scalability_point(4, seed=3)
        flight = run_scalability_point(
            4, seed=3, telemetry=Telemetry(trace=False, flight=2_000))
        assert plain["recovery"] == flight["recovery"]
        assert plain["sim"]["sim_ns"] == flight["sim"]["sim_ns"]
        assert (plain["sim"]["events_executed"]
                == flight["sim"]["events_executed"])

    def test_profiler_attached_run_is_identical(self):
        schedule = small_schedule()
        outcomes = []
        for attach in (False, True):
            config = MachineConfig(num_nodes=schedule.num_nodes,
                                   mem_per_node=64 << 10, l2_size=8 << 10,
                                   seed=11)
            machine = FlashMachine(config)
            if attach:
                machine.sim.profiler = SimProfiler()
            result = run_schedule_experiment(schedule, seed=11,
                                             machine=machine,
                                             collect_metrics=True)
            outcomes.append((result.passed, tuple(result.problems),
                             result.restarts, result.episodes,
                             machine.sim.now,
                             machine.sim.events_executed))
        assert outcomes[0] == outcomes[1]
        # And the profiler actually saw the dispatches it timed.

    def test_flight_ring_matches_full_trace_tail(self):
        """The ring's window is exactly the last N events of a full trace
        of the same run — same keys, same eids."""
        schedule = small_schedule()

        def run_with(telemetry):
            config = MachineConfig(num_nodes=schedule.num_nodes,
                                   mem_per_node=64 << 10, l2_size=8 << 10,
                                   seed=5)
            machine = FlashMachine(config, telemetry=telemetry)
            run_schedule_experiment(schedule, seed=5, machine=machine,
                                    telemetry=telemetry)
            return telemetry.recorder

        full = run_with(Telemetry())
        ring = run_with(Telemetry(trace=False, flight=500))
        tail = full.events[-len(ring.events):]
        assert [e.eid for e in ring.events] == [e.eid for e in tail]
        assert [e.key for e in ring.events] == [e.key for e in tail]
        assert ring.total_emitted == len(full.events)


# --------------------------------------------------------------- profiler


class TestSimProfiler:
    def test_attribution_by_process_family(self):
        from repro.sim import Simulator
        sim = Simulator(seed=0)
        sim.profiler = SimProfiler()

        def worker(steps):
            for _ in range(steps):
                yield 10.0

        for index in range(3):
            sim.spawn(worker(5), name="worker%d" % index)
        sim.run()
        profiler = sim.profiler
        assert profiler.dispatches == sim.events_executed
        top = dict((label, count) for label, count, _ in profiler.top())
        # Digits normalize so the three instances aggregate as one family.
        assert top["workerN;worker"] == 3 * (5 + 1)   # steps + StopIteration

    def test_folded_and_table_render(self):
        profiler = SimProfiler()
        profiler._stats["workerN"] = [10, 0.5]
        profiler.dispatches, profiler.wall_s = 10, 0.5
        folded = profiler.folded()
        assert folded == "sim;workerN 500000\n"
        table = profile_table(profiler)
        assert "workerN" in table and "100.0%" in table

    def test_merge_accumulates(self):
        left, right = SimProfiler(), SimProfiler()
        left._stats["a"] = [1, 0.25]
        right._stats["a"] = [2, 0.25]
        right._stats["b"] = [4, 1.0]
        left.merge(right)
        assert left._stats["a"] == [3, 0.5]
        assert left._stats["b"] == [4, 1.0]

    def test_snapshot_is_json_friendly(self):
        from repro.sim import Simulator
        sim = Simulator(seed=0)
        sim.profiler = SimProfiler()

        def once():
            yield 1.0

        sim.spawn(once(), name="p0")
        sim.run()
        snap = json.loads(json.dumps(sim.profiler.snapshot()))
        assert snap["dispatches"] == sim.events_executed
        assert "pN;once" in snap["handlers"]


# -------------------------------------------------- flight in the workers


class TestWorkerFlightMode:
    def test_trace_mode_payload_has_no_flight_key(self):
        payload = _execute_schedule_run(
            small_schedule().to_dict(), seed=4, run_limit=60_000_000_000,
            mem_per_node=64 << 10, l2_size=8 << 10)
        assert "flight" not in payload

    def test_flight_mode_matches_trace_mode_verdict(self):
        schedule = small_schedule()
        kwargs = dict(seed=4, run_limit=60_000_000_000,
                      mem_per_node=64 << 10, l2_size=8 << 10)
        trace = _execute_schedule_run(schedule.to_dict(), **kwargs)
        flight = _execute_schedule_run(schedule.to_dict(),
                                       telemetry_mode="flight", **kwargs)
        for key in ("status", "problems", "restarts", "episodes"):
            assert trace[key] == flight[key]
        assert trace["metrics"] == flight["metrics"]

    def test_hung_run_dumps_tail_window(self):
        """A run that blows its event budget aborts with the flight dump
        attached — the always-on crash-evidence contract."""
        payload = _execute_schedule_run(
            small_schedule().to_dict(), seed=4, run_limit=50_000,
            mem_per_node=64 << 10, l2_size=8 << 10,
            telemetry_mode="flight")
        assert payload["status"] in ("hung", "crashed")
        dump = payload["flight"]
        assert dump["events"], "tail window must not be empty"
        assert dump["capacity"] == 20_000
        # The dump is line-JSON-safe and forensics-readable.
        json.dumps(dump)
        analyze_dump(dump)

    def test_hung_trace_mode_has_no_dump(self):
        payload = _execute_schedule_run(
            small_schedule().to_dict(), seed=4, run_limit=50_000,
            mem_per_node=64 << 10, l2_size=8 << 10)
        assert payload["status"] in ("hung", "crashed")
        assert "flight" not in payload


class TestFlightForensics:
    def test_forensics_summarize_flight_window(self):
        """Acceptance: with tracing off and the ring on, a failing run's
        window still yields a forensic audit.  A firewall-disabled machine
        guarantees an escape to audit."""
        from repro.core.experiment import run_validation_experiment
        from repro.faults.models import FaultSpec, FaultType

        telemetry = Telemetry(trace=False, flight=DEFAULT_CAPACITY)
        config = MachineConfig(num_nodes=4, mem_per_node=64 << 10,
                               l2_size=8 << 10, seed=2,
                               firewall_enabled=False)
        run_validation_experiment(
            FaultSpec(FaultType.NODE_FAILURE, 3), config=config, seed=2,
            telemetry=telemetry)
        recorder = telemetry.recorder
        assert isinstance(recorder, FlightRecorder)
        summary = forensic_summary(recorder)
        assert summary["faults"], "the injected fault must be in-window"
        assert summary["analyzed_events"] == len(recorder.events)
        # The same audit works on the dumped window after a JSON trip.
        dump = json.loads(json.dumps(recorder.dump(), sort_keys=True))
        report = analyze(events_from_dump(dump),
                         dropped_events=dump["evicted"])
        assert [f.root for f in report.faults] == [
            f["root"] for f in summary["faults"]]
