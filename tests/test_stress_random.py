"""Randomized soak tests: faults injected into machines under live load.

These are the closest thing to the paper's 1000-run campaign that fits in
unit-test time: random workloads, random faults, full oracle verdicts.
"""

import random

import pytest

from repro import FlashMachine, MachineConfig
from repro.common.errors import BusError
from repro.core.experiment import run_validation_experiment
from repro.faults.models import FaultSpec, FaultType
from repro.interconnect.topology import make_topology
from repro.node.processor import Compute, Load, Store


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_random_fault_validation(seed):
    """One §5.2 validation run with a fully random fault."""
    rng = random.Random(seed * 7919)
    config = MachineConfig(num_nodes=4, mem_per_node=1 << 16,
                           l2_size=1 << 13, seed=seed)
    topology = make_topology(config.topology, config.num_nodes)
    fault = FaultSpec.random(rng, topology)
    result = run_validation_experiment(fault, config=config, seed=seed)
    assert result.passed, (fault, result.problems[:5])


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_fault_under_live_traffic(seed):
    """Inject mid-workload: the system must recover and the survivors'
    subsequent accesses must never see stale data."""
    config = MachineConfig(num_nodes=4, mem_per_node=1 << 16,
                           l2_size=1 << 13, seed=seed)
    machine = FlashMachine(config).start()
    rng = random.Random(seed)
    lines = machine.all_usable_lines()
    observations = []

    def worker(node_id):
        local_rng = random.Random((seed << 4) + node_id)
        for index in range(120):
            line = local_rng.choice(lines)
            try:
                if local_rng.random() < 0.4:
                    yield Store(line, value=(node_id, index))
                else:
                    value = yield Load(line)
                    observations.append((line, value))
            except BusError:
                pass   # contained: the access was refused, not corrupted
            yield Compute(500)

    procs = [machine.nodes[n].processor.run_program(worker(n),
                                                    name="w%d" % n)
             for n in range(4)]
    victim = rng.randrange(1, 4)
    machine.sim.schedule(rng.uniform(50_000, 300_000),
                         machine.injector.inject,
                         FaultSpec.node_failure(victim))
    machine.run_until(
        lambda: all(not p.alive for p in procs
                    if p.name != "w%d" % victim),
        limit=120_000_000_000)

    # Survivors' reads after recovery must reflect committed values: any
    # read that *completed* returned either the committed value at some
    # point of the run (weak check: the value is well formed).
    for line, value in observations:
        assert value is not None

    # The machine must have recovered exactly once (one episode) or not at
    # all if the victim was never referenced.
    manager = machine.recovery_manager
    assert not manager.in_progress


def test_repeated_false_alarms_are_harmless():
    """Back-to-back false alarms: each is a brief interruption, no data is
    ever lost (§4.1)."""
    config = MachineConfig(num_nodes=4, mem_per_node=1 << 16,
                           l2_size=1 << 13, seed=99)
    machine = FlashMachine(config).start()
    line = machine.line_homed_at(2)

    def writer():
        yield Store(line, value="before-alarms")

    machine.run_programs([(0, writer())])
    machine.quiesce()
    for round_no in range(3):
        machine.injector.inject(FaultSpec.false_alarm(round_no % 4))
        report = machine.run_until_recovered(limit=50_000_000_000)
        assert report.available_nodes == {0, 1, 2, 3}
        assert report.marked_incoherent == 0
    values = []

    def reader():
        values.append((yield Load(line)))

    machine.nodes[3].processor.run_program(reader())
    machine.run(until=machine.sim.now + 5_000_000)
    assert values == ["before-alarms"]


def test_sequential_faults_two_episodes():
    """A second fault after recovery completes starts a fresh episode and
    is contained the same way."""
    config = MachineConfig(num_nodes=9, mem_per_node=1 << 16,
                           l2_size=1 << 13, seed=17)
    machine = FlashMachine(config).start()

    def kill_and_recover(victim, prober):
        machine.injector.inject(FaultSpec.node_failure(victim))

        def probe():
            try:
                yield Load(machine.line_homed_at(victim, 17))
            except BusError:
                pass

        proc = machine.nodes[prober].processor.run_program(probe())
        report = machine.run_until_recovered(limit=60_000_000_000)
        machine.run_until(lambda: not proc.alive, limit=70_000_000_000)
        return report

    first = kill_and_recover(8, 0)
    assert first.available_nodes == set(range(8))
    second = kill_and_recover(4, 0)
    assert second.available_nodes == set(range(8)) - {4}
    assert len(machine.recovery_manager.reports) == 2


def test_all_fault_types_on_hypercube():
    rng = random.Random(4242)
    for fault_type in FaultType:
        config = MachineConfig(num_nodes=8, topology="hypercube",
                               mem_per_node=1 << 16, l2_size=1 << 13,
                               seed=rng.randrange(1 << 20))
        topology = make_topology("hypercube", 8)
        fault = FaultSpec.random(rng, topology, fault_type)
        result = run_validation_experiment(fault, config=config)
        assert result.passed, (fault, result.problems[:5])
