"""Shared helpers for the test suite."""

from repro.common.params import TimingParams
from repro.interconnect.network import Network
from repro.interconnect.topology import make_topology
from repro.node.memory import AddressMap
from repro.node.node import Node
from repro.sim import Simulator


class RawMachine:
    """A bare machine (no recovery manager, no OS) for protocol-level tests."""

    def __init__(self, num_nodes=4, mem_per_node=1 << 20,
                 l2_lines=256, topology="mesh", seed=7, hooks=None,
                 firewall_enabled=True, **param_overrides):
        self.params = TimingParams(**param_overrides)
        self.sim = Simulator(seed=seed)
        self.topology = make_topology(topology, num_nodes)
        self.network = Network(self.sim, self.params, self.topology)
        self.address_map = AddressMap(
            num_nodes, mem_per_node,
            line_size=self.params.line_size,
            page_size=self.params.page_size)
        self.nodes = [
            Node(self.sim, self.params, nid, self.address_map, self.network,
                 l2_capacity_lines=l2_lines, hooks=hooks,
                 firewall_enabled=firewall_enabled)
            for nid in range(num_nodes)
        ]
        self.network.start()
        for node in self.nodes:
            node.start()

    def node(self, node_id):
        return self.nodes[node_id]

    def run(self, until=None):
        return self.sim.run(until=until)

    def run_programs(self, programs, limit=500_000_000):
        """Run one program per (node, program) pair to completion."""
        procs = []
        for node_id, program in programs:
            procs.append(self.nodes[node_id].processor.run_program(program))
        self.sim.run_until(
            lambda: all(not p.alive for p in procs), limit=limit)
        return procs
