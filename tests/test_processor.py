"""Processor model tests: op execution, bus errors, recovery parking,
speculation."""

from tests.helpers import RawMachine
from repro.common.errors import BusError
from repro.node.processor import (
    Compute,
    FlushLine,
    Load,
    Store,
    UncachedLoad,
    UncachedStore,
)


def remote_line(machine, home, index=0):
    start, _ = machine.address_map.usable_range(home)
    return start + index * machine.params.line_size


class TestExecution:
    def test_compute_advances_time_only(self):
        machine = RawMachine()
        t_seen = []

        def program():
            yield Compute(12_345)
            t_seen.append(machine.sim.now)

        machine.run_programs([(0, program())])
        assert t_seen == [12_345.0]

    def test_program_result_returned(self):
        machine = RawMachine()

        def program():
            yield Compute(1)
            return "final-result"

        proc = machine.node(0).processor.run_program(program())
        machine.run(until=10_000)
        assert proc.result == "final-result"
        assert machine.node(0).processor.program_result == "final-result"

    def test_stats_count_op_classes(self):
        machine = RawMachine()
        line = remote_line(machine, 1)

        def program():
            yield Load(line)
            yield Store(line, value="x")
            yield UncachedStore(
                machine.address_map.io_region_start(0), 1)

        machine.run_programs([(0, program())])
        stats = machine.node(0).processor.stats
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.uncached_ops == 1

    def test_uncaught_bus_error_halts_program(self):
        machine = RawMachine()
        after = []

        def program():
            yield Store(0x100, value="to-vectors")   # range check rejects
            after.append("unreachable")

        proc = machine.node(0).processor.run_program(program())
        machine.run(until=1_000_000)
        assert not proc.alive
        assert after == []
        assert isinstance(machine.node(0).processor.program_error, BusError)

    def test_caught_bus_error_continues(self):
        machine = RawMachine()
        seen = []

        def program():
            try:
                yield Store(0x100, value="bad")
            except BusError:
                seen.append("caught")
            value = yield Load(remote_line(machine, 1))
            seen.append(value)

        machine.run_programs([(0, program())])
        assert seen[0] == "caught"
        assert len(seen) == 2

    def test_store_default_values_are_unique(self):
        a, b = Store(0x100), Store(0x100)
        assert a.value != b.value

    def test_flush_line_op(self):
        machine = RawMachine()
        line = remote_line(machine, 1)

        def program():
            yield Store(line, value="d")
            yield FlushLine(line)

        machine.run_programs([(0, program())])
        machine.run(until=machine.sim.now + 1_000_000)
        assert not machine.node(0).cache.contains(line)

    def test_run_program_rejects_concurrent_program(self):
        machine = RawMachine()

        def forever():
            while True:
                yield Compute(1_000)

        machine.node(0).processor.run_program(forever())
        machine.run(until=5_000)
        try:
            machine.node(0).processor.run_program(forever())
        except RuntimeError:
            pass
        else:
            raise AssertionError("expected RuntimeError")


class TestSpeculation:
    def test_speculation_disabled_by_default(self):
        machine = RawMachine()
        line = remote_line(machine, 1)

        def program():
            for _ in range(20):
                yield Load(line)

        machine.run_programs([(0, program())])
        assert machine.node(0).processor.stats.speculative_references == 0

    def test_speculation_issues_extra_references(self):
        machine = RawMachine()
        processor = machine.node(0).processor
        processor.speculation_rate = 1.0
        line = remote_line(machine, 1)

        def program():
            for index in range(5):
                yield Load(remote_line(machine, 1, index))

        machine.run_programs([(0, program())])
        assert processor.stats.speculative_references == 5


class TestUncachedExactlyOnce:
    def test_uncached_write_side_effect_once(self):
        machine = RawMachine()
        io_address = machine.address_map.io_region_start(0)

        def program():
            yield UncachedStore(io_address, 7)
            yield UncachedStore(io_address, 7)

        machine.run_programs([(0, program())])
        device = machine.node(0).io_device
        assert device.write_counts[0] == 2     # two distinct ops
        assert device.registers[0] == 14       # accumulated side effect

    def test_uncached_read_returns_register_value(self):
        machine = RawMachine()
        io_address = machine.address_map.io_region_start(0)
        machine.node(0).io_device.registers[0] = 99
        values = []

        def program():
            values.append((yield UncachedLoad(io_address)))

        machine.run_programs([(0, program())])
        assert values == [99]
