"""Unit + property tests for the L2 cache model."""

from hypothesis import given, settings, strategies as st

from repro.common.types import CacheState
from repro.node.cache import Cache


def make_cache(capacity=4):
    return Cache(node_id=0, capacity_lines=capacity)


class TestBasics:
    def test_empty_lookup_misses(self):
        cache = make_cache()
        assert cache.lookup(0x100) is None
        assert cache.misses == 1

    def test_fill_then_hit(self):
        cache = make_cache()
        cache.fill(0x100, "v", CacheState.SHARED)
        line = cache.lookup(0x100)
        assert line is not None and line.value == "v"
        assert cache.hits == 1

    def test_write_lookup_on_shared_misses(self):
        cache = make_cache()
        cache.fill(0x100, "v", CacheState.SHARED)
        assert cache.lookup(0x100, for_write=True) is None

    def test_write_lookup_on_exclusive_hits(self):
        cache = make_cache()
        cache.fill(0x100, "v", CacheState.EXCLUSIVE)
        assert cache.lookup(0x100, for_write=True) is not None

    def test_write_updates_value(self):
        cache = make_cache()
        cache.fill(0x100, "old", CacheState.EXCLUSIVE)
        cache.write(0x100, "new")
        assert cache.value_of(0x100) == "new"

    def test_write_to_shared_raises(self):
        cache = make_cache()
        cache.fill(0x100, "v", CacheState.SHARED)
        try:
            cache.write(0x100, "new")
        except RuntimeError:
            pass
        else:
            raise AssertionError("expected RuntimeError")

    def test_state_of_absent_line(self):
        assert make_cache().state_of(0x500) == CacheState.INVALID


class TestEviction:
    def test_lru_victim_selected(self):
        cache = make_cache(capacity=2)
        cache.fill(0x100, "a", CacheState.SHARED)
        cache.fill(0x200, "b", CacheState.SHARED)
        cache.lookup(0x100)            # 0x200 becomes LRU
        victim = cache.fill(0x300, "c", CacheState.SHARED)
        assert victim[0] == 0x200

    def test_refill_existing_line_does_not_evict(self):
        cache = make_cache(capacity=2)
        cache.fill(0x100, "a", CacheState.SHARED)
        cache.fill(0x200, "b", CacheState.SHARED)
        assert cache.fill(0x100, "a2", CacheState.EXCLUSIVE) is None

    def test_victim_carries_state_and_value(self):
        cache = make_cache(capacity=1)
        cache.fill(0x100, "dirty", CacheState.EXCLUSIVE)
        victim_addr, victim_line = cache.fill(0x200, "x", CacheState.SHARED)
        assert victim_addr == 0x100
        assert victim_line.state == CacheState.EXCLUSIVE
        assert victim_line.value == "dirty"


class TestInvalidationAndFlush:
    def test_invalidate_dirty_returns_value(self):
        cache = make_cache()
        cache.fill(0x100, "dirty", CacheState.EXCLUSIVE)
        assert cache.invalidate(0x100) == "dirty"
        assert not cache.contains(0x100)

    def test_invalidate_clean_returns_none(self):
        cache = make_cache()
        cache.fill(0x100, "clean", CacheState.SHARED)
        assert cache.invalidate(0x100) is None

    def test_invalidate_absent_returns_none(self):
        assert make_cache().invalidate(0x900) is None

    def test_downgrade_returns_value_and_changes_state(self):
        cache = make_cache()
        cache.fill(0x100, "v", CacheState.EXCLUSIVE)
        assert cache.downgrade(0x100) == "v"
        assert cache.state_of(0x100) == CacheState.SHARED

    def test_flush_all_returns_only_dirty(self):
        cache = make_cache()
        cache.fill(0x100, "d1", CacheState.EXCLUSIVE)
        cache.fill(0x200, "c", CacheState.SHARED)
        cache.fill(0x300, "d2", CacheState.EXCLUSIVE)
        dirty = dict(cache.flush_all())
        assert dirty == {0x100: "d1", 0x300: "d2"}
        assert len(cache) == 0

    def test_drop_all_loses_everything_silently(self):
        cache = make_cache()
        cache.fill(0x100, "d", CacheState.EXCLUSIVE)
        cache.drop_all()
        assert len(cache) == 0


# --- property tests -----------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 19),
                          st.sampled_from(["fill_s", "fill_e", "inval",
                                           "lookup"])),
                max_size=60))
@settings(max_examples=80, deadline=None)
def test_property_capacity_never_exceeded(operations):
    cache = make_cache(capacity=4)
    for line_no, action in operations:
        address = line_no * 0x80
        if action == "fill_s":
            cache.fill(address, "v", CacheState.SHARED)
        elif action == "fill_e":
            cache.fill(address, "v", CacheState.EXCLUSIVE)
        elif action == "inval":
            cache.invalidate(address)
        else:
            cache.lookup(address)
        assert len(cache) <= 4


@given(st.lists(st.integers(0, 9), min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_property_flush_returns_each_dirty_line_once(fill_order):
    cache = make_cache(capacity=100)
    expected = {}
    for line_no in fill_order:
        address = line_no * 0x80
        cache.fill(address, ("v", line_no), CacheState.EXCLUSIVE)
        expected[address] = ("v", line_no)
    dirty = cache.flush_all()
    assert sorted(dirty) == sorted(expected.items())
