"""Determinism guarantees of the campaign engine.

The campaign's whole resume/replay/shrink story rests on two properties:
per-run seeds are a pure function of (campaign seed, run index), and a
(schedule, seed) pair replays the exact same simulation — same verdict,
same recovery structure, same virtual time, event for event.
"""

import random

import pytest

from repro.campaign.runner import CampaignRunner, derive_run_seed
from repro.campaign.schedule import FaultSchedule, TimedFault, make_schedule
from repro.core.config import MachineConfig
from repro.core.experiment import run_schedule_experiment
from repro.faults.models import FaultSpec, FaultType
from repro.interconnect.topology import make_topology


class TestDeriveRunSeed:
    def test_golden_values_are_machine_independent(self):
        """BLAKE2b-derived, so these values must never change — recorded
        campaigns reference runs by them."""
        assert derive_run_seed(0, 0) == 7689419447139100721
        assert derive_run_seed(0, 1) == 8724540124617128742
        assert derive_run_seed(7, 3) == 6148384659390418248

    def test_distinct_runs_get_distinct_seeds(self):
        seeds = {derive_run_seed(0, index) for index in range(100)}
        assert len(seeds) == 100

    def test_fits_in_63_bits(self):
        for index in range(50):
            assert 0 <= derive_run_seed(3, index) < 2 ** 63


class TestFaultSpecRandom:
    def test_same_rng_seed_same_draws(self):
        topology = make_topology("mesh", 8)
        draws_a = [FaultSpec.random(random.Random(11), topology)
                   for _ in range(10)]
        draws_b = [FaultSpec.random(random.Random(11), topology)
                   for _ in range(10)]
        # Same first draw repeated (fresh rng each time) ...
        assert all(d.to_dict() == draws_a[0].to_dict() for d in draws_b)
        # ... and one continuous rng replays a whole sequence.
        rng_a, rng_b = random.Random(13), random.Random(13)
        seq_a = [FaultSpec.random(rng_a, topology) for _ in range(10)]
        seq_b = [FaultSpec.random(rng_b, topology) for _ in range(10)]
        assert [s.to_dict() for s in seq_a] == [s.to_dict() for s in seq_b]

    def test_exclude_is_honored_for_nodes(self):
        topology = make_topology("mesh", 4)
        rng = random.Random(0)
        exclude = {0, 1, 2}
        for _ in range(20):
            spec = FaultSpec.random(rng, topology,
                                    fault_type=FaultType.NODE_FAILURE,
                                    exclude=exclude)
            assert spec.target == 3

    def test_exclude_is_honored_for_links(self):
        topology = make_topology("mesh", 4)
        rng = random.Random(0)
        exclude = {frozenset(pair) for pair in [(0, 1), (0, 2), (1, 3)]}
        for _ in range(20):
            spec = FaultSpec.random(rng, topology,
                                    fault_type=FaultType.LINK_FAILURE,
                                    exclude=exclude)
            assert frozenset(spec.target) not in exclude

    def test_everything_excluded_raises(self):
        topology = make_topology("mesh", 4)
        rng = random.Random(0)
        with pytest.raises(ValueError):
            FaultSpec.random(rng, topology,
                             fault_type=FaultType.NODE_FAILURE,
                             exclude={0, 1, 2, 3})
        with pytest.raises(ValueError):
            FaultSpec.random(
                rng, topology, fault_type=FaultType.LINK_FAILURE,
                exclude={frozenset((a, b))
                         for a, _, b, _ in topology.links()})

    def test_excluded_targets_feed_exclude(self):
        spec = FaultSpec.node_failure(2)
        assert spec.excluded_targets() == {2}
        link = FaultSpec.link_failure(0, 1)
        assert link.excluded_targets() == {frozenset((0, 1))}


class TestPlanStability:
    def test_plan_run_is_pure(self):
        runner = CampaignRunner(campaign_seed=5, num_nodes=8)
        for index in (0, 3, 17):
            seed_a, schedule_a = runner.plan_run(index)
            seed_b, schedule_b = runner.plan_run(index)
            assert seed_a == seed_b == derive_run_seed(5, index)
            assert schedule_a.to_dict() == schedule_b.to_dict()

    def test_two_runners_agree(self):
        plans_a = [CampaignRunner(campaign_seed=9).plan_run(i)
                   for i in range(5)]
        plans_b = [CampaignRunner(campaign_seed=9).plan_run(i)
                   for i in range(5)]
        for (seed_a, sched_a), (seed_b, sched_b) in zip(plans_a, plans_b):
            assert seed_a == seed_b
            assert sched_a.to_dict() == sched_b.to_dict()

    def test_schedule_generator_is_seed_deterministic(self):
        sched_a = make_schedule("random-multi", random.Random(21))
        sched_b = make_schedule("random-multi", random.Random(21))
        assert sched_a.to_dict() == sched_b.to_dict()

    def test_replay_mode_uses_campaign_seed_literally(self):
        fixed = FaultSchedule(
            entries=(TimedFault(FaultSpec.node_failure(1), time=0.0),),
            num_nodes=4)
        runner = CampaignRunner(schedule=fixed, campaign_seed=1234)
        seed, schedule = runner.plan_run(0)
        assert seed == 1234 and schedule is fixed


class TestRunDeterminism:
    def test_same_seed_identical_run_records(self):
        """The full replay property: two executions of one (schedule, seed)
        agree on everything — verdict, episodes, metrics, virtual time."""
        schedule = FaultSchedule(
            entries=(
                TimedFault(FaultSpec.node_failure(3), time=100_000.0),
                TimedFault(FaultSpec.link_failure(0, 1), time=400_000.0),
            ),
            num_nodes=4)
        config = MachineConfig(num_nodes=4, mem_per_node=64 << 10,
                               l2_size=8 << 10, seed=42)

        def run():
            result = run_schedule_experiment(schedule, config=config,
                                             seed=42, collect_metrics=True)
            return {
                "passed": result.passed,
                "problems": result.problems,
                "episodes": result.episodes,
                "restarts": result.restarts,
                "skipped": result.skipped_injections,
                "metrics": result.metrics,
            }

        first, second = run(), run()
        assert first == second
        assert first["metrics"]["sim_ns"] == second["metrics"]["sim_ns"]
        assert (first["metrics"]["sim_events"]
                == second["metrics"]["sim_events"])
