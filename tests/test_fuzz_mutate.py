"""Determinism and validity of the fuzzer's mutation engine.

The replay contract the whole fuzzer rests on: ``(campaign_seed,
lineage)`` names exactly one schedule.  Mutants must additionally honor
the injector seam — canonical entry order, at least one timed entry, and
never a no-op fault (target already failed when the entry fires).
"""

import pytest

from repro.campaign.schedule import FaultSchedule, redundant_entries
from repro.fuzz.corpus import schedule_fingerprint
from repro.fuzz.mutate import (
    MAX_ENTRIES,
    MUTATION_OPS,
    acceptable,
    canonical,
    derive_mutant_seed,
    mutate,
    rebuild_from_lineage,
    rng_for,
    root_schedule,
    split_lineage,
)


def breed(campaign_seed, depth, salt=0):
    """A chain of ``depth`` successful mutations from a generator root."""
    schedule, lineage = root_schedule(campaign_seed, "random-multi", 0)
    donor, donor_lineage = root_schedule(campaign_seed, "flaky-links", 1)
    steps = []
    while len(steps) < depth:
        bred = mutate(campaign_seed, schedule, lineage, salt,
                      donor=donor, donor_lineage=donor_lineage)
        salt += 1
        if bred is None:
            continue
        schedule, lineage, op = bred
        steps.append((schedule, lineage, op))
    return steps


class TestSeedDerivation:
    def test_rng_for_is_deterministic(self):
        assert (rng_for(0, "g:random-multi:0").random()
                == rng_for(0, "g:random-multi:0").random()
                == pytest.approx(0.963833443171792))

    def test_rng_for_separates_seed_and_lineage(self):
        draws = {rng_for(seed, lineage).random()
                 for seed in (0, 1, 2)
                 for lineage in ("g:a:0", "g:a:1", "g:a:0/m0:add")}
        assert len(draws) == 9

    def test_derive_mutant_seed_golden_values(self):
        """BLAKE2b-derived, must never change — recorded corpora and
        printed --replay commands reference machine seeds by them."""
        assert derive_mutant_seed(0, "g:random-multi:0") \
            == 5951196366663144337
        assert derive_mutant_seed(7, "g:flaky-links:2/m5:add") \
            == 2602257421219396936

    def test_derive_mutant_seed_fits_63_bits(self):
        for salt in range(30):
            seed = derive_mutant_seed(3, "g:random-multi:%d" % salt)
            assert 0 <= seed < 2 ** 63


class TestRoots:
    def test_root_schedule_is_deterministic(self):
        sched_a, lin_a = root_schedule(5, "fault-during-recovery", 2)
        sched_b, lin_b = root_schedule(5, "fault-during-recovery", 2)
        assert lin_a == lin_b == "g:fault-during-recovery:2"
        assert sched_a.to_dict() == sched_b.to_dict()

    def test_distinct_salts_vary_the_schedule(self):
        dicts = {str(root_schedule(0, "random-multi", salt)[0].to_dict())
                 for salt in range(8)}
        assert len(dicts) > 1


class TestMutate:
    def test_same_inputs_same_mutant(self):
        parent, lineage = root_schedule(0, "random-multi", 0)
        donor, donor_lineage = root_schedule(0, "flaky-links", 1)
        for salt in range(12):
            bred_a = mutate(0, parent, lineage, salt,
                            donor=donor, donor_lineage=donor_lineage)
            bred_b = mutate(0, parent, lineage, salt,
                            donor=donor, donor_lineage=donor_lineage)
            if bred_a is None:
                assert bred_b is None
                continue
            assert bred_a[1] == bred_b[1]
            assert bred_a[2] == bred_b[2]
            assert bred_a[0].to_dict() == bred_b[0].to_dict()

    def test_every_mutant_honors_the_injector_seam(self):
        """The satellite rule: no schedule the fuzzer runs may contain a
        fault entry that the injector would skip as a no-op."""
        for schedule, _lineage, _op in breed(0, 10):
            assert acceptable(schedule)
            assert not redundant_entries(schedule)
            assert 1 <= len(schedule.entries) <= MAX_ENTRIES
            assert any(entry.phase is None for entry in schedule.entries)

    def test_mutants_survive_schedule_round_trip(self):
        for schedule, _lineage, _op in breed(3, 6):
            data = schedule.to_dict()
            assert FaultSchedule.from_dict(data).to_dict() == data

    def test_all_ops_reachable(self):
        ops = {op for _sched, _lin, op in breed(1, 40)}
        # Not every op fires in any finite sample, but the chooser must
        # spread across most of the table rather than collapse to one.
        assert len(ops) >= 5
        assert ops <= {name for name, _fn in MUTATION_OPS}


class TestLineageRebuild:
    @pytest.mark.parametrize("campaign_seed", [0, 7])
    def test_rediscovers_mutation_chain(self, campaign_seed):
        """Golden property: rebuilding from the lineage string alone
        reproduces every intermediate mutant bit-for-bit."""
        for schedule, lineage, _op in breed(campaign_seed, 4):
            rebuilt = rebuild_from_lineage(campaign_seed, lineage)
            assert rebuilt.to_dict() == schedule.to_dict(), lineage

    def test_rebuilds_roots(self):
        schedule, lineage = root_schedule(0, "false-alarm-storm", 3)
        assert rebuild_from_lineage(0, lineage).to_dict() \
            == schedule.to_dict()

    def test_splice_embeds_donor_lineage(self):
        parent, lineage = root_schedule(0, "random-multi", 0)
        donor, donor_lineage = root_schedule(0, "flaky-links", 1)
        # salt 23 selects splice under campaign seed 0 (golden; if the
        # op table changes this test must be re-anchored).
        bred = mutate(0, parent, lineage, 23,
                      donor=donor, donor_lineage=donor_lineage)
        assert bred is not None and bred[2] == "splice"
        assert bred[1] == "g:random-multi:0/m23:splice(g:flaky-links:1)"
        assert rebuild_from_lineage(0, bred[1]).to_dict() \
            == bred[0].to_dict()

    def test_split_lineage_protects_parenthesized_donors(self):
        lineage = ("g:a:0/m1:splice(g:b:1/m0:add)/m2:move"
                   "/m3:splice(g:c:2/m4:splice(g:d:3))")
        assert split_lineage(lineage) == [
            "g:a:0",
            "m1:splice(g:b:1/m0:add)",
            "m2:move",
            "m3:splice(g:c:2/m4:splice(g:d:3))",
        ]

    @pytest.mark.parametrize("lineage", [
        "nonsense",
        "g:random-multi",
        "g:no-such-generator:0",
        "g:random-multi:0/x3:add",
        "g:random-multi:0/m3:warp",
    ])
    def test_malformed_lineage_raises(self, lineage):
        with pytest.raises((ValueError, KeyError)):
            rebuild_from_lineage(0, lineage)


class TestCanonicalAndFingerprint:
    def test_fingerprint_ignores_name(self):
        schedule, _lineage = root_schedule(0, "random-multi", 0)
        renamed = schedule.replace(name="something-else")
        assert schedule_fingerprint(renamed) \
            == schedule_fingerprint(schedule)

    def test_fingerprint_ignores_entry_permutation(self):
        schedule, _lineage = root_schedule(0, "random-multi", 2)
        if len(schedule.entries) < 2:
            pytest.skip("root drew a single-entry schedule")
        permuted = schedule.replace(
            entries=tuple(reversed(schedule.entries)))
        assert schedule_fingerprint(canonical(permuted)) \
            == schedule_fingerprint(canonical(schedule))

    def test_canonical_orders_timed_before_phase_armed(self):
        for schedule, _lineage, _op in breed(2, 8):
            saw_phase = False
            for entry in schedule.entries:
                if entry.phase is not None:
                    saw_phase = True
                else:
                    assert not saw_phase, "timed entry after phase-armed"

    def test_acceptable_rejects_empty_and_phase_only(self):
        schedule, _lineage = root_schedule(0, "random-multi", 0)
        assert not acceptable(schedule.replace(entries=()))
        timed = [e for e in schedule.entries if e.phase is None]
        if timed:
            import dataclasses
            phase_only = schedule.replace(entries=tuple(
                dataclasses.replace(e, time=0.0, phase="P1")
                for e in schedule.entries))
            assert not acceptable(phase_only)
