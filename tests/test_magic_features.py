"""Tests for MAGIC's fault-containment features and failure detectors."""

from tests.helpers import RawMachine
from repro.common.errors import BusError
from repro.common.types import DirState
from repro.node.processor import Load, Store, UncachedLoad


def remote_line(machine, home_node, index=0):
    start, _ = machine.address_map.usable_range(home_node)
    return start + index * machine.params.line_size


class TestFailureDetectors:
    def test_memory_op_timeout_triggers_recovery(self):
        triggers = []
        machine = RawMachine(memory_op_timeout=50_000.0)
        machine.node(0).magic.recovery_trigger = (
            lambda node, reason: triggers.append((node, reason)))
        machine.network.fail_node_interface(3)

        def program():
            try:
                yield Load(remote_line(machine, 3))
            except BusError:
                pass

        machine.node(0).processor.run_program(program())
        machine.run(until=1_000_000)
        assert ("memory_op_timeout" in [r for _, r in triggers])
        assert machine.node(0).magic.stats.timeouts >= 1

    def test_nak_counter_overflow_triggers_recovery(self):
        triggers = []
        machine = RawMachine(nak_counter_limit=10,
                             nak_retry_interval=100.0)
        machine.node(0).magic.recovery_trigger = (
            lambda node, reason: triggers.append(reason))
        # Lock a line at its home permanently (simulates a lost unlock).
        line = remote_line(machine, 1)
        entry = machine.node(1).directory.entry(line)
        from repro.coherence.messages import MessageKind
        entry.lock(MessageKind.GETX, 2)

        def program():
            yield Load(line)

        machine.node(0).processor.run_program(program())
        machine.run(until=5_000_000)
        assert "nak_overflow" in triggers
        assert machine.node(0).magic.stats.nak_overflows >= 1

    def test_truncated_packet_triggers_recovery(self):
        triggers = []
        machine = RawMachine()
        magic = machine.node(1).magic
        magic.recovery_trigger = (
            lambda node, reason: triggers.append(reason))
        from repro.coherence.messages import MessageKind, make_packet
        packet = make_packet(machine.params, 0, 1, MessageKind.PUT,
                             {"line": remote_line(machine, 1),
                              "value": "x"})
        packet.truncate()
        magic.ni.inbox.put(packet)
        machine.run(until=100_000)
        assert "truncated_packet" in triggers
        assert magic.stats.truncated_received == 1

    def test_firmware_assertion_triggers_recovery(self):
        triggers = []
        machine = RawMachine()
        magic = machine.node(1).magic
        magic.recovery_trigger = (
            lambda node, reason: triggers.append(reason))
        # A GET for a line not homed here violates a protocol invariant.
        from repro.coherence.messages import MessageKind, make_packet
        magic.ni.inbox.put(make_packet(
            machine.params, 0, 1, MessageKind.GET,
            {"line": remote_line(machine, 2), "requester": 0}))
        machine.run(until=100_000)
        assert any(r.startswith("assertion") for r in triggers)

    def test_detection_suppressed_during_recovery(self):
        triggers = []
        machine = RawMachine()
        magic = machine.node(0).magic
        magic.recovery_trigger = (
            lambda node, reason: triggers.append(reason))
        magic.enter_recovery()
        magic.trigger_recovery("anything")
        assert triggers == []


class TestDrainMode:
    def test_drained_requests_generate_no_replies(self):
        machine = RawMachine()
        magic = machine.node(1).magic
        magic.set_drain_mode(True)
        from repro.coherence.messages import MessageKind, make_packet
        line = remote_line(machine, 1)
        magic.ni.inbox.put(make_packet(
            machine.params, 0, 1, MessageKind.GET,
            {"line": line, "requester": 0}))
        machine.run(until=500_000)
        assert magic.stats.drained_messages == 1
        # Directory untouched: no transaction started.
        assert magic.directory.peek(line) is None

    def test_drained_writeback_still_preserves_data(self):
        machine = RawMachine()
        magic = machine.node(1).magic
        line = remote_line(machine, 1)
        entry = magic.directory.entry(line)
        entry.state = DirState.EXCLUSIVE
        entry.owner = 0
        entry.memory_valid = False
        magic.set_drain_mode(True)
        from repro.coherence.messages import MessageKind, make_packet
        magic.ni.inbox.put(make_packet(
            machine.params, 0, 1, MessageKind.PUT,
            {"line": line, "value": "precious"}))
        machine.run(until=500_000)
        assert entry.memory_valid
        assert magic.memory.read_line(line) == "precious"

    def test_drain_updates_delivery_timestamp(self):
        machine = RawMachine()
        magic = machine.node(1).magic
        magic.set_drain_mode(True)
        before = magic.last_normal_delivery
        from repro.coherence.messages import MessageKind, make_packet
        machine.sim.schedule(10_000, magic.ni.inbox.put, make_packet(
            machine.params, 0, 1, MessageKind.GET,
            {"line": remote_line(machine, 1), "requester": 0}))
        machine.run(until=500_000)
        assert magic.last_normal_delivery > before


class TestRecoveryServices:
    def test_flush_caches_home_sends_dirty_lines(self):
        machine = RawMachine()
        line = remote_line(machine, 1)
        results = []

        def program():
            results.append((yield Store(line, value="dirty")))

        machine.node(0).processor.run_program(program())
        machine.run(until=1_000_000)
        capacity, writebacks = machine.node(0).magic.flush_caches_home()
        assert writebacks == 1
        machine.run(until=2_000_000)
        entry = machine.node(1).directory.entry(line)
        assert entry.memory_valid
        assert machine.node(1).memory.read_line(line) == "dirty"

    def test_scan_marks_lost_exclusive_lines(self):
        machine = RawMachine()
        magic = machine.node(1).magic
        line = remote_line(machine, 1)
        entry = magic.directory.entry(line)
        entry.state = DirState.EXCLUSIVE
        entry.owner = 3
        entry.memory_valid = False
        scanned, marked = magic.scan_and_reset_directory()
        assert marked == 1
        assert entry.state == DirState.INCOHERENT
        assert scanned == magic.directory.total_lines

    def test_scan_resets_shared_lines_to_unowned(self):
        machine = RawMachine()
        magic = machine.node(1).magic
        line = remote_line(machine, 1)
        entry = magic.directory.entry(line)
        entry.state = DirState.SHARED
        entry.sharers = {0, 2}
        _, marked = magic.scan_and_reset_directory()
        assert marked == 0
        assert entry.state == DirState.UNOWNED
        assert entry.sharers == set()

    def test_scan_resets_locked_lines_with_valid_memory(self):
        machine = RawMachine()
        magic = machine.node(1).magic
        line = remote_line(machine, 1)
        entry = magic.directory.entry(line)
        from repro.coherence.messages import MessageKind
        entry.lock(MessageKind.GET, 2)   # memory still valid
        _, marked = magic.scan_and_reset_directory()
        assert marked == 0
        assert entry.state == DirState.UNOWNED

    def test_scrub_page_resets_incoherent_lines(self):
        machine = RawMachine()
        magic = machine.node(1).magic
        line = remote_line(machine, 1)
        page = line - (line % machine.params.page_size)
        magic.directory.entry(line).unlock(DirState.INCOHERENT)
        assert magic.scrub_page(page) == 1
        assert magic.directory.entry(line).state == DirState.UNOWNED

    def test_enter_recovery_clears_outstanding(self):
        machine = RawMachine()
        magic = machine.node(0).magic
        machine.network.fail_node_interface(3)

        def program():
            yield Load(remote_line(machine, 3))

        machine.node(0).processor.run_program(program())
        machine.run(until=20_000)
        assert magic.outstanding
        magic.enter_recovery()
        assert not magic.outstanding
        assert magic.in_recovery

    def test_pi_requests_requeued_during_recovery(self):
        machine = RawMachine()
        magic = machine.node(0).magic
        magic.enter_recovery()
        results = []
        event = magic.pi_request(Load(remote_line(machine, 1)))
        event.subscribe(results.append)
        machine.run(until=100_000)
        assert results == [("requeue", None)]


class TestSavedUncachedBuffer:
    def test_uncached_reply_captured_during_drain(self):
        machine = RawMachine()
        for node in machine.nodes:
            node.magic.set_failure_unit({0, 1, 2, 3})
        magic = machine.node(0).magic
        io_address = machine.address_map.io_region_start(1)
        machine.node(1).io_device.registers[0] = 42

        event = magic.pi_request(UncachedLoad(io_address))
        # Let the request go out, then drop into recovery before the
        # reply lands.
        machine.run(until=200)
        magic.enter_recovery()
        magic.set_drain_mode(True)
        machine.run(until=1_000_000)
        op = magic.pending_uc["op"] if magic.pending_uc else None
        assert magic.pending_uc is not None
        assert magic.pending_uc["arrived"]
        consumed, value = magic.consume_saved_uncached(op)
        assert consumed and value == 42
        # Exactly-once: the device serviced a single read.
        assert machine.node(1).io_device.read_counts[0] == 1
