"""Coverage extraction and the coverage map.

Feature extraction must be a pure read over signals the run already
emitted (live counters, the trace recorder, the forensic audit) — these
tests drive one real faulted run through the worker entry point and
check the families the fuzzer keys on actually appear.
"""

from repro.campaign.pool import _execute_schedule_run
from repro.campaign.schedule import FaultSchedule, TimedFault
from repro.faults.models import FaultSpec
from repro.fuzz.coverage import CoverageMap, bucket, feature_hash


class TestBucket:
    def test_power_of_two_resolution(self):
        assert bucket(0) == 0
        assert bucket(1) == 1
        assert bucket(2) == bucket(3) == 2
        assert bucket(5) == 3
        # 40 and 50 episodes are the same coverage; 3 vs 4 are not.
        assert bucket(40) == bucket(50)
        assert bucket(3) != bucket(4)

    def test_negative_clamps_to_zero(self):
        assert bucket(-5) == 0


class TestFeatureHash:
    def test_stable_and_compact(self):
        assert feature_hash("out|PASS") == feature_hash("out|PASS")
        assert len(feature_hash("out|PASS")) == 16
        assert feature_hash("out|PASS") != feature_hash("out|FAIL")


class TestCoverageMap:
    def test_add_returns_only_new_features(self):
        coverage = CoverageMap()
        assert coverage.add(["b", "a"]) == ["a", "b"]
        assert coverage.add(["a", "c"]) == ["c"]
        assert coverage.add(["a", "b", "c"]) == []
        assert len(coverage) == 3
        assert coverage.hits == {"a": 3, "b": 2, "c": 2}

    def test_rarity_and_energy(self):
        coverage = CoverageMap()
        coverage.add(["common", "rare"])
        coverage.add(["common"])
        coverage.add(["common"])
        assert coverage.rarity("rare") == 1.0
        assert coverage.rarity("common") == 1.0 / 3.0
        assert coverage.rarity("never-seen") == 0.0
        # Energy rewards holding the rare feature.
        assert coverage.energy(["rare"]) > coverage.energy(["common"])
        assert coverage.energy([]) == 1.0

    def test_round_trips_through_dict(self):
        coverage = CoverageMap()
        coverage.add(["x", "y"])
        coverage.add(["y"])
        clone = CoverageMap.from_dict(coverage.to_dict())
        assert clone.hits == coverage.hits
        assert clone.add(["x"]) == []


class TestRunCoverage:
    """One real faulted run through the worker entry point."""

    @classmethod
    def setup_class(cls):
        schedule = FaultSchedule(
            entries=(TimedFault(FaultSpec.node_failure(1), time=1_000.0),),
            num_nodes=4, name="coverage-probe")
        cls.payload = _execute_schedule_run(
            schedule.to_dict(), seed=3, run_limit=60_000_000_000,
            mem_per_node=64 << 10, l2_size=8 << 10, coverage=True)

    def test_run_finished(self):
        assert self.payload["status"] in ("pass", "fail")
        cover = self.payload["coverage"]
        assert cover["features"] == sorted(set(cover["features"]))

    def test_families_from_every_signal_source(self):
        families = {feature.split("|", 1)[0]
                    for feature in self.payload["coverage"]["features"]}
        # Live protocol counters, phase edges, outcome + bucketed counts.
        assert "dk" in families
        assert "pe" in families
        assert "out" in families
        assert "ep" in families
        assert "bl" in families   # forensic blast-radius shape

    def test_containment_times_extracted(self):
        cover = self.payload["coverage"]
        assert cover["containment_ns"], "node failure must open an episode"
        assert all(value > 0 for value in cover["containment_ns"])

    def test_no_injector_skips_for_clean_schedule(self):
        assert self.payload["coverage"]["skipped_injections"] == 0

    def test_extraction_is_deterministic(self):
        schedule = FaultSchedule(
            entries=(TimedFault(FaultSpec.node_failure(1), time=1_000.0),),
            num_nodes=4, name="coverage-probe")
        repeat = _execute_schedule_run(
            schedule.to_dict(), seed=3, run_limit=60_000_000_000,
            mem_per_node=64 << 10, l2_size=8 << 10, coverage=True)
        assert repeat["coverage"]["features"] \
            == self.payload["coverage"]["features"]
        assert repeat["coverage"]["containment_ns"] \
            == self.payload["coverage"]["containment_ns"]
