"""Directory protocol handlers.

The engine runs inside MAGIC's dispatch loop; every handler returns its cost
in nanoseconds.  Home-side handlers implement the line state machine
(UNOWNED / SHARED / EXCLUSIVE / LOCKED / INCOHERENT); remote-side handlers
service forwarded interventions against the local cache.

Fault-containment checks implemented at the home (paper §3.2, §3.3):

* requests for INCOHERENT lines are answered with a bus-error reply;
* exclusive fetches pass the firewall page ACL, with the extra check cost
  charged only on inter-cell writes (the <7% overhead of §6.2);
* writes into the MAGIC-protected region are rejected by the range check;
* uncached I/O from outside the home's failure unit is rejected (§3.3).
"""

from repro.common.types import BusErrorKind, CacheState, DirState, page_of
from repro.coherence.messages import MessageKind


class ProtocolEngine:
    """Home and remote coherence handlers for one node's MAGIC."""

    def __init__(self, magic):
        self.magic = magic
        self.params = magic.params

    # ------------------------------------------------------------------ entry

    def handle(self, packet):
        kind = packet.kind
        handler = _HANDLERS.get(kind)
        if handler is None:
            self._note_stray(packet, "no-handler")
            return self.params.short_handler_time
        if self.magic.metrics is not None:
            self._note_cover(packet, kind)
        return handler(self, packet)

    def _note_cover(self, packet, kind):
        """Live directory-state x message-kind coverage counter.

        Only run with a metrics registry attached (campaign/fuzz runs —
        the dispatch loop guards the call, so untraced runs pay one
        attribute load and identity check): the fuzzer's coverage map
        treats each (state, kind) pair the dispatch loop exercised as one
        feature.  ``peek`` is used so the observation never materializes
        directory entries.
        """
        payload = packet.payload
        line = None
        if isinstance(payload, dict):
            # uncached and scrub requests address memory by "address" /
            # "page" rather than a coherence line; any of them names the
            # directory entry whose state the handler will consult
            line = (payload.get("line") or payload.get("address")
                    or payload.get("page"))
        directory = self.magic.directory
        if line is None or not directory.owns(line):
            state = "REMOTE"
        else:
            entry = directory.peek(line)
            state = "UNOWNED" if entry is None else entry.state.name
        metrics = self.magic.metrics
        if metrics is not None:
            metrics.counter("protocol.cover.%s.%s"
                            % (state, kind.name)).inc()

    def _note_stray(self, packet, reason):
        """Record a message the protocol cannot act on.

        Beyond the MagicStats counter, the stray is made visible in
        timelines (trace event) and in live metrics, so an unhandled kind
        shows up in a Chrome trace instead of only in post-run stats —
        the dynamic mirror of the lint's protocol-exhaustiveness rule.
        """
        magic = self.magic
        magic.stats.stray_messages += 1
        tr = magic.trace
        if tr is not None:
            tr.emit("protocol", "stray", node=magic.node_id,
                    cause=magic._cause, kind=str(packet.kind),
                    src=packet.src, reason=reason)
        metrics = magic.metrics
        if metrics is not None:
            metrics.counter("protocol.stray_messages",
                            node=magic.node_id).inc()

    # -------------------------------------------------------------- home: GET

    def _home_get(self, packet):
        magic = self.magic
        payload = packet.payload
        line = payload["line"]
        requester = payload["requester"]
        if not magic.firmware_assert(
                magic.directory.owns(line),
                "GET for line not homed here"):
            return self.params.short_handler_time
        entry = magic.directory.entry(line)

        if entry.state == DirState.INCOHERENT:
            self._reply_bus_error(requester, line,
                                  BusErrorKind.INCOHERENT_LINE)
            return self.params.handler_time

        if entry.state == DirState.LOCKED:
            self._reply_nak(requester, line)
            return self.params.short_handler_time

        if entry.state == DirState.UNOWNED:
            entry.state = DirState.SHARED
            entry.sharers = {requester}
            self._reply_data(requester, line,
                             magic.memory.read_line(line), exclusive=False)
            return self.params.handler_time

        if entry.state == DirState.SHARED:
            entry.sharers.add(requester)
            self._reply_data(requester, line,
                             magic.memory.read_line(line), exclusive=False)
            return self.params.handler_time

        # EXCLUSIVE: the dirty copy is in a remote cache.
        if entry.owner == requester:
            # The owner's writeback is racing with this new request: wait
            # for the PUT, then satisfy the request from memory.
            entry.lock(MessageKind.GET, requester)
            entry.awaiting_put = True
            return self.params.handler_time
        owner = entry.owner
        entry.lock(MessageKind.GET, requester)
        magic.send_message(owner, MessageKind.FWD_GET,
                           {"line": line, "requester": requester,
                            "home": magic.node_id})
        return self.params.handler_time

    # -------------------------------------------------------------- home: GETX

    def _home_getx(self, packet):
        magic = self.magic
        payload = packet.payload
        line = payload["line"]
        requester = payload["requester"]
        if not magic.firmware_assert(
                magic.directory.owns(line),
                "GETX for line not homed here"):
            return self.params.short_handler_time

        cost = self.params.handler_time
        reply_delay = 0.0
        # Firewall: only charged when the check actually runs, i.e. for
        # writers outside the home's failure unit, and the check runs
        # before the reply leaves, so the requester sees it (§6.2).
        if (magic.firewall_enabled
                and requester not in magic.failure_unit):
            reply_delay = self.params.firewall_check_time
            cost += reply_delay
            page = page_of(line, magic.address_map.page_size)
            if not magic.firewall_allows(page, requester):
                magic.stats.firewall_rejections += 1
                self._reply_bus_error(requester, line,
                                      BusErrorKind.FIREWALL)
                return cost

        if (magic.address_map.is_magic_region(line)
                and requester != magic.node_id):
            # Range check: nobody writes the node controller's state (§3.3).
            magic.stats.range_check_rejections += 1
            self._reply_bus_error(requester, line, BusErrorKind.RANGE_CHECK)
            return cost

        entry = magic.directory.entry(line)

        if entry.state == DirState.INCOHERENT:
            self._reply_bus_error(requester, line,
                                  BusErrorKind.INCOHERENT_LINE)
            return cost

        if entry.state == DirState.LOCKED:
            self._reply_nak(requester, line)
            return self.params.short_handler_time

        if entry.state == DirState.UNOWNED:
            self._grant_exclusive(entry, line, requester,
                                  magic.memory.read_line(line),
                                  reply_delay=reply_delay)
            return cost

        if entry.state == DirState.SHARED:
            others = entry.sharers - {requester}
            if not others:
                self._grant_exclusive(entry, line, requester,
                                      magic.memory.read_line(line),
                                      reply_delay=reply_delay)
                return cost
            entry.lock(MessageKind.GETX, requester)
            entry.awaiting_acks = len(others)
            for sharer in sorted(others):
                magic.send_message(sharer, MessageKind.INVAL,
                                   {"line": line, "home": magic.node_id})
            return self.params.long_handler_time

        # EXCLUSIVE
        if entry.owner == requester:
            entry.lock(MessageKind.GETX, requester)
            entry.awaiting_put = True
            return cost
        owner = entry.owner
        entry.lock(MessageKind.GETX, requester)
        magic.send_message(owner, MessageKind.FWD_GETX,
                           {"line": line, "requester": requester,
                            "home": magic.node_id})
        return cost

    def _grant_exclusive(self, entry, line, requester, value,
                         reply_delay=0.0):
        entry.unlock(DirState.EXCLUSIVE)
        entry.sharers = set()
        entry.owner = requester
        entry.memory_valid = False
        self._reply_data(requester, line, value, exclusive=True,
                         reply_delay=reply_delay)

    # --------------------------------------------------------------- home: PUT

    def _home_put(self, packet):
        magic = self.magic
        payload = packet.payload
        line = payload["line"]
        value = payload["value"]
        writer = packet.src
        if not magic.firmware_assert(
                magic.directory.owns(line), "PUT for line not homed here"):
            return self.params.short_handler_time
        entry = magic.directory.entry(line)

        if entry.state == DirState.EXCLUSIVE and entry.owner == writer:
            magic.memory.write_line(line, value)
            entry.memory_valid = True
            entry.owner = None
            entry.unlock(DirState.UNOWNED)
            magic.hooks.on_put_absorbed(magic.node_id, line)
            return self.params.handler_time

        if entry.state == DirState.LOCKED:
            # Writeback raced with a forwarded request: absorb the data
            # but keep the lock.  Completing from memory now would
            # re-grant the line while the stale forward could later hit
            # a re-acquired copy and transfer ownership behind the
            # directory's back.  The forward provably drains as a
            # FWD_MISS (completed then from this parked copy) or an
            # OWNERSHIP_XFER from whoever serviced it.
            magic.memory.write_line(line, value)
            entry.memory_valid = True
            magic.hooks.on_put_absorbed(magic.node_id, line)
            return self.params.handler_time

        if entry.state == DirState.INCOHERENT:
            # A writeback for a line already declared lost: the data is
            # stale by definition (the mark happened during recovery after
            # the flush); ignore it.
            self._note_stray(packet, "put-to-incoherent-line")
            return self.params.short_handler_time

        self._note_stray(packet, "put-without-ownership")
        return self.params.short_handler_time

    def _complete_pending_from_memory(self, entry, line):
        magic = self.magic
        requester = entry.pending_requester
        kind = entry.pending_kind
        value = magic.memory.read_line(line)
        if kind == MessageKind.GET:
            entry.unlock(DirState.SHARED)
            entry.sharers = {requester}
            entry.owner = None
            self._reply_data(requester, line, value, exclusive=False)
        else:
            self._grant_exclusive(entry, line, requester, value)

    # ------------------------------------------------------ home: ack collection

    def _home_inval_ack(self, packet):
        magic = self.magic
        line = packet.payload["line"]
        entry = magic.directory.peek(line)
        if (entry is None or entry.state != DirState.LOCKED
                or entry.pending_kind != MessageKind.GETX):
            self._note_stray(packet, "ack-without-pending-getx")
            return self.params.short_handler_time
        entry.awaiting_acks -= 1
        if entry.awaiting_acks > 0:
            return self.params.short_handler_time
        self._grant_exclusive(entry, line, entry.pending_requester,
                              magic.memory.read_line(line))
        return self.params.handler_time

    def _home_sharing_wb(self, packet):
        magic = self.magic
        payload = packet.payload
        line = payload["line"]
        entry = magic.directory.peek(line)
        if (entry is None or entry.state != DirState.LOCKED
                or entry.pending_kind != MessageKind.GET):
            self._note_stray(packet, "writeback-without-pending-get")
            return self.params.short_handler_time
        old_owner = entry.owner
        magic.memory.write_line(line, payload["value"])
        entry.memory_valid = True
        requester = entry.pending_requester
        entry.unlock(DirState.SHARED)
        entry.sharers = {old_owner, requester}
        entry.owner = None
        return self.params.handler_time

    def _home_ownership_xfer(self, packet):
        magic = self.magic
        line = packet.payload["line"]
        entry = magic.directory.peek(line)
        if (entry is None or entry.state != DirState.LOCKED
                or entry.pending_kind != MessageKind.GETX):
            self._note_stray(packet, "ownership-xfer-without-pending-getx")
            return self.params.short_handler_time
        if entry.memory_valid:
            # A writeback landed while the transfer was in flight.  The
            # forward can only have hit the old owner before any eviction
            # of its copy, so the writeback must be from the transfer's
            # recipient: the new owner already gave the line back.
            entry.unlock(DirState.UNOWNED)
            entry.sharers = set()
            entry.owner = None
            return self.params.short_handler_time
        requester = entry.pending_requester
        entry.unlock(DirState.EXCLUSIVE)
        entry.sharers = set()
        entry.owner = requester
        entry.memory_valid = False
        return self.params.short_handler_time

    def _home_fwd_miss(self, packet):
        magic = self.magic
        line = packet.payload["line"]
        entry = magic.directory.peek(line)
        if entry is None or entry.state != DirState.LOCKED:
            self._note_stray(packet, "fwd-miss-without-lock")
            return self.params.short_handler_time
        if entry.memory_valid:
            # An eviction's PUT travels the same owner-to-home lane as
            # the FWD_MISS it causes, so the writeback always lands
            # first: memory is current and the forward has provably
            # drained -- complete the pending request from memory.
            self._complete_pending_from_memory(entry, line)
            return self.params.handler_time
        # Memory is stale, so no writeback is coming: the target missed
        # because its own exclusive grant is still in flight.  NAK the
        # pending requester (it will retry) and release the lock; the
        # directory's owner field is already correct.
        requester = entry.pending_requester
        entry.unlock(DirState.EXCLUSIVE)
        self._reply_nak(requester, line)
        return self.params.short_handler_time

    # ------------------------------------------------------ remote: interventions

    def _remote_fwd_get(self, packet):
        magic = self.magic
        payload = packet.payload
        line = payload["line"]
        requester = payload["requester"]
        home = payload["home"]
        value = magic.cache.downgrade(line) if magic.cache else None
        if value is None:
            # We no longer hold the line: our writeback is in flight.
            magic.send_message(home, MessageKind.FWD_MISS, {"line": line})
            return self.params.short_handler_time
        magic.send_message(requester, MessageKind.DATA_SHARED,
                           {"line": line, "value": value})
        magic.send_message(home, MessageKind.SHARING_WB,
                           {"line": line, "value": value})
        return self.params.long_handler_time

    def _remote_fwd_getx(self, packet):
        magic = self.magic
        payload = packet.payload
        line = payload["line"]
        requester = payload["requester"]
        home = payload["home"]
        value = magic.cache.invalidate(line) if magic.cache else None
        if value is None:
            magic.send_message(home, MessageKind.FWD_MISS, {"line": line})
            return self.params.short_handler_time
        magic.send_message(requester, MessageKind.DATA_EXCL,
                           {"line": line, "value": value})
        magic.send_message(home, MessageKind.OWNERSHIP_XFER, {"line": line})
        return self.params.long_handler_time

    def _remote_inval(self, packet):
        magic = self.magic
        payload = packet.payload
        line = payload["line"]
        home = payload["home"]
        if magic.cache is not None:
            state = magic.cache.state_of(line)
            magic.firmware_assert(
                state != CacheState.EXCLUSIVE,
                "INVAL hit a dirty line")
            magic.cache.invalidate(line)
        magic.send_message(home, MessageKind.INVAL_ACK, {"line": line})
        return self.params.short_handler_time

    # ------------------------------------------------------------ home: uncached

    def _home_uc_read(self, packet):
        return self._home_uncached(packet, is_read=True)

    def _home_uc_write(self, packet):
        return self._home_uncached(packet, is_read=False)

    def _home_uncached(self, packet, is_read):
        magic = self.magic
        payload = packet.payload
        address = payload["address"]
        requester = payload["requester"]
        reply_kind = MessageKind.UC_DATA if is_read else MessageKind.UC_ACK
        if (magic.address_map.is_io_region(address)
                and requester not in magic.failure_unit):
            # Nonidempotent I/O never crosses failure-unit boundaries
            # directly; it must go through the OS RPC path (§3.3).  The
            # error rides the uncached-reply kind so the requester's
            # outstanding-table lookup finds it by uc_key.
            magic.send_message(requester, reply_kind,
                               {"uc_key": payload["uc_key"],
                                "address": address,
                                "error_kind":
                                    BusErrorKind.REMOTE_UNCACHED_IO,
                                "detail": "uncached I/O across failure unit"})
            return self.params.handler_time
        if magic.address_map.is_io_region(address):
            register = (address
                        - magic.address_map.io_region_start(magic.node_id))
            if is_read:
                value = magic.io_device.read(register)
            else:
                magic.io_device.write(register, payload.get("value"))
                value = None
        else:
            line = magic.address_map.line_address(address)
            if is_read:
                value = magic.memory.read_line(line)
            else:
                magic.memory.write_line(line, payload.get("value"))
                value = None
        magic.send_message(requester, reply_kind,
                           {"uc_key": payload["uc_key"], "value": value,
                            "address": address, "error_kind": None})
        return self.params.handler_time

    # ------------------------------------------------------------- home: scrub

    def _home_page_scrub(self, packet):
        magic = self.magic
        payload = packet.payload
        reset = magic.scrub_page(payload["page"])
        magic.send_message(payload["requester"], MessageKind.SCRUB_ACK,
                           {"page": payload["page"], "reset": reset,
                            "scrub_key": payload.get("scrub_key")})
        return self.params.long_handler_time

    # ----------------------------------------------------------------- replies

    def _reply_data(self, requester, line, value, exclusive,
                    reply_delay=0.0):
        kind = (MessageKind.DATA_EXCL if exclusive
                else MessageKind.DATA_SHARED)
        self.magic.send_message(requester, kind,
                                {"line": line, "value": value},
                                delay=reply_delay)

    def _reply_nak(self, requester, line):
        self.magic.stats.naks_sent += 1
        self.magic.send_message(requester, MessageKind.NAK, {"line": line})

    def _reply_bus_error(self, requester, line, error_kind, detail=""):
        self.magic.send_message(
            requester, MessageKind.BUS_ERROR_REPLY,
            {"line": line, "error_kind": error_kind,
             "address": line, "detail": detail})


_HANDLERS = {
    MessageKind.GET: ProtocolEngine._home_get,
    MessageKind.GETX: ProtocolEngine._home_getx,
    MessageKind.PUT: ProtocolEngine._home_put,
    MessageKind.INVAL_ACK: ProtocolEngine._home_inval_ack,
    MessageKind.SHARING_WB: ProtocolEngine._home_sharing_wb,
    MessageKind.OWNERSHIP_XFER: ProtocolEngine._home_ownership_xfer,
    MessageKind.FWD_MISS: ProtocolEngine._home_fwd_miss,
    MessageKind.FWD_GET: ProtocolEngine._remote_fwd_get,
    MessageKind.FWD_GETX: ProtocolEngine._remote_fwd_getx,
    MessageKind.INVAL: ProtocolEngine._remote_inval,
    MessageKind.UC_READ: ProtocolEngine._home_uc_read,
    MessageKind.UC_WRITE: ProtocolEngine._home_uc_write,
    MessageKind.PAGE_SCRUB: ProtocolEngine._home_page_scrub,
}
