"""Directory state stored at each line's home node.

Entries are created lazily: an absent entry means the line is UNOWNED with a
valid memory copy (the reset state).  The ``memory_valid`` flag is the key
piece of recovery bookkeeping: it is cleared when the line is handed out
exclusive and set again only when the data returns (writeback or sharing
writeback).  After the recovery cache-flush, any entry whose memory copy is
still invalid has lost its only valid copy and is marked incoherent
(paper §4.5).
"""

from repro.common.types import DirState


class DirectoryEntry:
    """Directory state for a single line at its home."""

    __slots__ = (
        "state", "sharers", "owner", "memory_valid",
        "pending_kind", "pending_requester", "awaiting_acks",
        "awaiting_put",
    )

    def __init__(self):
        self.state = DirState.UNOWNED
        self.sharers = set()
        self.owner = None
        self.memory_valid = True
        # transaction-in-progress bookkeeping (state == LOCKED)
        self.pending_kind = None        # MessageKind of the locked request
        self.pending_requester = None
        self.awaiting_acks = 0
        self.awaiting_put = False       # FWD missed; a writeback is racing

    @property
    def is_transient(self):
        return self.state == DirState.LOCKED

    def lock(self, kind, requester):
        self.state = DirState.LOCKED
        self.pending_kind = kind
        self.pending_requester = requester

    def unlock(self, new_state):
        self.state = new_state
        self.pending_kind = None
        self.pending_requester = None
        self.awaiting_acks = 0
        self.awaiting_put = False

    def __repr__(self):
        return ("<DirEntry %s sharers=%s owner=%s mem_valid=%s>"
                % (self.state.value, sorted(self.sharers), self.owner,
                   self.memory_valid))


class Directory:
    """Lazily populated directory for all lines homed at one node."""

    def __init__(self, node_id, base_address, size_bytes, line_size):
        self.node_id = node_id
        self.base_address = base_address
        self.size_bytes = size_bytes
        self.line_size = line_size
        self._entries = {}

    def owns(self, line_address):
        return (self.base_address <= line_address
                < self.base_address + self.size_bytes)

    def entry(self, line_address):
        """Get (creating if needed) the entry for a line homed here."""
        if not self.owns(line_address):
            raise KeyError(
                "line 0x%x not homed at node %d" % (line_address, self.node_id))
        entry = self._entries.get(line_address)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_address] = entry
        return entry

    def peek(self, line_address):
        """Entry if it exists (no creation), else None (== reset state)."""
        return self._entries.get(line_address)

    def touched_lines(self):
        """Line addresses with explicit (non-reset) entries."""
        return list(self._entries.keys())

    @property
    def total_lines(self):
        """Number of lines homed at this node (for scan-cost accounting)."""
        return self.size_bytes // self.line_size

    def incoherent_lines(self):
        from repro.common.types import DirState as _DirState
        return [addr for addr, entry in self._entries.items()
                if entry.state == _DirState.INCOHERENT]

    def drop(self, line_address):
        """Forget an entry (used by page scrub after marking resolution)."""
        self._entries.pop(line_address, None)
