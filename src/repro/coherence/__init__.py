"""Directory-based cache coherence protocol (FLASH-style).

Every 128-byte line has a fixed *home node* that stores its directory state
(paper §2).  The protocol is a home-based MSI invalidation protocol with the
properties the paper's fault analysis depends on:

* transient lines are **locked** at the home and requests are NAK'd until the
  transaction completes — a lost unlock deadlocks requesters (§3.2), which is
  detected by NAK-counter overflow (§4.2);
* a dirty writeback carries the **only valid copy** of the line (§3.2) — a
  lost writeback makes the line incoherent;
* lines marked incoherent answer every request with a bus-error reply (§3.2).
"""

from repro.coherence.messages import MessageKind, make_packet
from repro.coherence.directory import Directory, DirectoryEntry
from repro.coherence.protocol import ProtocolEngine

__all__ = [
    "Directory",
    "DirectoryEntry",
    "MessageKind",
    "ProtocolEngine",
    "make_packet",
]
