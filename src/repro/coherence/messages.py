"""Coherence and recovery message kinds, and packet construction helpers."""

import enum

from repro.common.types import Lane
from repro.interconnect.packet import Packet


class MessageKind(enum.Enum):
    """All message types exchanged between node controllers."""

    # -- coherence requests (REQUEST lane) -----------------------------------
    GET = "get"                      # read miss: fetch shared copy
    GETX = "getx"                    # write miss: fetch exclusive copy
    PUT = "put"                      # writeback of the dirty (only) copy
    UC_READ = "uc_read"              # uncached read (memory or I/O register)
    UC_WRITE = "uc_write"            # uncached write
    PAGE_SCRUB = "page_scrub"        # Hive: reset incoherent lines of a page
                                     # before page reuse (paper §4.6)

    # -- forwarded interventions (REQUEST lane) -------------------------------
    FWD_GET = "fwd_get"              # home asks owner to share with requester
    FWD_GETX = "fwd_getx"            # home asks owner to yield to requester
    INVAL = "inval"                  # home invalidates a sharer

    # -- replies (REPLY lane) ----------------------------------------------------
    DATA_SHARED = "data_shared"      # data grant, read-only
    DATA_EXCL = "data_excl"          # data grant, exclusive
    NAK = "nak"                      # line locked: retry later
    BUS_ERROR_REPLY = "bus_error"    # access terminated (firewall, incoherent,
                                     # range check, remote uncached I/O)
    INVAL_ACK = "inval_ack"          # sharer acknowledged invalidation
    SHARING_WB = "sharing_wb"        # owner's data copy back to home on FWD_GET
    OWNERSHIP_XFER = "ownership_xfer"  # owner passed the line on FWD_GETX
    FWD_MISS = "fwd_miss"            # intervention missed: writeback is racing
    UC_DATA = "uc_data"              # uncached read reply
    UC_ACK = "uc_ack"                # uncached write acknowledgment
    SCRUB_ACK = "scrub_ack"          # page scrub completed

    # -- recovery traffic (RECOVERY lanes, source-routed) ----------------------
    PING = "ping"                    # drop target into recovery; reply proves
                                     # its processor runs recovery code (§4.2)
    PING_REPLY = "ping_reply"
    DISSEMINATE = "disseminate"      # LState/NState exchange round (§4.3)
    BARRIER_UP = "barrier_up"        # fault-tolerant tree barrier: reduce
    BARRIER_DOWN = "barrier_down"    # fault-tolerant tree barrier: release
    RESTART = "restart"              # recovery restarted: new fault detected
    # FLUSH_DONE rides the *normal* request lane so that in-order delivery
    # puts it behind the sender's writebacks (the all-to-all barrier of §4.5).
    FLUSH_DONE = "flush_done"

    # -- operating system (normal REQUEST lane) --------------------------------
    # Inter-cell kernel message: models Hive's shared-memory mailbox plus
    # inter-processor interrupt.  Like all normal traffic it can be lost
    # when a fault hits, which is why the Hive RPC layer implements an
    # end-to-end exactly-once protocol on top of it (paper §3.3).
    OS_MSG = "os_msg"


#: Kinds that carry a full cache line of data.
DATA_KINDS = frozenset({
    MessageKind.PUT,
    MessageKind.DATA_SHARED,
    MessageKind.DATA_EXCL,
    MessageKind.SHARING_WB,
})

#: Coherence request kinds that are answered by the home node.
HOME_REQUEST_KINDS = frozenset({
    MessageKind.GET,
    MessageKind.GETX,
    MessageKind.PUT,
    MessageKind.UC_READ,
    MessageKind.UC_WRITE,
    MessageKind.PAGE_SCRUB,
})

_REQUEST_KINDS = frozenset({
    MessageKind.GET, MessageKind.GETX, MessageKind.PUT,
    MessageKind.UC_READ, MessageKind.UC_WRITE,
    MessageKind.FWD_GET, MessageKind.FWD_GETX, MessageKind.INVAL,
    MessageKind.PAGE_SCRUB,
})


def lane_for(kind):
    """Normal-traffic virtual lane carrying this message kind."""
    return Lane.REQUEST if kind in _REQUEST_KINDS else Lane.REPLY


def flits_for(kind, params):
    """Packet size: header-only for control, header+line for data."""
    if kind in DATA_KINDS:
        return params.data_packet_flits()
    return 2


def make_packet(params, src, dst, kind, payload=None, lane=None,
                source_route=None):
    """Build a network packet for a protocol or recovery message."""
    return Packet(
        src=src,
        dst=dst,
        lane=lane if lane is not None else lane_for(kind),
        kind=kind,
        payload=payload,
        flits=flits_for(kind, params),
        source_route=source_route,
    )
