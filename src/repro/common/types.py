"""Core enumerations and address helpers shared across subsystems."""

import enum

#: A node identifier is a small integer (0..N-1).
NodeId = int

#: Line addresses are byte addresses aligned to the line size.
LineAddress = int


class Lane(enum.IntEnum):
    """Virtual lanes of the interconnect.

    Two lanes carry normal coherence traffic (requests and replies are
    separated to avoid protocol-induced network deadlock), and two lanes are
    dedicated to recovery traffic (paper §4.1) so that the recovery algorithm
    can communicate even when the normal lanes are clogged with backed-up
    traffic.
    """

    REQUEST = 0
    REPLY = 1
    RECOVERY_A = 2
    RECOVERY_B = 3


class CacheState(enum.Enum):
    """L2 cache line states (MSI; EXCLUSIVE means writable and dirty-able)."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"


class DirState(enum.Enum):
    """Directory states for a memory line at its home node."""

    UNOWNED = "U"           # only memory copy, no caches hold the line
    SHARED = "S"            # one or more caches hold read-only copies
    EXCLUSIVE = "E"         # a single remote cache holds the writable copy
    LOCKED = "L"            # transient: home is mid-transaction, NAK requests
    INCOHERENT = "X"        # the only valid copy was lost; accesses bus-error


class AccessKind(enum.Enum):
    """Classes of processor-issued memory references."""

    LOAD = "load"
    STORE = "store"
    UNCACHED_LOAD = "uncached_load"
    UNCACHED_STORE = "uncached_store"
    FLUSH = "flush"


class BusErrorKind(enum.Enum):
    """Why MAGIC terminated a reference with a bus error."""

    INACCESSIBLE_NODE = "inaccessible_node"    # home is marked failed in the node map
    INCOHERENT_LINE = "incoherent_line"        # line lost its only valid copy
    FIREWALL = "firewall"                      # write to a page without permission
    RANGE_CHECK = "range_check"                # write into the MAGIC-protected region
    REMOTE_UNCACHED_IO = "remote_uncached_io"  # uncached I/O from outside the failure unit
    TRUNCATED_DATA = "truncated_data"          # data words lost to packet truncation


def line_of(address, line_size):
    """Return the line-aligned address containing ``address``."""
    return address - (address % line_size)


def page_of(address, page_size):
    """Return the page-aligned address containing ``address``."""
    return address - (address % page_size)
