"""Error hierarchy.

:class:`BusError` is *not* a bug: it is the architected way MAGIC terminates
a memory reference that must not complete (access to an inaccessible or
incoherent line, firewall violation, range-check violation, cross-cell
uncached I/O).  Processor and OS models catch it and react; tests assert it
is raised in exactly the right situations.
"""


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """An invalid machine or experiment configuration."""


class FirmwareAssertionError(ReproError):
    """A MAGIC firmware assertion tripped (triggers recovery, §4.2)."""

    def __init__(self, node_id, message):
        super().__init__("MAGIC assertion on node %d: %s" % (node_id, message))
        self.node_id = node_id


class BusError(ReproError):
    """A memory reference terminated with a bus error by MAGIC.

    Parameters
    ----------
    kind:
        A :class:`repro.common.types.BusErrorKind` describing why MAGIC
        refused the access.
    address:
        The byte address of the offending reference.
    """

    def __init__(self, kind, address, detail=""):
        super().__init__("bus error (%s) at 0x%x %s" % (kind.name, address, detail))
        self.kind = kind
        self.address = address
        self.detail = detail
