"""Shared types, timing parameters, and error hierarchy."""

from repro.common.errors import (
    BusError,
    ConfigurationError,
    FirmwareAssertionError,
    ReproError,
)
from repro.common.params import TimingParams
from repro.common.types import (
    AccessKind,
    BusErrorKind,
    CacheState,
    DirState,
    Lane,
    LineAddress,
    NodeId,
)

__all__ = [
    "AccessKind",
    "BusError",
    "BusErrorKind",
    "CacheState",
    "ConfigurationError",
    "DirState",
    "FirmwareAssertionError",
    "Lane",
    "LineAddress",
    "NodeId",
    "ReproError",
    "TimingParams",
]
