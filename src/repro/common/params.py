"""Timing and sizing parameters for the FLASH model.

The headline constants come straight from the paper: the 120 ns /
24-instruction remote-read handler (§3.1), the 390 ns uncached instruction
fetch measured on the R10000 RTL model (§5.3, equivalently < 2.5 MIPS in
recovery mode, §4.1), 128-byte lines and 4 KB firewall pages (§2, §3.3).
The remaining constants (hop latency, flit time, memory access) are chosen
to be representative of the CrayLink/SPIDER and 100 MHz MAGIC technology of
the era; the figure benches depend only on how times *scale*, not on the
absolute values.
"""

import dataclasses


@dataclasses.dataclass
class TimingParams:
    """All model latencies (ns) and protocol thresholds in one place."""

    # --- geometry ---------------------------------------------------------
    line_size: int = 128            # bytes per coherence line (paper §2)
    page_size: int = 4096           # firewall granularity (paper §3.3)
    flit_bytes: int = 16            # interconnect flit payload

    # --- interconnect -----------------------------------------------------
    hop_latency: float = 50.0       # router header latency per hop (ns)
    flit_time: float = 10.0         # serialization time per flit (ns)
    buffer_capacity: int = 8        # packets per (port, lane) input buffer
    recovery_buffer_capacity: int = 4
    recovery_stall_discard: float = 5_000.0   # stalled source-routed packet
                                              # discard threshold (ns, §4.1)

    # --- MAGIC node controller ---------------------------------------------
    handler_time: float = 120.0     # common coherence handler (ns, §3.1)
    short_handler_time: float = 60.0   # trivial handlers (ACK bookkeeping)
    long_handler_time: float = 240.0   # handlers that touch the directory twice
    memory_access: float = 140.0    # DRAM access (ns)
    firewall_check_time: float = 8.0   # extra cost on inter-cell write
                                       # handlers (firewall is the one feature
                                       # not hidden in spare slots, §6.2)
    magic_inbox_capacity: int = 16  # packets MAGIC buffers before exerting
                                    # back-pressure on its router port

    # --- failure detection thresholds (§4.2) --------------------------------
    memory_op_timeout: float = 100_000.0   # ns before a request times out
    nak_retry_interval: float = 400.0      # processor retry pacing after NAK
    nak_counter_limit: int = 256           # retries before overflow triggers
                                           # recovery
    drain_quiet_time: float = 10_000.0     # tau: quiet period that means the
                                           # interconnect has drained (§4.4)

    # --- recovery-mode execution (§4.1, §5.3) -------------------------------
    uncached_instruction_time: float = 390.0   # ns per instruction at the
                                               # R10000 RTL calibrated rate
    # Instruction-count estimates for recovery work items, charged at the
    # uncached rate above.  These set the scale of Figures 5.5-5.7.
    instr_probe_setup: int = 600        # set up and fire one neighbor probe
    instr_ping_handle: int = 300        # handle one incoming ping
    instr_enter_recovery: int = 4_000   # cache-error vector + diagnostics
    instr_merge_per_entry: int = 5     # merge one link/node state entry
    instr_send_per_entry: int = 2       # serialize one entry into a packet
    instr_bft_per_node: int = 60        # BFS work per node in BFT computation
    instr_route_per_node: int = 90      # routing-table computation per node
    instr_barrier_step: int = 400       # one barrier send/receive step
    instr_isolate_router: int = 1_200   # reprogram one bordering router

    # P4 is driven by cache/MAGIC hardware at full speed, not by uncached
    # R10000 code; per-line costs calibrated to Figure 5.6's magnitudes
    # (both steps scale linearly in L2 size and memory size respectively).
    flush_line_time: float = 1_200.0    # walk + write back one cache line
    dir_scan_line_time: float = 80.0    # scan/reset one directory entry

    # --- Hive OS recovery (§4.6, Figure 5.7) ---------------------------------
    # Unlike the hardware recovery algorithm, OS recovery runs cached, at
    # full speed; its cost scales with the number of cells, not nodes.
    os_recovery_fixed_ns: float = 18_000_000.0     # fixed kernel work
    os_recovery_per_cell_ns: float = 7_000_000.0   # per surviving cell
    rpc_retry_interval: float = 150_000.0          # RPC retransmit pacing
    rpc_timeout: float = 60_000_000.0              # give up on a dead cell
    kernel_access_watchdog: float = 1_500_000.0    # kernel memory-op retry

    # --- recovery-algorithm protocol timeouts --------------------------------
    probe_timeout: float = 30_000.0     # wait for a router-probe reply (ns)
    probe_retries: int = 3
    ping_interval: float = 1_000_000.0  # gap between ping retries (ns)
    ping_deadline: float = 6_000_000.0  # declare a node dead after this (ns);
                                        # must exceed the recovery-entry time
                                        # (instr_enter_recovery * 390 ns)
    ctrl_timeout: float = 200_000.0     # router-control ack timeout (ns)
    ctrl_retries: int = 4
    barrier_timeout: float = 400_000_000.0   # a barrier partner this late is
                                             # treated as a new fault (ns)
    dissemination_timeout: float = 200_000_000.0  # round-partner deadline (ns)
    shutdown_fraction: float = 0.5      # split-brain heuristic (§4.2): shut
                                        # down if fewer than this fraction of
                                        # nodes are reachable and alive

    # --- processor ----------------------------------------------------------
    cpu_cycle: float = 5.0          # 200 MHz R4000 (§5.1, Table 5.1)
    l1_hit_time: float = 10.0       # cache hit service time seen by the model

    @property
    def recovery_mips(self):
        """Effective recovery-mode execution rate (paper: under 2.5 MIPS)."""
        return 1_000.0 / self.uncached_instruction_time

    def recovery_work(self, instructions):
        """Time (ns) to execute ``instructions`` in uncached recovery mode."""
        return instructions * self.uncached_instruction_time

    def data_packet_flits(self):
        """Flits in a packet carrying one full cache line (plus header)."""
        return 1 + self.line_size // self.flit_bytes

    def packet_transfer_time(self, flits):
        """Time for a packet of ``flits`` flits to cross one hop."""
        return self.hop_latency + flits * self.flit_time


DEFAULT_PARAMS = TimingParams()
