"""Exactly-once inter-cell RPC (paper §3.3).

The transport is the OS message (mailbox + interrupt analog), which rides
the normal request lane and is therefore *lossy across faults*.  The RPC
layer provides exactly-once semantics end to end: requests carry sequence
numbers, the callee deduplicates and caches replies, and the caller
retransmits until it sees the reply or concludes the callee is dead.

Handlers run at most once per (caller, sequence) pair even under arbitrary
retransmission — the property the nonidempotent remote I/O path needs.
"""

import itertools

from repro.coherence.messages import MessageKind
from repro.common.errors import ReproError
from repro.sim import Event


class RpcError(ReproError):
    """Base class for RPC failures."""


class CellDownError(RpcError):
    """The callee cell is dead (or became dead before replying)."""

    def __init__(self, cell_id):
        super().__init__("cell %d is down" % cell_id)
        self.cell_id = cell_id


class RpcEndpoint:
    """Per-cell RPC endpoint running on the cell's lead node."""

    def __init__(self, sim, params, cell_id, magic):
        self.sim = sim
        self.params = params
        self.cell_id = cell_id
        self.magic = magic
        self.handlers = {}          # service name -> fn(caller_cell, payload)
        self.peers = {}             # cell_id -> lead node id
        self.dead_cells = set()
        self._seq = itertools.count(1)
        self._waiting = {}          # (dst_cell, seq) -> Event
        self._executed = {}         # (src_cell, seq) -> cached reply
        self._proc = None
        self.stats_calls = 0
        self.stats_retransmits = 0
        self.stats_duplicates_dropped = 0
        self.stopped = False

    def register(self, service, handler):
        """Install ``handler(caller_cell, payload) -> reply`` for a service."""
        self.handlers[service] = handler

    def start(self):
        self._proc = self.sim.spawn(
            self._serve(), name="rpc.cell%d" % self.cell_id)

    def stop(self):
        self.stopped = True
        if self._proc is not None:
            self._proc.kill()
        for event in self._waiting.values():
            if not event.triggered:
                event.trigger(("dead", None))
        self._waiting.clear()

    def mark_cell_dead(self, cell_id):
        """OS recovery: abort calls pending toward a dead cell (§4.6)."""
        self.dead_cells.add(cell_id)
        for (dst, _seq), event in list(self._waiting.items()):
            if dst == cell_id and not event.triggered:
                event.trigger(("dead", None))

    # ------------------------------------------------------------------- call

    def call(self, dst_cell, service, payload):
        """Generator: perform an exactly-once RPC; returns the reply.

        Raises :class:`CellDownError` when the destination is known dead or
        never answers within the RPC timeout.
        """
        if dst_cell in self.dead_cells:
            raise CellDownError(dst_cell)
        self.stats_calls += 1
        seq = next(self._seq)
        key = (dst_cell, seq)
        give_up_at = self.sim.now + self.params.rpc_timeout
        body = {"rpc": "req", "service": service, "payload": payload,
                "seq": seq, "caller": self.cell_id}
        first = True
        while True:
            # The kernel cannot run while the processor executes recovery
            # code: hold off (and stop retransmitting into the drain).
            while self.magic.in_recovery and not self.stopped:
                yield self.params.rpc_retry_interval
                give_up_at = self.sim.now + self.params.rpc_timeout
            if dst_cell in self.dead_cells:
                raise CellDownError(dst_cell)
            if self.sim.now >= give_up_at:
                self.dead_cells.add(dst_cell)
                raise CellDownError(dst_cell)
            if not first:
                self.stats_retransmits += 1
            first = False
            event = Event(self.sim)
            self._waiting[key] = event
            self._send(dst_cell, dict(body))
            timer = self.sim.schedule(
                self.params.rpc_retry_interval, _poke, event)
            status, value = yield event
            timer.cancel()
            self._waiting.pop(key, None)
            if status == "reply":
                return value
            if status == "dead":
                raise CellDownError(dst_cell)
            # status == "retry": the retransmit timer fired; loop around.

    def _send(self, dst_cell, body):
        dst_node = self.peers.get(dst_cell)
        if dst_node is None:
            raise RpcError("unknown cell %d" % dst_cell)
        if self.magic.in_recovery:
            return   # suppressed during recovery; retransmission covers it
        self.magic.send_message(dst_node, MessageKind.OS_MSG, body)

    # ------------------------------------------------------------------ server

    def _serve(self):
        inbox = self.magic.os_inbox
        while True:
            packet = yield inbox.get()
            body = packet.payload or {}
            tag = body.get("rpc")
            if tag == "req":
                self._handle_request(body)
            elif tag == "rep":
                self._handle_reply(body)

    def _handle_request(self, body):
        caller = body["caller"]
        seq = body["seq"]
        key = (caller, seq)
        if key in self._executed:
            # Duplicate request: resend the cached reply; the handler does
            # NOT run again (exactly-once execution).
            self.stats_duplicates_dropped += 1
            reply = self._executed[key]
        else:
            handler = self.handlers.get(body["service"])
            if handler is None:
                reply = {"error": "no such service %r" % body["service"]}
            else:
                reply = handler(caller, body["payload"])
            self._executed[key] = reply
        self._send(caller, {"rpc": "rep", "seq": seq,
                            "caller": self.cell_id, "reply": reply})

    def _handle_reply(self, body):
        key = (body["caller"], body["seq"])
        event = self._waiting.pop(key, None)
        if event is not None and not event.triggered:
            event.trigger(("reply", body["reply"]))


def _poke(event):
    if not event.triggered:
        event.trigger(("retry", None))
