"""Shared-memory file service (paper §5.1).

One cell acts as the file server; "the Hive file system uses shared memory
for all file data transfers across cell boundaries", so a client compile
job reads and writes file pages *directly* through the coherence protocol —
this is what generates the heavy cross-cell traffic of the parallel-make
workload.

Control operations (open, close, refetch) are RPCs.  File contents
ultimately live on "disk" (regenerable deterministic tokens): when a fault
makes a cached file page incoherent, the server scrubs the page through the
MAGIC service and rewrites it from disk — the client then retries.  This is
the *correct* handling path; the Hive bugs the paper reports lived exactly
here, which is what the bug-emulation knob models (see
:class:`~repro.hive.os.HiveConfig`).
"""

from repro.common.types import page_of


def disk_token(file_name, line_address):
    """The immutable on-disk contents of one line of a source file."""
    return ("disk", file_name, line_address)


class FileService:
    """File server running on one cell."""

    def __init__(self, cell, pages_per_file=1):
        self.cell = cell
        self.machine = cell.machine
        self.params = cell.params
        self.pages_per_file = pages_per_file
        self.files = {}          # name -> dict(pages=[...], writers=set())
        self._next_page = None

    # ----------------------------------------------------------------- layout

    def _allocate_pages(self, count):
        page_size = self.params.page_size
        if self._next_page is None:
            # File pages start above the server cell's kernel pages.
            last_kernel = max(self.cell.kernel_pages)
            self._next_page = last_kernel + page_size
        start, end = self.machine.address_map.usable_range(
            self.cell.lead_node)
        pages = []
        for _ in range(count):
            if self._next_page + page_size > end:
                raise RuntimeError("file server out of memory")
            pages.append(self._next_page)
            self._next_page += page_size
        return pages

    def create(self, name, writers=()):
        """Create a file backed by server-cell pages; returns page list."""
        pages = self._allocate_pages(self.pages_per_file)
        self.files[name] = {"pages": pages, "writers": set(writers)}
        self._initialize_pages(name, pages)
        self._program_firewall(name)
        return pages

    def _initialize_pages(self, name, pages):
        """Write the on-disk contents into the page-cache pages."""
        memory = self.machine.nodes[self.cell.lead_node].memory
        line_size = self.params.line_size
        for page in pages:
            for offset in range(0, self.params.page_size, line_size):
                line = page + offset
                memory.write_line(line, disk_token(name, line))
                self.machine.oracle.on_store(
                    self.cell.lead_node, line, disk_token(name, line))

    def _program_firewall(self, name):
        entry = self.files[name]
        magic = self.cell.magic
        writer_nodes = set(self.cell.node_ids)
        for writer_cell in entry["writers"]:
            writer_nodes |= self.cell.hive.cells[writer_cell].node_ids
        for page in entry["pages"]:
            magic.set_firewall(page, writer_nodes)

    def lines_of(self, name):
        entry = self.files[name]
        line_size = self.params.line_size
        return [page + offset
                for page in entry["pages"]
                for offset in range(0, self.params.page_size, line_size)]

    # ------------------------------------------------------------ RPC handlers

    def register_services(self):
        self.cell.rpc.register("fs.open", self._rpc_open)
        self.cell.rpc.register("fs.grant_write", self._rpc_grant_write)
        self.cell.rpc.register("fs.refetch", self._rpc_refetch)

    def _rpc_open(self, caller_cell, payload):
        name = payload["name"]
        entry = self.files.get(name)
        if entry is None:
            return {"error": "no such file"}
        return {"pages": list(entry["pages"])}

    def _rpc_grant_write(self, caller_cell, payload):
        name = payload["name"]
        entry = self.files.get(name)
        if entry is None:
            return {"error": "no such file"}
        entry["writers"].add(caller_cell)
        self._program_firewall(name)
        return {"ok": True}

    def _rpc_refetch(self, caller_cell, payload):
        """A client hit an incoherent line: scrub the page and restore its
        contents from disk (§4.6 page scrub before reuse)."""
        name = payload["name"]
        line = payload["line"]
        entry = self.files.get(name)
        if entry is None:
            return {"error": "no such file"}
        page = page_of(line, self.params.page_size)
        if page not in entry["pages"]:
            return {"error": "line not in file"}
        # This is the OS path whose incoherent-line handling contained the
        # Hive bugs the paper reports (§5.2): the bug emulation hook sits
        # here.
        if self.cell.hive.maybe_trip_incoherent_bug(self.cell):
            return {"error": "cell panicked"}
        home_magic = self.machine.nodes[
            self.machine.address_map.home_of(page)].magic
        home_magic.scrub_page(page)
        memory = self.machine.nodes[self.cell.lead_node].memory
        line_size = self.params.line_size
        for offset in range(0, self.params.page_size, line_size):
            line_address = page + offset
            memory.write_line(line_address, disk_token(name, line_address))
            self.machine.oracle.on_store(
                self.cell.lead_node, line_address,
                disk_token(name, line_address))
        return {"ok": True}
