"""A Hive cell: one kernel instance managing one failure unit.

The cell's invariants (paper §3.3):

* kernel text and data live only in memory belonging to the cell's own
  failure unit, so a fault elsewhere can never make them inaccessible or
  incoherent;
* the kernel pages' firewall entries admit only the cell's own nodes, so
  wild or speculative writes from other cells bus-error instead of
  corrupting the kernel;
* other cells may *read* kernel data but must RPC to change it.

``kernel_access`` is the kernel-mode memory-access primitive used by kernel
threads and (scheduled) user processes: it retries around recovery episodes
and surfaces bus errors to the caller.
"""

from repro.common.errors import BusError, ReproError
from repro.common.types import page_of
from repro.hive.rpc import RpcEndpoint
from repro.sim import AnyOf, Event


class KernelMemoryError(ReproError):
    """A cell's own kernel data became unusable (should never happen for
    faults outside the cell's failure unit — this is the containment
    property the tests assert)."""


class Cell:
    """One Hive kernel."""

    def __init__(self, hive, cell_id, node_ids, kernel_pages=2):
        self.hive = hive
        self.machine = hive.machine
        self.sim = self.machine.sim
        self.params = self.machine.params
        self.cell_id = cell_id
        self.node_ids = frozenset(node_ids)
        self.lead_node = min(node_ids)
        self.magic = self.machine.nodes[self.lead_node].magic
        self.rpc = RpcEndpoint(self.sim, self.params, cell_id, self.magic)
        self.alive = True
        self.panic_reason = None
        self.processes = []            # UserProcess instances
        self.suspended = False

        # Kernel data pages: allocated at the base of the lead node's
        # usable memory, firewall-restricted to the cell's own nodes.
        page_size = self.params.page_size
        start, _ = self.machine.address_map.usable_range(self.lead_node)
        base = page_of(start + page_size - 1, page_size)
        self.kernel_pages = [base + i * page_size
                             for i in range(kernel_pages)]
        self.kernel_lines = [
            page + off
            for page in self.kernel_pages
            for off in range(0, page_size, self.params.line_size)
        ]

    # ------------------------------------------------------------------ startup

    def start(self):
        for page in self.kernel_pages:
            home_magic = self.machine.nodes[
                self.machine.address_map.home_of(page)].magic
            home_magic.set_firewall(page, self.node_ids)
        self.rpc.start()

    # --------------------------------------------------------------- kernel I/O

    def kernel_access(self, op):
        """Generator: perform a memory op in kernel mode.

        Returns the value; raises :class:`BusError` when MAGIC terminates
        the access.  Retries transparently around recovery episodes.
        Kernel code uses the node's cache like any other code: hits are
        served locally.
        """
        from repro.common.types import AccessKind
        cache = self.magic.cache
        if (cache is not None
                and op.kind in (AccessKind.LOAD, AccessKind.STORE)
                and not self.machine.address_map.is_vector_range(op.address)
                and not self.magic.in_recovery):
            line = self.machine.address_map.line_address(op.address)
            hit = cache.lookup(
                line, for_write=(op.kind == AccessKind.STORE))
            if hit is not None:
                yield self.params.l1_hit_time
                if op.kind == AccessKind.STORE:
                    cache.write(line, op.value)
                    self.magic.hooks.on_store(
                        self.magic.node_id, line, op.value)
                    return op.value
                return hit.value

        watchdog_interval = self.params.kernel_access_watchdog
        while True:
            if not self.alive:
                raise KernelMemoryError("cell %d is down" % self.cell_id)
            event = self.magic.pi_request(op)
            watchdog = Event(self.sim)
            timer = self.sim.schedule(
                watchdog_interval, _poke, watchdog)
            index, result = yield AnyOf([event, watchdog])
            timer.cancel()
            if index == 1:
                # Watchdog: recovery (or congestion) swallowed the request;
                # wait for the machine to settle and retry.
                yield from self._wait_out_recovery()
                continue
            status, value = result
            if status == "ok":
                return value
            if status == "requeue":
                yield from self._wait_out_recovery()
                continue
            raise value   # BusError

    def _wait_out_recovery(self):
        manager = self.machine.recovery_manager
        while manager.in_progress:
            if manager.episode_done is not None:
                yield manager.episode_done
            else:
                yield 100_000.0
        # Hold user-visible work until OS recovery has also finished.
        while self.hive.os_recovery_in_progress:
            yield self.hive.os_recovery_done_event
        yield 10_000.0

    def kernel_heartbeat(self):
        """Kernel thread periodically using the cell's own kernel data.

        A bus error here means our kernel data was damaged — which the
        containment design guarantees cannot happen unless our own failure
        unit faulted; in that case the recovery algorithm has already shut
        this cell down.
        """
        from repro.node.processor import Load, Store
        index = 0
        while self.alive:
            line = self.kernel_lines[index % len(self.kernel_lines)]
            index += 1
            try:
                if index % 4 == 0:
                    value = ("kernel", self.cell_id, index)
                    yield from self.kernel_access(Store(line, value=value))
                else:
                    yield from self.kernel_access(Load(line))
            except (BusError, KernelMemoryError) as error:
                if self.alive:
                    self.panic("kernel data lost: %s" % error)
                return
            yield 200_000.0

    # --------------------------------------------------------------------- fate

    def panic(self, reason):
        """Kernel crash: the cell and everything it runs are gone."""
        if not self.alive:
            return
        self.alive = False
        self.panic_reason = reason
        self.rpc.stop()
        for process in self.processes:
            process.terminate("cell %d panicked" % self.cell_id)
        self.hive.on_cell_panic(self)

    def shut_down(self, reason):
        """Clean stop (our failure unit lost hardware)."""
        if not self.alive:
            return
        self.alive = False
        self.panic_reason = reason
        self.rpc.stop()
        for process in self.processes:
            process.terminate(reason)

    def __repr__(self):
        state = "up" if self.alive else "DOWN(%s)" % self.panic_reason
        return "<Cell %d nodes=%s %s>" % (
            self.cell_id, sorted(self.node_ids), state)


class UserProcess:
    """A user-level process scheduled by a cell's kernel.

    The body is a generator using the cell's kernel services; its
    ``dependencies`` are the cells whose death must terminate it (§4.6).
    """

    def __init__(self, cell, name, body, dependencies=()):
        self.cell = cell
        self.name = name
        self.body = body
        self.dependencies = set(dependencies) | {cell.cell_id}
        self.proc = None
        self.state = "ready"
        self.termination_reason = None
        self.result = None

    def start(self):
        self.state = "running"
        self.proc = self.cell.sim.spawn(self._run(), name=self.name)
        return self.proc

    def _run(self):
        try:
            self.result = yield from self.body
        except Exception as error:   # repro-lint: disable=broad-except —
            # the Hive process shell is a crash-isolation boundary: a
            # process may die of any kernel-surfaced error (bus error,
            # dead cell, ...) and must become a 'failed' state, not
            # unwind the simulator.
            self.state = "failed"
            self.termination_reason = str(error)
            return
        if self.state == "running":
            self.state = "done"

    def terminate(self, reason):
        if self.state in ("done", "failed", "terminated"):
            return
        self.state = "terminated"
        self.termination_reason = reason
        if self.proc is not None:
            self.proc.kill()


def _poke(event):
    if not event.triggered:
        event.trigger(None)
