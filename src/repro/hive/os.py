"""The Hive operating system model: cells + single system image + recovery.

The OS builds a machine whose hardware failure units coincide with its
cells (paper §3.3), wires itself to the hardware recovery manager's
completion interrupt (§4.6), and gates user-process resumption on its own
recovery pass — exactly the HW+OS suspension time that Figure 5.7 reports.
"""

import dataclasses

from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.hive.cell import Cell, UserProcess
from repro.hive.filesystem import FileService
from repro.sim import Event


@dataclasses.dataclass
class HiveConfig:
    """Configuration of a Hive boot."""

    cells: int = 8
    nodes_per_cell: int = 1
    mem_per_node: int = 1 << 20        # paper: 16 MB/cell (Table 5.1);
                                       # scaled down by default for CI speed
    l2_size: int = 1 << 16
    topology: str = "mesh"
    seed: int = 0
    file_server_cell: int = 0
    #: probability that the incoherent-line handling path hits one of the
    #: Hive bugs the paper reports (§5.2) and panics the cell.  0 models a
    #: fixed OS; ~0.5 reproduces Table 5.4's ≈8% failed-run rate (only a
    #: minority of runs create incoherent file lines at all).
    os_incoherent_bug_rate: float = 0.0
    machine_overrides: dict = dataclasses.field(default_factory=dict)

    @property
    def num_nodes(self):
        return self.cells * self.nodes_per_cell

    def cell_node_sets(self):
        per = self.nodes_per_cell
        return [frozenset(range(c * per, (c + 1) * per))
                for c in range(self.cells)]


class HiveOS:
    """A booted Hive system."""

    def __init__(self, config=None):
        self.config = config or HiveConfig()
        units = self.config.cell_node_sets()
        machine_config = MachineConfig(
            num_nodes=self.config.num_nodes,
            topology=self.config.topology,
            mem_per_node=self.config.mem_per_node,
            l2_size=self.config.l2_size,
            seed=self.config.seed,
            failure_units=tuple(units),
            **self.config.machine_overrides)
        self.machine = FlashMachine(
            machine_config, os_recovery_callback=self._on_hw_recovery)
        self.sim = self.machine.sim
        self.params = self.machine.params
        self.cells = [Cell(self, cell_id, nodes)
                      for cell_id, nodes in enumerate(units)]
        self.file_service = FileService(
            self.cells[self.config.file_server_cell])
        self.processes = []
        self.panics = []
        self.os_recovery_in_progress = False
        self.os_recovery_done_event = Event(self.sim, name="os.recovered")
        self.os_recovery_reports = []   # (hw_report, start, end)
        self._started = False

    # ------------------------------------------------------------------- boot

    def start(self):
        if self._started:
            return self
        self.machine.start()
        for cell in self.cells:
            cell.start()
            for peer in self.cells:
                cell.rpc.peers[peer.cell_id] = peer.lead_node
        self.file_service.register_services()
        for cell in self.cells:
            self.sim.spawn(cell.kernel_heartbeat(),
                           name="heartbeat.cell%d" % cell.cell_id)
            # Liveness monitoring: each kernel periodically probes its
            # peers' memory with uncached reads.  Besides feeding the OS's
            # membership view, these probes are what *detect* hardware
            # faults that user traffic never reaches (§4.2's memory
            # operation timeout fires on the probe).
            self.sim.spawn(self._membership_monitor(cell),
                           name="monitor.cell%d" % cell.cell_id)
        self._started = True
        return self

    def _membership_monitor(self, cell):
        from repro.common.errors import BusError
        from repro.hive.cell import KernelMemoryError
        from repro.node.processor import UncachedLoad

        # Probe every node of every peer cell: in a multi-node cell the
        # death of *any* member must be noticed.
        targets = [
            (peer, self.machine.line_homed_at(node_id, 0))
            for peer in self.cells if peer.cell_id != cell.cell_id
            for node_id in sorted(peer.node_ids)
        ]
        index = 0
        while cell.alive:
            if not targets:
                return
            peer, line = targets[index % len(targets)]
            index += 1
            if peer.alive:
                try:
                    # Uncached: a liveness probe must cross the fabric every
                    # time, never be answered from the local cache.
                    yield from cell.kernel_access(UncachedLoad(line))
                except (BusError, KernelMemoryError):
                    pass   # the dead cell is reported through OS recovery
            yield 500_000.0

    def cell_of_node(self, node_id):
        for cell in self.cells:
            if node_id in cell.node_ids:
                return cell
        raise KeyError(node_id)

    # -------------------------------------------------------------- processes

    def spawn_process(self, cell_id, name, body, dependencies=()):
        process = UserProcess(self.cells[cell_id], name, body, dependencies)
        self.cells[cell_id].processes.append(process)
        self.processes.append(process)
        process.start()
        return process

    # -------------------------------------------------------------- bug model

    def maybe_trip_incoherent_bug(self, cell):
        """Emulate the Hive bugs in the incoherent-line paths (§5.2)."""
        rate = self.config.os_incoherent_bug_rate
        if rate and self.sim.rng.random() < rate:
            cell.panic("OS bug handling incoherent line")
            return True
        return False

    def on_cell_panic(self, cell):
        self.panics.append((self.sim.now, cell.cell_id,
                            cell.panic_reason))

    # ------------------------------------------------------------ OS recovery

    def _on_hw_recovery(self, hw_report):
        """Hardware recovery completed: run Hive's own recovery (§4.6)."""
        self.os_recovery_in_progress = True
        self.os_recovery_done_event = Event(self.sim, name="os.recovered")
        self.sim.spawn(self._os_recovery(hw_report), name="hive.recovery")

    def _os_recovery(self, hw_report):
        start = self.sim.now
        available = hw_report.available_nodes

        # Cells whose nodes are gone were stopped by the hardware recovery
        # algorithm (failure-unit rule); reflect that in the OS state.
        dead_cells = []
        for cell in self.cells:
            if not cell.alive:
                dead_cells.append(cell.cell_id)
                continue
            if not cell.node_ids <= available:
                cell.shut_down("failure unit lost hardware")
                dead_cells.append(cell.cell_id)

        # Surviving cells adjust their kernel state: drop RPC sessions to
        # dead cells and terminate processes with essential dependencies on
        # them; unaffected applications continue (§4.6).
        survivors = [cell for cell in self.cells if cell.alive]
        for cell in survivors:
            for dead in dead_cells:
                cell.rpc.mark_cell_dead(dead)
            for process in cell.processes:
                if process.state == "running" and (
                        process.dependencies & set(dead_cells)):
                    process.terminate(
                        "dependency on dead cell(s) %s"
                        % sorted(process.dependencies & set(dead_cells)))

        # Kernel recovery work: fixed part plus a per-surviving-cell part —
        # OS recovery scales with cells, not nodes (§5.3).
        yield (self.params.os_recovery_fixed_ns
               + self.params.os_recovery_per_cell_ns * len(survivors))

        self.os_recovery_in_progress = False
        end = self.sim.now
        self.os_recovery_reports.append((hw_report, start, end))
        self.os_recovery_done_event.trigger((start, end))
        self.machine.recovery_manager.release_processors()

    # ------------------------------------------------------------------ helpers

    def run_until_processes_settle(self, processes=None, limit=None):
        """Run the simulation until the given processes stop running."""
        processes = processes if processes is not None else self.processes

        def settled():
            return all(p.state != "running" for p in processes)

        self.sim.run_until(settled, limit=limit)
