"""End-to-end fault-injection experiments on Hive (paper §5.2, Table 5.4).

One run: boot Hive, create the parallel-make build tree, start one compile
per cell, inject a fault mid-run, let hardware and OS recovery happen, wait
for the surviving compiles, then check that every compile *not affected by
the fault* finished correctly — the 91.6% criterion of the paper.
"""

from repro.common.types import DirState
from repro.core.experiment import EndToEndResult
from repro.faults.models import NODE_LOSS_FAULT_TYPES
from repro.hive.os import HiveConfig, HiveOS
from repro.workloads.pmake import (
    compile_job,
    create_build_tree,
    expected_object_lines,
)


def membership_monitor(hive, cell):
    """Deprecated shim: HiveOS now runs its own per-cell liveness monitor
    (see :meth:`repro.hive.os.HiveOS.start`); kept for API compatibility —
    spawning it adds an extra, harmless prober."""
    yield from hive._membership_monitor(cell)


def expected_dead_cells(hive, fault):
    """Cells the fault is *expected* to take down (its failure unit).

    ``fault`` may be a single :class:`~repro.faults.models.FaultSpec` or a
    whole :class:`~repro.campaign.schedule.FaultSchedule`; for a schedule
    the failure unit is the union over every entry.
    """
    if fault is None:
        return set()
    specs = fault.specs() if hasattr(fault, "specs") else [fault]
    dead = set()
    for spec in specs:
        if spec.fault_type in NODE_LOSS_FAULT_TYPES:
            dead.add(hive.cell_of_node(spec.target).cell_id)
    return dead


def run_end_to_end_experiment(fault, hive_config=None, inject_delay=2_000_000.0,
                              seed=0, run_limit=120_000_000_000):
    """One Table 5.4 run; returns an EndToEndResult."""
    config = hive_config or HiveConfig(seed=seed)
    hive = HiveOS(config).start()
    sim = hive.sim

    jobs = list(range(config.cells))
    create_build_tree(hive, jobs)
    server = config.file_server_cell

    processes = {}
    for job_id in jobs:
        cell_id = job_id % config.cells
        processes[job_id] = hive.spawn_process(
            cell_id, "cc%d" % job_id,
            compile_job(hive, cell_id, job_id),
            dependencies={server})

    # Let the compiles get going, then inject.
    sim.run(until=sim.now + inject_delay)
    manager = hive.machine.recovery_manager
    reports_before = len(manager.reports)
    entries = getattr(fault, "entries", None)
    if entries is not None:
        # A whole FaultSchedule: arm everything, then run past the last
        # timed manifestation.  Unlike a Table 5.2 fault, a schedule need
        # not be detectable at all (transient links can heal unnoticed), so
        # no recovery episode is demanded here — ``settled`` below waits
        # out whatever episodes do happen.
        base = sim.now
        hive.machine.injector.inject_schedule(fault, base_time=base)
        horizon = max((entry.time + (entry.spec.dwell or 0.0)
                       for entry in entries if entry.phase is None),
                      default=0.0)
        sim.run(until=base + horizon + 10.0)
    else:
        hive.machine.injector.inject(fault)

        # Every Table 5.2 fault type eventually triggers recovery (user
        # traffic or the liveness monitor detects it); wait for that episode
        # first — the compiles may well have finished before the fault was
        # even noticed (late injections).
        sim.run_until(
            lambda: len(manager.reports) > reports_before
            and not manager.in_progress,
            limit=run_limit)

    # Then run until the surviving compiles settle (done/failed/...).
    def settled():
        if manager.in_progress or hive.os_recovery_in_progress:
            return False
        return all(p.state != "running" for job, p in processes.items()
                   if p.cell.alive)

    sim.run_until(settled, limit=run_limit)

    # ---- evaluate -----------------------------------------------------------
    recovered = bool(manager.reports)
    os_recovered = bool(hive.os_recovery_reports)
    report = manager.reports[-1] if recovered else None

    dead_expected = expected_dead_cells(hive, fault)
    survivors_expected = [
        job for job in jobs
        if not ({job % config.cells, server} & dead_expected)
    ]

    correct = 0
    failure_reason = ""
    for job in survivors_expected:
        process = processes[job]
        ok, why = _verify_compile(hive, job, process)
        if ok:
            correct += 1
        elif not failure_reason:
            failure_reason = "compile %d: %s" % (job, why)

    # A cell that died outside the fault's failure unit is a containment
    # failure regardless of compile outcomes (§5.2: the paper's failed runs
    # were exactly such OS-bug cell crashes).
    for when, cell_id, reason in hive.panics:
        if cell_id not in dead_expected and not failure_reason:
            failure_reason = "cell %d crashed: %s" % (cell_id, reason)

    failed = bool(failure_reason) or correct < len(survivors_expected)
    hw_ns = report.total_duration if report else 0.0
    os_ns = 0.0
    if hive.os_recovery_reports:
        _, start, end = hive.os_recovery_reports[-1]
        os_ns = end - start

    return EndToEndResult(
        fault=fault,
        recovered=recovered,
        os_recovered=os_recovered,
        compiles_expected=len(survivors_expected),
        compiles_correct=correct,
        failed=failed,
        failure_reason=failure_reason,
        hw_recovery_ns=hw_ns,
        os_recovery_ns=os_ns,
    )


def _verify_compile(hive, job, process):
    """Check one expected-survivor compile completed with correct output."""
    if process.state != "done":
        return False, "state=%s (%s)" % (process.state,
                                         process.termination_reason)
    machine = hive.machine
    for line, expected in expected_object_lines(hive, job):
        home = machine.address_map.home_of(line)
        entry = machine.nodes[home].directory.peek(line)
        if entry is not None and entry.state == DirState.INCOHERENT:
            return False, "object line 0x%x incoherent" % line
        committed = machine.oracle.committed_value(line)
        if committed != expected:
            return False, ("object line 0x%x has %r, expected %r"
                           % (line, committed, expected))
    return True, ""
