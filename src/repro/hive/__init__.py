"""Behavioural model of the Hive operating system (paper §3.3, §4.6).

Hive structures the machine as an internal distributed system of *cells*:
each cell is a kernel managing one partition of the machine, and partitions
are aligned with hardware failure units.  The model implements the pieces
the paper's end-to-end experiments depend on:

* kernel data confined to the cell's own failure unit, defended by the
  firewall (a cell never crashes because of a fault *outside* its unit);
* exactly-once inter-cell RPC over a lossy transport (§3.3);
* remote I/O via RPC only — MAGIC bus-errors direct cross-unit uncached
  I/O (§3.3);
* a shared-memory file service (heavy cross-cell coherence traffic, §5.1);
* OS recovery after the hardware recovery interrupt (§4.6): dead cells are
  detected, dependent processes terminated, incoherent pages scrubbed
  through the MAGIC service before reuse, and only then do user processes
  resume;
* a configurable emulation of the Hive bugs the paper found in the
  incoherent-line handling paths (the 8.4% failed runs of Table 5.4).
"""

from repro.hive.rpc import CellDownError, RpcEndpoint, RpcError
from repro.hive.cell import Cell, KernelMemoryError
from repro.hive.os import HiveConfig, HiveOS
from repro.hive.filesystem import FileService

__all__ = [
    "Cell",
    "CellDownError",
    "FileService",
    "HiveConfig",
    "HiveOS",
    "KernelMemoryError",
    "RpcEndpoint",
    "RpcError",
]
