"""A FLASH node: processor + L2 cache + MAGIC + memory slice + I/O."""

from repro.node.cache import Cache
from repro.node.magic import Magic
from repro.node.processor import Processor


class Node:
    """One node of the machine."""

    def __init__(self, sim, params, node_id, address_map, network,
                 l2_capacity_lines, hooks=None, firewall_enabled=True,
                 speculation_rate=0.0):
        self.sim = sim
        self.node_id = node_id
        self.cache = Cache(node_id, l2_capacity_lines)
        self.magic = Magic(sim, params, node_id, address_map, network,
                           hooks=hooks, firewall_enabled=firewall_enabled)
        self.processor = Processor(sim, params, node_id, self.magic,
                                   self.cache,
                                   speculation_rate=speculation_rate)
        self.failed = False

    def start(self):
        self.magic.start()

    def fail(self):
        """Hard node failure: everything on the node is lost (§3.1)."""
        self.failed = True
        self.processor.kill()
        self.magic.fail()

    def wedge(self):
        """MAGIC firmware infinite loop (§3.1): the node effectively fails
        but its inbound buffers keep back-pressuring the interconnect."""
        self.failed = True
        self.magic.wedge()

    @property
    def memory(self):
        return self.magic.memory

    @property
    def directory(self):
        return self.magic.directory

    @property
    def io_device(self):
        return self.magic.io_device

    def __repr__(self):
        return "<Node %d%s>" % (self.node_id,
                                " FAILED" if self.failed else "")
