"""L2 cache model.

Capacity is tracked in lines; replacement is LRU.  A dirty (EXCLUSIVE)
eviction produces a writeback that carries the only valid copy of the line —
this is the efficiency choice the paper calls out as a fault-containment
hazard (§3.2: a lost writeback makes the line incoherent).

The cache-flush operation used by recovery phase P4 (§4.5) walks every line:
dirty lines are written back to their homes, clean lines are simply dropped,
leaving the cache empty.
"""

from collections import OrderedDict

from repro.common.types import CacheState


class CacheLine:
    __slots__ = ("state", "value")

    def __init__(self, state, value):
        self.state = state
        self.value = value

    def __repr__(self):
        return "<CacheLine %s %r>" % (self.state.value, self.value)


class Cache:
    """Fully associative LRU cache of coherence lines."""

    def __init__(self, node_id, capacity_lines):
        self.node_id = node_id
        self.capacity_lines = capacity_lines
        self._lines = OrderedDict()    # line_address -> CacheLine (LRU order)
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._lines)

    @property
    def fill_ratio(self):
        return len(self._lines) / self.capacity_lines

    def lookup(self, line_address, for_write=False):
        """Return the line if the access hits, else None.

        A write to a SHARED line is a miss (needs exclusivity).
        """
        line = self._lines.get(line_address)
        if line is None:
            self.misses += 1
            return None
        if for_write and line.state != CacheState.EXCLUSIVE:
            self.misses += 1
            return None
        self._lines.move_to_end(line_address)
        self.hits += 1
        return line

    def contains(self, line_address):
        return line_address in self._lines

    def state_of(self, line_address):
        line = self._lines.get(line_address)
        return line.state if line else CacheState.INVALID

    def value_of(self, line_address):
        line = self._lines.get(line_address)
        return line.value if line else None

    def fill(self, line_address, value, state):
        """Insert a line; returns an eviction victim (address, line) or None."""
        victim = None
        if (line_address not in self._lines
                and len(self._lines) >= self.capacity_lines):
            victim = self._lines.popitem(last=False)   # LRU
        self._lines[line_address] = CacheLine(state, value)
        self._lines.move_to_end(line_address)
        return victim

    def write(self, line_address, value):
        """Perform a store to a line held EXCLUSIVE."""
        line = self._lines[line_address]
        if line.state != CacheState.EXCLUSIVE:
            raise RuntimeError(
                "store to non-exclusive line 0x%x on node %d"
                % (line_address, self.node_id))
        line.value = value

    def invalidate(self, line_address):
        """Drop a line (invalidation); returns its value if it was dirty."""
        line = self._lines.pop(line_address, None)
        if line is not None and line.state == CacheState.EXCLUSIVE:
            return line.value
        return None

    def downgrade(self, line_address):
        """EXCLUSIVE -> SHARED (on a forwarded GET); returns the value."""
        line = self._lines.get(line_address)
        if line is None:
            return None
        line.state = CacheState.SHARED
        return line.value

    def flush_all(self):
        """Empty the cache; returns [(address, value)] for the dirty lines."""
        dirty = [(address, line.value)
                 for address, line in self._lines.items()
                 if line.state == CacheState.EXCLUSIVE]
        self._lines.clear()
        return dirty

    def dirty_lines(self):
        return [(address, line.value)
                for address, line in self._lines.items()
                if line.state == CacheState.EXCLUSIVE]

    def resident_lines(self):
        return list(self._lines.keys())

    def drop_all(self):
        """Lose all contents without writebacks (node failure)."""
        self._lines.clear()
