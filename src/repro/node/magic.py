"""The MAGIC programmable node controller.

MAGIC sits between the processor (PI), the network (NI), the node's memory
and its I/O devices.  A single dispatch process services both interfaces,
running a *handler* per message with a cost model taken from the paper
(120 ns for the common remote-read handler).

Fault-containment features implemented here (paper Table 6.1):

* **node map** — checked before every outgoing request; references to failed
  homes are terminated immediately with a bus error (§3.1, §3.2);
* **exception-vector remap** — low physical addresses are served from the
  node-local replica (§3.2);
* **firewall** — per-4KB-page write ACLs checked on exclusive fetches (§3.3);
* **range check** — the MAGIC-protected region of local memory rejects all
  processor writes (§3.3);
* **uncached I/O containment** — uncached accesses from outside the local
  failure unit are bus-errored (§3.3);
* **memory-operation timeouts** and **NAK counters** — the failure detectors
  that trigger recovery (§4.2);
* **truncated-message dispatch** — a truncated packet triggers recovery
  (§4.2);
* **firmware assertions** — protocol invariant checks that trigger recovery
  instead of corrupting state (§4.2);
* **drain mode** — during interconnect recovery, incoming requests are
  fielded without generating replies, and the delivery timestamps feed the
  tau-quiet drain agreement (§4.4);
* **recovery services** — cache flush, directory scan/reset, incoherent-line
  marking, and the saved-uncached-read buffer (§4.2, §4.5).
"""

from repro.common.errors import BusError
from repro.common.types import AccessKind, BusErrorKind, DirState, Lane
from repro.coherence.directory import Directory
from repro.coherence.messages import MessageKind, make_packet
from repro.coherence.protocol import ProtocolEngine
from repro.interconnect.packet import (
    ROUTER_CTRL_ACK,
    ROUTER_PROBE_REPLY,
    merge_causes,
)
from repro.node.iodevice import IODevice
from repro.node.memory import NodeMemory, initial_value
from repro.sim import AnyOf, Channel, Event


class NullHooks:
    """Default no-op instrumentation hooks (the oracle overrides these)."""

    def on_store(self, node_id, line_address, value):
        pass

    def on_put_sent(self, node_id, line_address, value):
        pass

    def on_put_absorbed(self, home_id, line_address):
        pass

    def on_line_marked_incoherent(self, home_id, line_address):
        pass

    def on_recovery_triggered(self, node_id, reason):
        pass

    def on_bus_error(self, node_id, error):
        pass


class MagicStats:
    def __init__(self):
        self.handlers_run = 0
        self.pi_requests = 0
        self.naks_sent = 0
        self.naks_received = 0
        self.bus_errors = 0
        self.timeouts = 0
        self.nak_overflows = 0
        self.assertion_failures = 0
        self.truncated_received = 0
        self.stray_messages = 0
        self.firewall_rejections = 0
        self.range_check_rejections = 0
        self.drained_messages = 0


class _Outstanding:
    """One in-flight PI request awaiting its reply."""

    __slots__ = ("op", "event", "kind", "line", "nak_count", "timer",
                 "request_payload", "dst", "invalidated")

    def __init__(self, op, event, kind, line, payload, dst):
        self.op = op
        self.event = event
        self.kind = kind
        self.line = line
        self.nak_count = 0
        self.timer = None
        self.request_payload = payload
        self.dst = dst
        self.invalidated = False   # INVAL crossed the fill in flight


class Magic:
    """Node controller for one FLASH node."""

    def __init__(self, sim, params, node_id, address_map, network,
                 hooks=None, firewall_enabled=True):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.address_map = address_map
        self.network = network
        self.ni = network.interface(node_id)
        self.router = network.router(node_id)
        self.hooks = hooks or NullHooks()
        self.firewall_enabled = firewall_enabled

        self.memory = NodeMemory(node_id, address_map)
        base = address_map.node_base(node_id)
        self.directory = Directory(
            node_id, base, address_map.mem_per_node, address_map.line_size)
        self.io_device = IODevice(node_id)
        self.cache = None          # set by Node (the processor's L2)

        self.node_map = set(range(address_map.num_nodes))
        self.failure_unit = frozenset({node_id})
        self.firewall = {}         # page address -> frozenset of writer nodes

        self.protocol = ProtocolEngine(self)

        self.pi_queue = Channel(sim, name="magic%d.pi" % node_id)
        self.recovery_inbox = Channel(sim, name="magic%d.rec" % node_id)
        self.os_inbox = Channel(sim, name="magic%d.os" % node_id)
        self.outstanding = {}      # line or ("uc", seq) -> _Outstanding
        self._uc_seq = 0
        self.pending_uc = None     # saved uncached op across recovery (§4.2)

        self.failed = False
        self.wedged = False
        self.drain_mode = False
        self.in_recovery = False
        self.suppress_detection = False
        self.last_normal_delivery = 0.0

        #: callback installed by the recovery manager:
        #: fn(node_id, reason) -> None
        self.recovery_trigger = None
        self.stats = MagicStats()
        self.trace = None           # telemetry recorder (None: disabled)
        self.metrics = None         # live metrics registry (None: disabled)
        self._proc = None

        # Causal context (forensics, DESIGN.md §11).  ``_cause``/
        # ``_cause_root`` hold the lineage of the packet currently being
        # handled, so messages the handler fans out inherit provenance.
        # ``fault_lineage`` is set by the injector when this controller
        # itself is the fault; ``recovery_cause`` points at the current
        # episode.begin while this node runs recovery.  All pure data —
        # with telemetry off these stay None and nothing reads them on the
        # hot path beyond plain attribute loads.
        self._cause = None
        self._cause_root = None
        self.fault_lineage = None
        self.recovery_cause = None
        self.last_trigger_cause = None

    # ------------------------------------------------------------------ wiring

    def start(self):
        self._proc = self.sim.spawn(
            self._dispatch_loop(), name="magic%d" % self.node_id)

    def set_failure_unit(self, node_ids):
        self.failure_unit = frozenset(node_ids)

    def set_firewall(self, page_address, writer_nodes):
        """Grant write (fetch-exclusive) access to a page (paper §3.3)."""
        self.firewall[page_address] = frozenset(writer_nodes)

    def firewall_allows(self, page_address, writer_node):
        if not self.firewall_enabled:
            return True
        allowed = self.firewall.get(page_address)
        if allowed is None:
            return True      # unconfigured pages are open (boot state)
        return writer_node in allowed

    # ------------------------------------------------------------- dispatch loop

    def _dispatch_loop(self):
        while True:
            if self.failed:
                yield Event(self.sim)   # never resumes: controller is dead
                return
            if self.wedged:
                # Firmware infinite loop: stop accepting packets (§3.1).
                yield Event(self.sim)
                return
            packet = self.ni.try_receive()
            if packet is not None:
                self._cause = packet.cause_eid
                self._cause_root = packet.root_cause
                cost = self._handle_network(packet)
                self._cause = None
                self._cause_root = None
                self.stats.handlers_run += 1
                yield cost
                continue
            request = self.pi_queue.try_get()
            if request is not None:
                cost = self._handle_pi(request)
                self.stats.pi_requests += 1
                yield cost
                continue
            yield AnyOf([self.ni.inbox.watch(), self.pi_queue.watch()])

    # ------------------------------------------------------------ network side

    def _handle_network(self, packet):
        if packet.truncated:
            # A truncated packet proves a hardware fault occurred (§4.2).
            self.stats.truncated_received += 1
            detect_eid = None
            tr = self.trace
            if tr is not None:
                detect_eid = tr.emit("detect", "truncated",
                                     node=self.node_id, cause=self._cause,
                                     kind=str(packet.kind), src=packet.src,
                                     root=self._cause_root)
            self._fail_pending_access_with(
                BusErrorKind.TRUNCATED_DATA, packet)
            self.trigger_recovery("truncated_packet", cause=detect_eid)
            return self.params.short_handler_time

        kind = packet.kind
        if isinstance(kind, MessageKind):
            if kind in _RECOVERY_KINDS:
                return self._handle_recovery_packet(packet)
            if self.drain_mode:
                return self._handle_drained(packet)
            if kind == MessageKind.OS_MSG:
                self.os_inbox.put(packet)
                return self.params.handler_time
            if kind in _REPLY_KINDS:
                return self._handle_reply(packet)
            if kind == MessageKind.INVAL and packet.payload is not None:
                # The directory can invalidate us between the moment the
                # old owner's SHARING_WB registered us as a sharer and the
                # moment its DATA_SHARED actually arrives.  The fill that
                # crosses this INVAL must not install a stale SHARED copy:
                # poison the outstanding entry so the data completes the
                # load once and is discarded (use-once semantics).
                pending = self.outstanding.get(packet.payload.get("line"))
                if pending is not None and pending.kind == MessageKind.GET:
                    pending.invalidated = True
            return self.protocol.handle(packet)

        # String-kind packets are router-generated replies (probe replies,
        # control acks): they belong to the recovery algorithm.
        if kind in _ROUTER_REPLY_KINDS:
            self.recovery_inbox.put(packet)
            return self.params.short_handler_time

        self.stats.stray_messages += 1
        return self.params.short_handler_time

    def _handle_recovery_packet(self, packet):
        if packet.kind == MessageKind.PING and not self.in_recovery:
            self.trigger_recovery("ping", cause=self._cause)
        self.recovery_inbox.put(packet)
        return self.params.short_handler_time

    def _handle_drained(self, packet):
        """Field a message during drain mode without generating replies
        (paper §4.4)."""
        self.last_normal_delivery = self.sim.now
        self.stats.drained_messages += 1
        kind = packet.kind
        if kind == MessageKind.PUT and packet.payload is not None:
            # Writebacks that make it home during the drain still preserve
            # their data: this is precisely why traffic is drained rather
            # than dropped.
            line = packet.payload["line"]
            if self.directory.owns(line):
                entry = self.directory.entry(line)
                self.memory.write_line(line, packet.payload["value"])
                entry.memory_valid = True
                if entry.owner == packet.src:
                    entry.owner = None
                self.hooks.on_put_absorbed(self.node_id, line)
        elif kind == MessageKind.DATA_EXCL and packet.payload is not None:
            # An exclusive grant for a request that recovery NAK'd: the
            # packet carries the line's valid copy and we now own a line we
            # never asked to keep.  Return it home as a writeback so the
            # directory scan does not mark it incoherent — this is what
            # keeps intra-unit traffic lossless when the fault was
            # elsewhere (§3.3).
            self._return_orphan_grant(packet)
        elif kind == MessageKind.UC_DATA or kind == MessageKind.UC_ACK:
            # The saved-buffer mechanism for pending uncached reads (§4.2).
            self._capture_uc_reply(packet)
        return self.params.handler_time

    def _return_orphan_grant(self, packet):
        line = packet.payload["line"]
        self.send_put(line, packet.payload["value"])

    # -------------------------------------------------------------- reply side

    def _handle_reply(self, packet):
        kind = packet.kind
        payload = packet.payload or {}
        if kind in (MessageKind.UC_DATA, MessageKind.UC_ACK):
            return self._complete_uncached(packet)
        if kind == MessageKind.SCRUB_ACK:
            return self._complete_scrub(packet)

        line = payload.get("line")
        pending = self.outstanding.get(line)
        if pending is None:
            if kind == MessageKind.DATA_EXCL:
                # A straggler exclusive grant for a long-canceled request:
                # never strand ownership — send the data home.
                self._return_orphan_grant(packet)
                return self.params.handler_time
            self.stats.stray_messages += 1
            return self.params.short_handler_time

        if kind == MessageKind.NAK:
            return self._handle_nak(pending)
        if kind == MessageKind.BUS_ERROR_REPLY:
            self._finish_outstanding(line)
            error = BusError(payload["error_kind"], payload.get(
                "address", line), payload.get("detail", ""))
            self.stats.bus_errors += 1
            self.hooks.on_bus_error(self.node_id, error)
            pending.event.trigger(("error", error))
            return self.params.handler_time
        if kind == MessageKind.DATA_SHARED:
            self._finish_outstanding(line)
            self._fill_and_complete(pending, payload["value"],
                                    exclusive=False)
            return self.params.handler_time
        if kind == MessageKind.DATA_EXCL:
            self._finish_outstanding(line)
            self._fill_and_complete(pending, payload["value"],
                                    exclusive=True)
            return self.params.handler_time
        self.stats.stray_messages += 1
        return self.params.short_handler_time

    def _fill_and_complete(self, pending, value, exclusive):
        from repro.common.types import CacheState
        if pending.invalidated and not exclusive:
            # Invalidated while the fill was in flight: the load is
            # ordered before the conflicting store, so the value may
            # satisfy it exactly once, but the line must not be cached.
            pending.event.trigger(("ok", value))
            return
        state = CacheState.EXCLUSIVE if exclusive else CacheState.SHARED
        victim = self.cache.fill(pending.line, value, state)
        if victim is not None:
            self._write_back_victim(*victim)
        result_value = value
        op = pending.op
        if (getattr(op, "kind", None) == AccessKind.STORE
                and not getattr(op, "speculative", False)):
            # Speculative stores fetch the line exclusive but never write
            # it (§3.3) — the data in the cache stays the memory copy.
            self.cache.write(pending.line, op.value)
            self.hooks.on_store(self.node_id, pending.line, op.value)
            result_value = op.value
        pending.event.trigger(("ok", result_value))

    def _write_back_victim(self, line_address, cache_line):
        from repro.common.types import CacheState
        if cache_line.state != CacheState.EXCLUSIVE:
            return   # clean victims are dropped silently
        self.send_put(line_address, cache_line.value)

    def send_put(self, line_address, value):
        """Send a dirty line home; the message carries the only valid copy."""
        home = self.address_map.home_of(line_address)
        self.hooks.on_put_sent(self.node_id, line_address, value)
        if home == self.node_id:
            # Local home: absorb directly (no network traversal).
            entry = self.directory.entry(line_address)
            self.memory.write_line(line_address, value)
            entry.memory_valid = True
            if entry.owner == self.node_id:
                entry.owner = None
            if entry.state == DirState.EXCLUSIVE:
                entry.unlock(DirState.UNOWNED)
            self.hooks.on_put_absorbed(self.node_id, line_address)
            return
        self.send_message(home, MessageKind.PUT,
                          {"line": line_address, "value": value})

    def _handle_nak(self, pending):
        self.stats.naks_received += 1
        pending.nak_count += 1
        if pending.nak_count >= self.params.nak_counter_limit:
            # NAK counter overflow: likely deadlock after a fault (§4.2).
            self.stats.nak_overflows += 1
            detect_eid = None
            tr = self.trace
            if tr is not None:
                # The overflow itself descends from the NAK being handled;
                # the silent component that wedged the line is attributed
                # via the network's best-effort heuristic.
                root, cause = self._cause_root, self._cause
                lineage = self.network.fault_lineage_of(pending.dst)
                if lineage is not None:
                    if root is None:
                        root = lineage[0]
                    cause = merge_causes(cause, lineage[1])
                detect_eid = tr.emit("detect", "nak_overflow",
                                     node=self.node_id, cause=cause,
                                     line=pending.line,
                                     naks=pending.nak_count, root=root)
            self.trigger_recovery("nak_overflow", cause=detect_eid)
            return self.params.short_handler_time
        self.sim.schedule(
            self.params.nak_retry_interval, self._retry, pending)
        return self.params.short_handler_time

    def _retry(self, pending):
        if self.failed or self.in_recovery:
            return
        if self.outstanding.get(pending.line) is not pending:
            return
        # A retry is a fresh request epoch: the home cannot service it
        # until the old INVAL's ack has been consumed, so any poison
        # from the previous epoch is stale.
        pending.invalidated = False
        self._send_request_packet(pending)

    # ---------------------------------------------------------------- PI side

    def pi_request(self, op):
        """Processor issues a memory operation; returns a completion event.

        The event triggers with ``("ok", value)``, ``("error", BusError)``
        or — when recovery tears the request down — never (the processor is
        interrupted instead and reissues after recovery, §4.2).
        """
        event = Event(self.sim, name="pi%d" % self.node_id)
        self.pi_queue.put((op, event))
        return event

    def _handle_pi(self, request):
        op, event = request
        if self.in_recovery:
            # Memory system suspended: the issuer must retry after recovery.
            event.trigger(("requeue", None))
            return self.params.short_handler_time
        kind = op.kind
        if kind in (AccessKind.LOAD, AccessKind.STORE):
            return self._pi_cacheable(op, event)
        if kind in (AccessKind.UNCACHED_LOAD, AccessKind.UNCACHED_STORE):
            return self._pi_uncached(op, event)
        if kind == AccessKind.FLUSH:
            return self._pi_flush(op, event)
        raise AssertionError("unknown PI op %r" % (op,))

    def _pi_cacheable(self, op, event):
        address = op.address
        if self.address_map.is_vector_range(address):
            # Remap: serve from the node-local vector replica (§3.2).
            if op.kind == AccessKind.STORE:
                error = BusError(BusErrorKind.RANGE_CHECK, address,
                                 "exception vectors are read-only")
                return self._pi_bus_error(event, error)
            event.trigger(("ok", self.memory.read_vector(address)))
            return self.params.memory_access

        line = self.address_map.line_address(address)

        if (op.kind == AccessKind.STORE
                and self.address_map.is_magic_region(address)
                and self.address_map.home_of(address) == self.node_id):
            # Range check: local MAGIC region rejects processor writes (§3.3).
            self.stats.range_check_rejections += 1
            error = BusError(BusErrorKind.RANGE_CHECK, address,
                             "MAGIC-protected region")
            return self._pi_bus_error(event, error)

        home = self.address_map.home_of(line)
        if home not in self.node_map:
            # Node map check: the home has failed; terminate immediately
            # rather than stalling the processor (§3.1, §3.2).
            error = BusError(BusErrorKind.INACCESSIBLE_NODE, address,
                             "home node %d unavailable" % home)
            return self._pi_bus_error(event, error)

        message = (MessageKind.GET if op.kind == AccessKind.LOAD
                   else MessageKind.GETX)
        payload = {"line": line, "requester": self.node_id}
        pending = _Outstanding(op, event, message, line, payload, home)
        self.outstanding[line] = pending
        self._send_request_packet(pending)
        return self.params.short_handler_time

    def _pi_bus_error(self, event, error):
        self.stats.bus_errors += 1
        self.hooks.on_bus_error(self.node_id, error)
        event.trigger(("error", error))
        return self.params.short_handler_time

    def _send_request_packet(self, pending):
        pending.timer = self.sim.schedule(
            self.params.memory_op_timeout, self._request_timeout, pending)
        if pending.dst == self.node_id:
            # Local home: hand straight to the protocol engine.
            packet = make_packet(self.params, self.node_id, self.node_id,
                                 pending.kind, dict(pending.request_payload))
            packet.root_cause, packet.cause_eid = self.current_lineage()
            self.ni.inbox.put(packet)
            return
        self.send_message(pending.dst, pending.kind,
                          dict(pending.request_payload))

    def _request_timeout(self, pending):
        if self.failed or self.outstanding.get(pending.line) is not pending:
            return
        # Memory operation timeout: the home or the path to it failed (§4.2).
        self.stats.timeouts += 1
        detect_eid = None
        tr = self.trace
        if tr is not None:
            # A timeout observes nothing (§4.2) — attribute it to the
            # target's recorded fault, or the latest injection (heuristic).
            lineage = self.network.fault_lineage_of(pending.dst)
            detect_eid = tr.emit(
                "detect", "timeout", node=self.node_id,
                cause=None if lineage is None else lineage[1],
                line=pending.line, dst=pending.dst,
                root=None if lineage is None else lineage[0])
        self.trigger_recovery("memory_op_timeout", cause=detect_eid)

    def _finish_outstanding(self, key):
        pending = self.outstanding.pop(key, None)
        if pending is not None and pending.timer is not None:
            # Dropping the handle lets the engine's lazy-deletion pass
            # reclaim the dead heap entry without anyone re-cancelling it.
            pending.timer.cancel()
            pending.timer = None
        return pending

    # ------------------------------------------------------------ uncached ops

    def _pi_uncached(self, op, event):
        address = op.address
        home = self.address_map.home_of(address)
        if home not in self.node_map:
            error = BusError(BusErrorKind.INACCESSIBLE_NODE, address,
                             "home node %d unavailable" % home)
            return self._pi_bus_error(event, error)
        if home == self.node_id:
            value = self._perform_local_uncached(op)
            event.trigger(("ok", value))
            return self.params.memory_access
        kind = (MessageKind.UC_READ
                if op.kind == AccessKind.UNCACHED_LOAD
                else MessageKind.UC_WRITE)
        self._uc_seq += 1
        key = ("uc", self._uc_seq)
        payload = {"address": address, "requester": self.node_id,
                   "uc_key": key,
                   "value": getattr(op, "value", None)}
        pending = _Outstanding(op, event, kind, key, payload, home)
        self.outstanding[key] = pending
        self.pending_uc = {"key": key, "op": op, "saved": None,
                           "arrived": False}
        pending.timer = self.sim.schedule(
            self.params.memory_op_timeout, self._request_timeout, pending)
        self.send_message(home, kind, payload)
        return self.params.short_handler_time

    def _perform_local_uncached(self, op):
        address = op.address
        if self.address_map.is_io_region(address):
            register = address - self.address_map.io_region_start(self.node_id)
            if op.kind == AccessKind.UNCACHED_LOAD:
                return self.io_device.read(register)
            self.io_device.write(register, op.value)
            return None
        line = self.address_map.line_address(address)
        if op.kind == AccessKind.UNCACHED_LOAD:
            return self.memory.read_line(line)
        self.memory.write_line(line, op.value)
        return None

    def _complete_uncached(self, packet):
        payload = packet.payload or {}
        key = payload.get("uc_key")
        pending = self.outstanding.get(key)
        if pending is None:
            self.stats.stray_messages += 1
            return self.params.short_handler_time
        self._finish_outstanding(key)
        if self.pending_uc is not None and self.pending_uc["key"] == key:
            self.pending_uc = None
        if payload.get("error_kind") is not None:
            error = BusError(payload["error_kind"], payload.get(
                "address", 0), payload.get("detail", ""))
            self.stats.bus_errors += 1
            self.hooks.on_bus_error(self.node_id, error)
            pending.event.trigger(("error", error))
        else:
            pending.event.trigger(("ok", payload.get("value")))
        return self.params.handler_time

    # ------------------------------------------------------------- page scrub

    def request_scrub(self, page_address):
        """OS service: reset a page's incoherent lines at its home (§4.6).

        Returns an event triggering with ``("ok", lines_reset)``.
        """
        event = Event(self.sim, name="scrub%d" % self.node_id)
        home = self.address_map.home_of(page_address)
        if home == self.node_id:
            event.trigger(("ok", self.scrub_page(page_address)))
            return event
        if home not in self.node_map:
            event.trigger(("error", BusError(
                BusErrorKind.INACCESSIBLE_NODE, page_address,
                "scrub target home unavailable")))
            return event
        self._uc_seq += 1
        key = ("scrub", self._uc_seq)
        self.outstanding[key] = _Outstanding(
            None, event, MessageKind.PAGE_SCRUB, key, None, home)
        self.send_message(home, MessageKind.PAGE_SCRUB,
                          {"page": page_address,
                           "requester": self.node_id, "scrub_key": key})
        return event

    def _complete_scrub(self, packet):
        payload = packet.payload or {}
        key = payload.get("scrub_key")
        pending = self.outstanding.pop(key, None)
        if pending is None:
            self.stats.stray_messages += 1
            return self.params.short_handler_time
        pending.event.trigger(("ok", payload.get("reset", 0)))
        return self.params.short_handler_time

    def _capture_uc_reply(self, packet):
        """Save the result of a pending uncached read that arrives during
        recovery into an internal buffer (§4.2)."""
        payload = packet.payload or {}
        key = payload.get("uc_key")
        if self.pending_uc is not None and self.pending_uc["key"] == key:
            self.pending_uc["saved"] = payload.get("value")
            self.pending_uc["arrived"] = True

    def consume_saved_uncached(self, op):
        """After recovery, emulate the pending uncached instruction using
        the saved buffer rather than reissuing it (exactly-once, §4.2).

        Returns ``(True, value)`` if the reply was captured, else
        ``(False, None)`` (the op was never sent or its home died with our
        failure unit).
        """
        if (self.pending_uc is not None
                and self.pending_uc["op"] is op
                and self.pending_uc["arrived"]):
            value = self.pending_uc["saved"]
            self.pending_uc = None
            return True, value
        return False, None

    # ------------------------------------------------------------------ flush

    def _pi_flush(self, op, event):
        line = self.address_map.line_address(op.address)
        value = self.cache.invalidate(line)
        if value is not None:
            self.send_put(line, value)
        event.trigger(("ok", None))
        return self.params.short_handler_time

    # ----------------------------------------------------------------- sending

    def current_lineage(self):
        """(root id, parent eid) stamped onto the next outgoing packet.

        Priority: a fault injected into this controller (everything a rogue
        firmware sends is tainted, §3.3) > the packet currently being
        handled (fan-out inherits provenance) > the recovery episode this
        node is participating in.
        """
        lineage = self.fault_lineage
        if lineage is not None:
            return lineage
        if self._cause is not None or self._cause_root is not None:
            return (self._cause_root, self._cause)
        lineage = self.recovery_cause
        if lineage is not None:
            return lineage
        return _NO_LINEAGE

    def send_message(self, dst, kind, payload, lane=None, source_route=None,
                     delay=0.0, lineage=None):
        """Send a protocol or recovery message; honors the node map.

        ``delay`` models handler work that happens *before* the reply
        leaves (e.g. the firewall check on intercell writes, §6.2) and is
        therefore visible in the requester's latency.
        """
        if self.failed:
            return
        if lineage is None:
            lineage = self.current_lineage()
        if delay:
            # Capture the causal context now; the handler that justified
            # the delayed send is long gone when the packet leaves.
            self.sim.schedule(delay, self.send_message, dst, kind, payload,
                              lane, source_route, 0.0, lineage)
            return
        if dst == self.node_id and source_route is None:
            packet = make_packet(self.params, self.node_id, dst, kind,
                                 payload, lane=lane)
            packet.root_cause, packet.cause_eid = lineage
            self.ni.inbox.put(packet)
            return
        if (lane is None and dst is not None and dst not in self.node_map):
            # Node map: never send normal traffic toward failed nodes (§3.1).
            return
        packet = make_packet(self.params, self.node_id, dst, kind, payload,
                             lane=lane, source_route=source_route)
        packet.root_cause, packet.cause_eid = lineage
        self.ni.send(packet)

    def send_recovery(self, dst, kind, payload, source_route,
                      lane=Lane.RECOVERY_A):
        """Send a source-routed packet on a dedicated recovery lane (§4.1)."""
        self.send_message(dst, kind, payload, lane=lane,
                          source_route=source_route)

    # -------------------------------------------------------- failure detection

    def trigger_recovery(self, reason, cause=None):
        if self.failed or self.suppress_detection:
            return
        trig_eid = None
        tr = self.trace
        if tr is not None:
            trig_eid = tr.emit("recovery", "trigger", node=self.node_id,
                               cause=cause, reason=reason)
        # Side-channel for the manager (the callback signature is part of
        # the public API and stays (node_id, reason)).
        self.last_trigger_cause = trig_eid
        self.hooks.on_recovery_triggered(self.node_id, reason)
        if self.recovery_trigger is not None:
            self.recovery_trigger(self.node_id, reason)

    def firmware_assert(self, condition, message):
        """A MAGIC firmware assertion (§4.2): failure triggers recovery."""
        if condition:
            return True
        self.stats.assertion_failures += 1
        self.trigger_recovery("assertion:%s" % message, cause=self._cause)
        return False

    def _fail_pending_access_with(self, error_kind, packet):
        """A truncated data reply poisons the access it was servicing."""
        payload = packet.payload if isinstance(packet.payload, dict) else {}
        line = payload.get("line") if payload else None
        if line is None:
            return
        pending = self._finish_outstanding(line)
        if pending is not None:
            error = BusError(error_kind, line, "packet truncated in flight")
            self.stats.bus_errors += 1
            pending.event.trigger(("error", error))

    # --------------------------------------------------------- recovery services

    def enter_recovery(self):
        """Tear down normal operation at the start of recovery (§4.2):
        NAK pending cacheable requests (they will be reissued), keep pending
        uncached reads in the saved buffer, and stop failure detection."""
        self.in_recovery = True
        self.suppress_detection = True
        self.pi_queue.clear()   # the processor is interrupted; queued ops
                                # will be reissued after recovery
        for pending in self.outstanding.values():
            # Uncached ops keep listening for the reply via the saved
            # buffer; cacheable ops are NAKed and reissued — either way
            # the per-op timeout timer dies here.
            if pending.timer is not None:
                pending.timer.cancel()
                pending.timer = None
        self.outstanding.clear()

    def set_drain_mode(self, enabled):
        self.drain_mode = enabled

    def exit_recovery(self):
        self.in_recovery = False
        self.drain_mode = False
        self.suppress_detection = False
        self.recovery_cause = None

    def flush_caches_home(self):
        """Recovery P4: flush the processor cache, sending dirty lines home.

        Returns (lines_flushed, writebacks_sent) for cost accounting.
        """
        dirty = self.cache.flush_all()
        for line_address, value in dirty:
            self.send_put(line_address, value)
        return self.cache.capacity_lines, len(dirty)

    def scan_and_reset_directory(self):
        """Recovery P4: mark lost lines incoherent, reset everything else
        (§4.5).  Returns (scanned, marked) counts.
        """
        marked = 0
        for line_address in self.directory.touched_lines():
            entry = self.directory.peek(line_address)
            if entry.state == DirState.INCOHERENT:
                continue   # already marked in an earlier recovery
            if not entry.memory_valid:
                # Still cached exclusive after the flush: the only valid
                # copy is gone.
                entry.unlock(DirState.INCOHERENT)
                self.hooks.on_line_marked_incoherent(
                    self.node_id, line_address)
                marked += 1
            else:
                entry.unlock(DirState.UNOWNED)
                entry.sharers = set()
                entry.owner = None
        return self.directory.total_lines, marked

    def scan_directory_reliable(self, failed_nodes):
        """Recovery P4 variant for a machine with end-to-end reliable
        coherence transport (paper §6.3, HAL discussion): no cache flush is
        needed, but the directories must still be scanned and updated to
        reflect the loss of lines cached in the failed portion.

        Returns (scanned, marked) like :meth:`scan_and_reset_directory`.
        """
        failed_nodes = set(failed_nodes)
        marked = 0
        for line_address in self.directory.touched_lines():
            entry = self.directory.peek(line_address)
            if entry.state == DirState.INCOHERENT:
                continue
            if entry.state == DirState.EXCLUSIVE:
                if entry.owner in failed_nodes:
                    entry.unlock(DirState.INCOHERENT)
                    self.hooks.on_line_marked_incoherent(
                        self.node_id, line_address)
                    marked += 1
                # surviving owner keeps its (unflushed) dirty copy
            elif entry.state == DirState.SHARED:
                entry.sharers -= failed_nodes
                if not entry.sharers:
                    entry.state = DirState.UNOWNED
            elif entry.state == DirState.LOCKED:
                survivors = entry.sharers - failed_nodes
                if entry.memory_valid:
                    entry.unlock(DirState.SHARED if survivors
                                 else DirState.UNOWNED)
                    entry.sharers = survivors
                    entry.owner = None
                else:
                    entry.unlock(DirState.INCOHERENT)
                    self.hooks.on_line_marked_incoherent(
                        self.node_id, line_address)
                    marked += 1
        return self.directory.total_lines, marked

    def scrub_page(self, page_address):
        """MAGIC service used by the OS to reset incoherent lines of a page
        before reuse (§4.6)."""
        reset = 0
        line_size = self.address_map.line_size
        for offset in range(0, self.address_map.page_size, line_size):
            line_address = page_address + offset
            entry = self.directory.peek(line_address)
            if entry is not None and entry.state == DirState.INCOHERENT:
                entry.unlock(DirState.UNOWNED)
                entry.sharers = set()
                entry.owner = None
                entry.memory_valid = True
                self.memory.write_line(
                    line_address, initial_value(line_address))
                reset += 1
        return reset

    def update_node_map(self, available_nodes):
        self.node_map = set(available_nodes)

    # ------------------------------------------------------------------- faults

    def fail(self):
        """Node failure: controller, memory and caches become unavailable."""
        self.failed = True
        self.ni.fail()
        for pending in self.outstanding.values():
            if pending.timer is not None:
                pending.timer.cancel()
                pending.timer = None
        self.outstanding.clear()
        if self.cache is not None:
            self.cache.drop_all()
        if self._proc is not None:
            self._proc.kill()

    def wedge(self):
        """Firmware infinite loop: stop accepting packets (§3.1)."""
        self.wedged = True
        if self._proc is not None:
            self._proc.kill()


#: "no causal context" sentinel unpacked onto outgoing packets
_NO_LINEAGE = (None, None)

_RECOVERY_KINDS = frozenset({
    MessageKind.PING, MessageKind.PING_REPLY, MessageKind.DISSEMINATE,
    MessageKind.BARRIER_UP, MessageKind.BARRIER_DOWN, MessageKind.RESTART,
    MessageKind.FLUSH_DONE,
})

_ROUTER_REPLY_KINDS = frozenset({ROUTER_PROBE_REPLY, ROUTER_CTRL_ACK})

_REPLY_KINDS = frozenset({
    MessageKind.DATA_SHARED, MessageKind.DATA_EXCL, MessageKind.NAK,
    MessageKind.BUS_ERROR_REPLY, MessageKind.UC_DATA, MessageKind.UC_ACK,
    MessageKind.SCRUB_ACK,
})
