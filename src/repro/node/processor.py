"""Workload-driven processor model.

A *program* is a Python generator that yields memory operations
(:class:`Load`, :class:`Store`, :class:`UncachedLoad`, :class:`UncachedStore`,
:class:`Compute`, :class:`FlushLine`) and receives each operation's result
back through ``send``.  Bus errors raised by MAGIC are thrown *into* the
program, mirroring how real code sees them as exceptions; a program that
does not catch one terminates (like a process taking SIGBUS).

The processor supports being **dropped into recovery**: MAGIC interrupts it
(the forced-cache-error analog of §4.2), it parks until recovery completes,
then resumes and reissues the interrupted cacheable reference.  A pending
uncached read is *not* reissued — its result is consumed from MAGIC's saved
buffer to preserve exactly-once semantics (§4.2).

An optional speculation model (off by default, matching the paper's R4000
runs) occasionally issues a write reference to an arbitrary address before
an op, modeling the R10000 speculating down a mispredicted branch (§3.3).
"""

import itertools

from repro.common.errors import BusError
from repro.common.types import AccessKind
from repro.sim import Event, Interrupt

_store_tokens = itertools.count(1)


class Load:
    kind = AccessKind.LOAD
    __slots__ = ("address",)

    def __init__(self, address):
        self.address = address

    def __repr__(self):
        return "Load(0x%x)" % self.address


class Store:
    kind = AccessKind.STORE
    speculative = False
    __slots__ = ("address", "value")

    def __init__(self, address, value=None):
        self.address = address
        self.value = value if value is not None else (
            "st", next(_store_tokens))

    def __repr__(self):
        return "Store(0x%x, %r)" % (self.address, self.value)


class SpeculativeStore(Store):
    """A write issued down a mispredicted path (paper §3.3).

    The R10000 may issue the exclusive fetch for a store that never
    architecturally executes: the line is pulled into the cache in
    exclusive mode, but no data is written.  If the node then fails, the
    arbitrary fetched line dies with it — which is why the firewall must
    be able to refuse exclusive fetches (§3.3).
    """

    speculative = True

    def __repr__(self):
        return "SpeculativeStore(0x%x)" % self.address


class UncachedLoad:
    kind = AccessKind.UNCACHED_LOAD
    __slots__ = ("address",)

    def __init__(self, address):
        self.address = address

    def __repr__(self):
        return "UncachedLoad(0x%x)" % self.address


class UncachedStore:
    kind = AccessKind.UNCACHED_STORE
    __slots__ = ("address", "value")

    def __init__(self, address, value):
        self.address = address
        self.value = value

    def __repr__(self):
        return "UncachedStore(0x%x, %r)" % (self.address, self.value)


class Compute:
    """Spend time without touching memory."""

    kind = "compute"
    __slots__ = ("duration",)

    def __init__(self, duration):
        self.duration = duration


class FlushLine:
    kind = AccessKind.FLUSH
    __slots__ = ("address",)

    def __init__(self, address):
        self.address = address


class ProcessorStats:
    def __init__(self):
        self.ops_executed = 0
        self.loads = 0
        self.stores = 0
        self.uncached_ops = 0
        self.bus_errors = 0
        self.recoveries_survived = 0
        self.speculative_references = 0


class Processor:
    """One R4000/R10000-style processor driving a workload program."""

    def __init__(self, sim, params, node_id, magic, cache,
                 speculation_rate=0.0):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.magic = magic
        self.cache = cache
        magic.cache = cache
        self.speculation_rate = speculation_rate
        self.stats = ProcessorStats()
        self.done = Event(sim, name="cpu%d.done" % node_id)
        self.program_result = None
        self.program_error = None
        self.halted = False
        self._proc = None
        #: event the processor waits on while recovery runs; recreated by
        #: the recovery manager for every recovery episode
        self.recovery_done = None

    @property
    def busy(self):
        """Is a program currently executing on this processor?"""
        return self._proc is not None and self._proc.alive

    def run_program(self, program, name=None):
        """Start executing a workload program; returns the driver process.

        May be called again after a previous program finished (per-program
        completion state is reset).
        """
        if self._proc is not None and self._proc.alive:
            raise RuntimeError(
                "processor %d is already running a program" % self.node_id)
        self.done = Event(self.sim, name="cpu%d.done" % self.node_id)
        self.program_result = None
        self.program_error = None
        self.halted = False
        self._proc = self.sim.spawn(
            self._run(program),
            name=name or "cpu%d" % self.node_id)
        return self._proc

    # ------------------------------------------------------------------- core

    def _run(self, program):
        to_send = None
        throw_error = None
        while True:
            try:
                if throw_error is not None:
                    error, throw_error = throw_error, None
                    op = program.throw(error)
                else:
                    op = program.send(to_send)
            except StopIteration as stop:
                self.program_result = stop.value
                break
            except BusError as error:
                # The program did not catch the bus error: it dies, like a
                # process taking SIGBUS.
                self.program_error = error
                break

            while True:
                try:
                    outcome = yield from self._execute(op)
                except Interrupt:
                    # Dropped into recovery: park, then retry the op.
                    retry = yield from self._park_for_recovery(op)
                    if retry is _RETRY:
                        continue
                    outcome = ("ok", retry)
                if outcome[0] == "requeue":
                    # The memory system refused the op (recovery raced our
                    # issue): park, then retry.
                    retry = yield from self._park_for_recovery(op)
                    if retry is _RETRY:
                        continue
                    outcome = ("ok", retry)
                break

            status, value = outcome
            if status == "ok":
                to_send = value
            else:
                self.stats.bus_errors += 1
                throw_error = value
        self.halted = True
        self.done.trigger(self.program_result)
        return self.program_result

    def _execute(self, op):
        """Execute one operation; returns ("ok", value) or ("error", err)."""
        self.stats.ops_executed += 1
        if op.kind == "compute":
            yield op.duration
            return ("ok", None)

        if self.speculation_rate and self.sim.rng.random() < self.speculation_rate:
            yield from self._speculate()

        if op.kind == AccessKind.LOAD:
            return (yield from self._cacheable(op, for_write=False))
        if op.kind == AccessKind.STORE:
            return (yield from self._cacheable(op, for_write=True))
        if op.kind in (AccessKind.UNCACHED_LOAD, AccessKind.UNCACHED_STORE):
            self.stats.uncached_ops += 1
            result = yield self.magic.pi_request(op)
            return result
        if op.kind == AccessKind.FLUSH:
            result = yield self.magic.pi_request(op)
            return result
        raise AssertionError("unknown op %r" % (op,))

    def _cacheable(self, op, for_write):
        if for_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        if not self.magic.address_map.is_vector_range(op.address):
            line = self.magic.address_map.line_address(op.address)
            hit = self.cache.lookup(line, for_write=for_write)
            if hit is not None:
                yield self.params.l1_hit_time
                if for_write:
                    self.cache.write(line, op.value)
                    self.magic.hooks.on_store(self.node_id, line, op.value)
                    return ("ok", op.value)
                return ("ok", hit.value)
        result = yield self.magic.pi_request(op)
        return result

    def _speculate(self):
        """Issue a stray *exclusive* fetch, as a mispredicted R10000 store
        would (§3.3); any bus error is discarded along with the result —
        mis-speculated references never raise architectural exceptions."""
        self.stats.speculative_references += 1
        address_map = self.magic.address_map
        address = self.sim.rng.randrange(
            0, address_map.total_memory, address_map.line_size)
        if address_map.is_vector_range(address):
            return
        spec_op = SpeculativeStore(address)
        yield self.magic.pi_request(spec_op)
        return

    def _park_for_recovery(self, op):
        """Wait out a recovery episode, then decide how to resume ``op``.

        Returns the sentinel ``_RETRY`` to reissue, or a value when the op
        was satisfied from the saved uncached buffer.
        """
        self.stats.recoveries_survived += 1
        while True:
            event = self.recovery_done
            if event is None:
                # Recovery manager not attached (unit tests): wait a beat.
                yield 1000.0
                return _RETRY
            try:
                yield event
                break
            except Interrupt:
                continue   # recovery restarted; keep waiting

        if op.kind == AccessKind.UNCACHED_LOAD:
            consumed, value = self.magic.consume_saved_uncached(op)
            if consumed:
                return value
        if op.kind == AccessKind.UNCACHED_STORE:
            consumed, _ = self.magic.consume_saved_uncached(op)
            if consumed:
                return None
        return _RETRY

    def kill(self):
        if self._proc is not None:
            self._proc.kill()
        self.halted = True

    def interrupt_for_recovery(self):
        """MAGIC forces the processor out of normal execution (§4.2)."""
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("recovery")


_RETRY = object()
