"""A node-attached I/O device with uncached register access.

Uncached reads and writes to device registers are **nonidempotent** (paper
§3.3): retrying one after a fault could repeat a side effect.  The device
therefore counts every operation, and tests assert exactly-once semantics
across recovery.  Hive avoids the problem across cells by requiring remote
I/O to go through RPC; MAGIC bus-errors direct uncached access from outside
the local failure unit.
"""


class IODevice:
    """Register file with operation counting."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.registers = {}
        #: per-register operation counts, for exactly-once assertions
        self.read_counts = {}
        self.write_counts = {}

    def read(self, register):
        self.read_counts[register] = self.read_counts.get(register, 0) + 1
        return self.registers.get(register, 0)

    def write(self, register, value):
        self.write_counts[register] = self.write_counts.get(register, 0) + 1
        # Model a nonidempotent side effect: writes accumulate.
        self.registers[register] = self.registers.get(register, 0) + value

    def total_operations(self):
        return (sum(self.read_counts.values())
                + sum(self.write_counts.values()))
