"""Per-node memory and the machine-wide address map.

FLASH distributes main memory across the nodes; each node is the *home* of a
contiguous range of physical addresses.  Two special regions matter for fault
containment:

* the **exception-vector range** (low physical addresses) is replicated on
  every node, and the node controllers remap references to it into
  node-local references (paper §3.2) — otherwise every processor in the
  machine would depend on node 0;
* the top of every node's memory is the **MAGIC-protected region** holding
  the node controller's code, data and protocol state; it is only writable
  by the local protocol processor, enforced by a range check (paper §3.3).

Line values are modeled as opaque tokens (ints) rather than bytes: what the
fault-containment machinery needs to get right is *which copy of a line is
current*, and token equality is exactly that check.
"""

from repro.common.errors import ConfigurationError
from repro.common.types import line_of


class AddressMap:
    """Maps physical addresses to (home node, region) for the whole machine."""

    def __init__(self, num_nodes, mem_per_node, line_size=128,
                 page_size=4096, vector_range_size=4096,
                 magic_region_size=8192, io_region_size=4096):
        if mem_per_node % line_size:
            raise ConfigurationError("memory size must be line-aligned")
        if magic_region_size + io_region_size + vector_range_size > mem_per_node:
            raise ConfigurationError("node memory too small for the"
                                     " reserved regions")
        self.num_nodes = num_nodes
        self.mem_per_node = mem_per_node
        self.line_size = line_size
        self.page_size = page_size
        self.vector_range_size = vector_range_size
        self.magic_region_size = magic_region_size
        self.io_region_size = io_region_size

    @property
    def total_memory(self):
        return self.num_nodes * self.mem_per_node

    def home_of(self, address):
        """Home node of a physical address."""
        if not 0 <= address < self.total_memory:
            raise ConfigurationError("address 0x%x out of range" % address)
        return address // self.mem_per_node

    def node_base(self, node_id):
        return node_id * self.mem_per_node

    def line_address(self, address):
        return line_of(address, self.line_size)

    def is_vector_range(self, address):
        """Addresses every processor must always be able to fetch (§3.2)."""
        return 0 <= address < self.vector_range_size

    def magic_region_start(self, node_id):
        """Protected region: top of the node's memory minus the I/O window."""
        return (self.node_base(node_id) + self.mem_per_node
                - self.io_region_size - self.magic_region_size)

    def is_magic_region(self, address):
        node_id = self.home_of(address)
        start = self.magic_region_start(node_id)
        return start <= address < start + self.magic_region_size

    def io_region_start(self, node_id):
        return self.node_base(node_id) + self.mem_per_node - self.io_region_size

    def is_io_region(self, address):
        node_id = self.home_of(address)
        return address >= self.io_region_start(node_id)

    def usable_range(self, node_id):
        """(start, end) of the node's general-purpose coherent memory."""
        start = self.node_base(node_id)
        if node_id == 0:
            # Node 0's copy of the vector range is the architectural one; it
            # stays out of the general allocation pool like everyone else's.
            start += self.vector_range_size
        end = self.magic_region_start(node_id)
        return start, end

    def usable_lines(self, node_id):
        start, end = self.usable_range(node_id)
        return range(start, end, self.line_size)


def initial_value(line_address):
    """Deterministic initial token for a line (pre-first-write contents)."""
    return ("init", line_address)


class NodeMemory:
    """The slice of main memory resident on one node."""

    def __init__(self, node_id, address_map):
        self.node_id = node_id
        self.address_map = address_map
        self._values = {}
        # The node-local replica of the exception vectors (§3.2).
        self._vector_values = {}

    def owns(self, address):
        return self.address_map.home_of(address) == self.node_id

    def read_line(self, line_address):
        if not self.owns(line_address):
            raise KeyError("line 0x%x not resident on node %d"
                           % (line_address, self.node_id))
        return self._values.get(line_address, initial_value(line_address))

    def write_line(self, line_address, value):
        if not self.owns(line_address):
            raise KeyError("line 0x%x not resident on node %d"
                           % (line_address, self.node_id))
        self._values[line_address] = value

    def read_vector(self, address):
        """Read from this node's replica of the exception-vector range."""
        line = self.address_map.line_address(address)
        return self._vector_values.get(line, ("vector", self.node_id, line))

    @property
    def resident_line_count(self):
        return self.address_map.mem_per_node // self.address_map.line_size
