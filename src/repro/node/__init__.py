"""Node hardware: memory, L2 cache, processor, I/O and the MAGIC controller."""

from repro.node.memory import AddressMap, NodeMemory
from repro.node.cache import Cache, CacheLine
from repro.node.iodevice import IODevice
from repro.node.magic import Magic
from repro.node.processor import (
    Compute,
    FlushLine,
    Load,
    Processor,
    Store,
    UncachedLoad,
    UncachedStore,
)
from repro.node.node import Node

__all__ = [
    "AddressMap",
    "Cache",
    "CacheLine",
    "Compute",
    "FlushLine",
    "IODevice",
    "Load",
    "Magic",
    "Node",
    "NodeMemory",
    "Processor",
    "Store",
    "UncachedLoad",
    "UncachedStore",
]
