"""Workloads: the stand-alone validation filler (§5.2), the parallel-make
model (§5.1), and synthetic sharing-pattern generators."""

from repro.workloads.standalone import (
    cache_fill_program,
    memory_check_program,
    partition_lines,
)
from repro.workloads.synthetic import (
    hot_line_program,
    migratory_program,
    producer_consumer_program,
    uniform_traffic_program,
)

__all__ = [
    "cache_fill_program",
    "hot_line_program",
    "memory_check_program",
    "migratory_program",
    "partition_lines",
    "producer_consumer_program",
    "uniform_traffic_program",
]
