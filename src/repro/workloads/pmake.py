"""The parallel-make workload (paper §5.1).

    "We ran a parallel make benchmark that compiles eight of the GnuChess
    4.0 files, with each compile executing on a different cell.  The
    benchmark generates a large amount of coherence traffic, since one of
    the cells acts as a file server for the other cells and the Hive file
    system uses shared memory for all file data transfers across cell
    boundaries."

Each compile job: RPC-open its source file, read every line of it through
shared memory (cross-cell coherence traffic), compute, then write its
object file lines into server memory.  A bus error on an incoherent file
line is handled by asking the server to refetch the page from disk and
retrying — the code path whose Hive bugs the paper's failed runs exposed.
"""

from repro.common.errors import BusError
from repro.common.types import BusErrorKind
from repro.hive.filesystem import disk_token
from repro.node.processor import Load, Store


def source_name(job_id):
    return "src%d" % job_id


def object_name(job_id):
    return "obj%d" % job_id


#: Shared build log: every compile writes progress into its own slot and
#: reads everyone else's at the end (make's dependency/output aggregation).
#: This is the shared-written file whose lines can be cached exclusive by a
#: cell when it dies — the survivors then hit incoherent lines and exercise
#: the OS handling path the paper's bugs lived in.
LOG_NAME = "makelog"


def object_token(job_id, line_address):
    return ("obj", job_id, line_address)


def create_build_tree(hive, jobs):
    """Create per-job source/object files plus the shared log."""
    for job_id in jobs:
        hive.file_service.create(source_name(job_id))
        cell_id = job_id % hive.config.cells
        hive.file_service.create(object_name(job_id), writers={cell_id})
    hive.file_service.create(
        LOG_NAME, writers=set(range(hive.config.cells)))


def log_line_of(hive, job_id):
    lines = hive.file_service.lines_of(LOG_NAME)
    return lines[job_id % len(lines)]


def file_access(hive, cell, file_name, op):
    """Kernel file access with incoherent-line handling (§4.6).

    On an incoherent-line bus error, ask the file server to scrub the page
    and refetch it from disk, then retry the access.
    """
    server = hive.config.file_server_cell
    attempts = 0
    while True:
        try:
            value = yield from cell.kernel_access(op)
            return value
        except BusError as error:
            if error.kind != BusErrorKind.INCOHERENT_LINE:
                raise
            attempts += 1
            if attempts > 8:
                raise
            reply = yield from cell.rpc.call(
                server, "fs.refetch",
                {"name": file_name, "line": op.address})
            if reply.get("error"):
                raise RuntimeError(
                    "refetch of %s failed: %s" % (file_name, reply["error"]))


def compile_job(hive, cell_id, job_id, compute_ns=3_000_000.0,
                read_passes=2):
    """One compile: read source through shared memory, compute, write the
    object file.  Returns "ok"; any uncontained failure raises."""
    cell = hive.cells[cell_id]
    server = hive.config.file_server_cell
    src = source_name(job_id)
    obj = object_name(job_id)

    reply = yield from cell.rpc.call(server, "fs.open", {"name": src})
    if reply.get("error"):
        raise RuntimeError("open %s: %s" % (src, reply["error"]))
    src_lines = hive.file_service.lines_of(src)

    log_line = log_line_of(hive, job_id)

    # Lexing/parsing passes: stream the source through the cache, logging
    # progress into the shared build log (held exclusive between writes).
    for pass_no in range(read_passes):
        for line in src_lines:
            value = yield from file_access(hive, cell, src, Load(line))
            if value != disk_token(src, line):
                raise RuntimeError(
                    "compile %d read corrupt source data %r" % (job_id, value))
        yield from file_access(
            hive, cell, LOG_NAME,
            Store(log_line, value=("log", job_id, pass_no)))
        yield compute_ns / (2.0 * read_passes)

    # Code generation.
    yield compute_ns / 2.0

    reply = yield from cell.rpc.call(server, "fs.grant_write",
                                     {"name": obj})
    if reply.get("error"):
        raise RuntimeError("grant_write %s: %s" % (obj, reply["error"]))
    obj_lines = hive.file_service.lines_of(obj)
    for line in obj_lines:
        yield from file_access(
            hive, cell, obj, Store(line, value=object_token(job_id, line)))

    # "make" aggregates the build log: read every job's slot.  Slots owned
    # exclusively by a cell that died come back as incoherent lines; the
    # refetch path restores them (or trips the emulated OS bug).
    for other_job in range(hive.config.cells):
        other_line = log_line_of(hive, other_job)
        yield from file_access(hive, cell, LOG_NAME, Load(other_line))
    return "ok"


def expected_object_lines(hive, job_id):
    """(line, expected token) pairs for verifying a finished compile."""
    lines = hive.file_service.lines_of(object_name(job_id))
    return [(line, object_token(job_id, line)) for line in lines]
