"""The stand-alone validation workload of paper §5.2.

    "In each run, all the processors start by filling up their caches with
    lines chosen at random from the range of valid system addresses.  For
    each line, we randomly decide whether it will be fetched in shared or
    exclusive mode.  After all the processors have filled up at least half
    of their caches, we inject a fault.  Upon completion of the hardware
    recovery algorithm, the processors read all of the system's memory and
    check, for each cache line, whether it contains the correct data or has
    become incoherent."
"""

import random

from repro.common.errors import BusError
from repro.node.processor import Load, Store


def cache_fill_program(machine, node_id, fill_lines, seed,
                       exclusive_fraction=0.5):
    """Fill a node's cache with random shared/exclusive lines (§5.2)."""
    rng = random.Random("%s-%s" % (seed, node_id))
    all_lines = machine.all_usable_lines()
    for _ in range(fill_lines):
        line = rng.choice(all_lines)
        if rng.random() < exclusive_fraction:
            yield Store(line, value=("fill", node_id, line, rng.random()))
        else:
            yield Load(line)


def memory_check_program(lines, observations):
    """Read ``lines`` and record (line, kind, detail) observations.

    * ``("value", v)`` — the read completed;
    * ``("bus_error", BusErrorKind)`` — MAGIC terminated the access.

    The first access that hits a failed home is also what *detects* the
    fault and triggers recovery: the program is interrupted, parks, and
    reissues the read after recovery — exactly the §4.2 sequence.
    """
    for line in lines:
        try:
            value = yield Load(line)
        except BusError as error:
            observations.append((line, "bus_error", error.kind))
        else:
            observations.append((line, "value", value))


def partition_lines(machine, node_ids):
    """Split every usable line in the machine across the given checkers."""
    all_lines = machine.all_usable_lines()
    node_ids = sorted(node_ids)
    assignment = {node_id: [] for node_id in node_ids}
    for index, line in enumerate(all_lines):
        assignment[node_ids[index % len(node_ids)]].append(line)
    return assignment
