"""Synthetic sharing-pattern generators used by stress tests and benches."""

import random

from repro.node.processor import Compute, Load, Store


def uniform_traffic_program(machine, node_id, ops, seed,
                            write_fraction=0.3, think_time=100.0):
    """Random loads/stores across the whole machine."""
    rng = random.Random("%s-%s-uniform" % (seed, node_id))
    all_lines = machine.all_usable_lines()
    for _ in range(ops):
        line = rng.choice(all_lines)
        if rng.random() < write_fraction:
            yield Store(line)
        else:
            yield Load(line)
        if think_time:
            yield Compute(think_time)


def hot_line_program(machine, node_id, ops, hot_home, think_time=50.0):
    """All nodes hammer a single contended line homed at ``hot_home``."""
    line = machine.line_homed_at(hot_home)
    for index in range(ops):
        if index % 2 == 0:
            yield Store(line, value=("hot", node_id, index))
        else:
            yield Load(line)
        if think_time:
            yield Compute(think_time)


def producer_consumer_program(machine, node_id, producer, lines, rounds,
                              think_time=200.0):
    """One producer writes a block of lines; consumers read it."""
    for round_no in range(rounds):
        for line in lines:
            if node_id == producer:
                yield Store(line, value=("pc", round_no, line))
            else:
                yield Load(line)
        yield Compute(think_time)


def migratory_program(machine, node_ids, my_id, line, rounds):
    """A line migrates around a set of nodes, written by each in turn."""
    position = sorted(node_ids).index(my_id)
    for round_no in range(rounds):
        # Stagger by position so ownership hops node to node.
        yield Compute(100.0 * position + 10.0)
        yield Store(line, value=("mig", my_id, round_no))
