"""Availability accounting: per-cell timelines, downtime and MTTR.

The paper's availability claim (§1, §6) is that a fault costs the machine
a bounded *recovery window* plus the failed cell — not the whole machine.
This module turns the recovery timeline the model already keeps
(:class:`~repro.recovery.manager.RecoveryReport` per episode) into the
metrics that claim is stated in:

* a **per-cell timeline** — each node is ``up``, ``degraded`` (a recovery
  episode is rewriting directories / draining the network, so the node is
  reachable but stalled) or ``down`` (shut down by the episode, i.e. the
  failed cell);
* **downtime** — the union of episode windows (trigger -> complete), the
  span in which the machine as a whole is degraded;
* **MTTR percentiles** — p50/p95/p99 over per-episode repair times,
  reported alongside the containment-time percentiles so the two headline
  distributions travel together (see PAPERS.md on containment-time
  distributions as the right summary statistic);
* an **availability fraction** — 1 - degraded-time / window per node,
  averaged over surviving nodes (a shut-down cell counts as lost from its
  episode's trigger onward).

Everything here is a post-run sweep over data the model keeps anyway —
nothing on the hot path, which is what lets campaign records carry an
``availability`` section by default (``summarize_run``).
"""

from repro.telemetry.metrics import Histogram

_MS = 1e6       # ns per ms


def _round_ms(ns):
    return round(ns / _MS, 6)


def availability_from_reports(reports, window_ns, num_nodes):
    """Availability summary of one run; JSON-friendly.

    ``reports`` are the run's :class:`RecoveryReport` episodes in trigger
    order, ``window_ns`` the run's total simulated span (``sim.now``).
    An episode that never completed extends to the window end (the run
    ended degraded).
    """
    window_ns = float(window_ns) or 0.0
    episodes = []
    mttr = Histogram()
    down_since = {}          # node -> time it was shut down
    degraded_ns = [0.0] * num_nodes

    for report in reports:
        start = report.trigger_time
        end = (report.complete_time if report.complete_time is not None
               else window_ns)
        duration = max(0.0, end - start)
        if report.complete_time is not None:
            mttr.observe(duration)
        for node in report.shutdown_nodes:
            if 0 <= node < num_nodes:
                down_since.setdefault(node, start)
        for node in range(num_nodes):
            if node not in down_since:
                degraded_ns[node] += duration
        episodes.append({
            "trigger_ms": _round_ms(start),
            "complete_ms": (_round_ms(report.complete_time)
                            if report.complete_time is not None else None),
            "duration_ms": _round_ms(duration),
            "completed": report.complete_time is not None,
            "shutdown_nodes": sorted(report.shutdown_nodes),
            "restarts": report.restarts,
        })

    per_node = {}
    up_fractions = []
    for node in range(num_nodes):
        if node in down_since:
            down = max(0.0, window_ns - down_since[node])
            state = "down"
        else:
            down = 0.0
            state = "up"
        # degraded_ns only ever accumulated while the node was still up:
        # the shutdown mark is applied before the per-episode sweep.
        degraded = degraded_ns[node]
        up = max(0.0, window_ns - down - degraded)
        fraction = up / window_ns if window_ns else 1.0
        per_node[str(node)] = {
            "state": state,
            "up_ms": _round_ms(up),
            "degraded_ms": _round_ms(degraded),
            "down_ms": _round_ms(down),
            "availability": round(fraction, 6),
        }
        if node not in down_since:
            up_fractions.append(fraction)

    downtime_ns = sum(episode["duration_ms"] for episode in episodes) * _MS
    summary = {
        "window_ms": _round_ms(window_ns),
        "episodes": len(episodes),
        "downtime_ms": _round_ms(downtime_ns),
        "availability": (round(sum(up_fractions) / len(up_fractions), 6)
                         if up_fractions else 0.0 if num_nodes else 1.0),
        "nodes": {
            "total": num_nodes,
            "up": sum(1 for node in per_node.values()
                      if node["state"] == "up"),
            "down": sum(1 for node in per_node.values()
                        if node["state"] == "down"),
        },
        "episode_durations_ms": [episode["duration_ms"]
                                 for episode in episodes
                                 if episode["completed"]],
        "timeline": episodes,
        "per_node": per_node,
    }
    if mttr.count:
        summary["mttr_ms"] = {
            "count": mttr.count,
            "mean": _round_ms(mttr.mean),
        }
        summary["mttr_ms"].update({
            key: _round_ms(value)
            for key, value in mttr.percentiles().items()
        })
    return summary


def merge_availability(summaries):
    """Fleet-level aggregation over many runs' availability sections.

    Re-observes every completed episode duration into one histogram so
    the fleet MTTR percentiles are computed over episodes, not averaged
    over per-run percentiles (which would be wrong).
    """
    mttr = Histogram()
    runs = 0
    fractions = []
    episodes = 0
    down_nodes = 0
    for summary in summaries:
        if not summary:
            continue
        runs += 1
        episodes += summary.get("episodes", 0)
        fractions.append(summary.get("availability", 1.0))
        down_nodes += summary.get("nodes", {}).get("down", 0)
        for duration_ms in summary.get("episode_durations_ms", ()):
            mttr.observe(duration_ms)
    out = {
        "runs": runs,
        "episodes": episodes,
        "down_nodes": down_nodes,
        "availability_mean": (round(sum(fractions) / len(fractions), 6)
                              if fractions else None),
        "availability_min": (round(min(fractions), 6)
                             if fractions else None),
    }
    if mttr.count:
        out["mttr_ms"] = {"count": mttr.count,
                          "mean": round(mttr.mean, 6)}
        out["mttr_ms"].update({key: round(value, 6) if value is not None
                               else None
                               for key, value in mttr.percentiles().items()})
    return out


def format_availability(summary):
    """Human-readable one-run availability block."""
    lines = ["availability: %.4f over %.2f ms window (%d episode(s), "
             "%.2f ms degraded)"
             % (summary["availability"], summary["window_ms"],
                summary["episodes"], summary["downtime_ms"])]
    mttr = summary.get("mttr_ms")
    if mttr:
        lines.append("  MTTR [ms]: mean=%.2f p50=%.2f p95=%.2f p99=%.2f "
                     "(%d repair(s))"
                     % (mttr["mean"], mttr["p50"], mttr["p95"],
                        mttr["p99"], mttr["count"]))
    nodes = summary["nodes"]
    lines.append("  cells: %d up, %d down of %d"
                 % (nodes["up"], nodes["down"], nodes["total"]))
    return "\n".join(lines)
