"""Timeline reconstruction: from a raw trace to recovery-phase breakdowns.

The recovery manager knows aggregate phase end times, but a trace carries
the full per-node structure: when each node's agent entered and left each
phase, across restarts.  :func:`build_timelines` reconstructs one
:class:`EpisodeTimeline` per recovery episode, exposing:

* per-node phase spans (who was slow, and in which phase);
* per-phase latency from the trigger (the paper's Figure 5.5 quantities);
* the *critical path*: for each phase, the node whose completion gated it.
"""

import dataclasses


@dataclasses.dataclass
class PhaseSpan:
    """One node's execution of one recovery phase (in one epoch)."""

    node: int
    phase: str
    epoch: int
    start: float
    end: float = None         # None: phase was cut short (restart/shutdown)

    @property
    def duration(self):
        return None if self.end is None else self.end - self.start


PHASE_ORDER = ("P1", "P2", "P3", "P4")


class EpisodeTimeline:
    """All phase activity of one recovery episode (including restarts)."""

    def __init__(self, index, trigger_time, trigger_node, trigger_reason):
        self.index = index
        self.trigger_time = trigger_time
        self.trigger_node = trigger_node
        self.trigger_reason = trigger_reason
        self.end_time = None
        self.restarts = 0
        self.spans = []           # all PhaseSpans, every epoch
        self.final_epoch = None

    # ------------------------------------------------------------- queries

    @property
    def total_duration(self):
        if self.end_time is None:
            return None
        return self.end_time - self.trigger_time

    def _final_spans(self, phase=None):
        return [span for span in self.spans
                if span.epoch == self.final_epoch and span.end is not None
                and (phase is None or span.phase == phase)]

    def phase_latency(self, phase):
        """Trigger -> last node finished ``phase`` (the figure quantity)."""
        spans = self._final_spans(phase)
        if not spans:
            return None
        return max(span.end for span in spans) - self.trigger_time

    def phase_window(self, phase):
        """(first entry, last exit) of ``phase`` across nodes, or None."""
        spans = self._final_spans(phase)
        if not spans:
            return None
        return (min(span.start for span in spans),
                max(span.end for span in spans))

    def critical_node(self, phase):
        """The node whose completion gated ``phase`` machine-wide."""
        spans = self._final_spans(phase)
        if not spans:
            return None
        return max(spans, key=lambda span: (span.end, span.node)).node

    def critical_path(self):
        """phase -> (gating node, latency from trigger) for P1..P4."""
        path = {}
        for phase in PHASE_ORDER:
            latency = self.phase_latency(phase)
            if latency is not None:
                path[phase] = (self.critical_node(phase), latency)
        return path

    def per_node(self, node):
        """phase -> (start, end) for one node (final epoch only)."""
        return {span.phase: (span.start, span.end)
                for span in self._final_spans() if span.node == node}

    def participating_nodes(self):
        return sorted({span.node for span in self._final_spans()})

    def breakdown(self):
        """JSON-friendly per-phase / per-node latency breakdown."""
        phases = {}
        for phase in PHASE_ORDER:
            latency = self.phase_latency(phase)
            if latency is None:
                continue
            window = self.phase_window(phase)
            phases[phase] = {
                "latency_from_trigger_ns": latency,
                "window_ns": list(window),
                "critical_node": self.critical_node(phase),
                "per_node_ns": {
                    str(span.node): [span.start, span.end]
                    for span in self._final_spans(phase)
                },
            }
        return {
            "episode": self.index,
            "trigger": {"time_ns": self.trigger_time,
                        "node": self.trigger_node,
                        "reason": self.trigger_reason},
            "total_ns": self.total_duration,
            "restarts": self.restarts,
            "phases": phases,
        }

    def __repr__(self):
        return "<EpisodeTimeline #%d trigger=%s@%.0f total=%s restarts=%d>" % (
            self.index, self.trigger_reason, self.trigger_time,
            self.total_duration, self.restarts)


def build_timelines(events):
    """Reconstruct :class:`EpisodeTimeline` objects from a trace.

    ``events`` is an iterable of :class:`~repro.telemetry.trace.TraceEvent`
    in emission order (a recorder's ``events`` list).  Spans cut short by a
    restart keep ``end=None``; the final epoch's spans define the
    episode's breakdown.
    """
    timelines = []
    current = None
    open_spans = {}           # (node, phase, epoch) -> PhaseSpan

    for event in events:
        if event.category == "episode":
            if event.name == "begin":
                current = EpisodeTimeline(
                    len(timelines), event.time,
                    event.data.get("trigger_node", event.node),
                    event.data.get("reason"))
                open_spans = {}
            elif current is None:
                continue
            elif event.name == "restart":
                current.restarts += 1
            elif event.name == "end":
                current.end_time = event.time
                current.final_epoch = event.data.get("epoch")
                if current.final_epoch is None and current.spans:
                    current.final_epoch = max(
                        span.epoch for span in current.spans)
                timelines.append(current)
                current = None
        elif event.category == "phase" and current is not None:
            phase = event.data.get("phase")
            epoch = event.data.get("epoch", 0)
            key = (event.node, phase, epoch)
            if event.name == "enter":
                span = PhaseSpan(event.node, phase, epoch, event.time)
                open_spans[key] = span
                current.spans.append(span)
            elif event.name == "exit":
                span = open_spans.pop(key, None)
                if span is not None:
                    span.end = event.time
    return timelines


def format_timeline(timeline):
    """Human-readable critical-path summary of one episode."""
    lines = ["episode %d: trigger %s on node %s at %.3f ms, total %s"
             % (timeline.index, timeline.trigger_reason,
                timeline.trigger_node, timeline.trigger_time / 1e6,
                "%.3f ms" % (timeline.total_duration / 1e6)
                if timeline.total_duration is not None else "incomplete")]
    if timeline.restarts:
        lines.append("  restarts: %d" % timeline.restarts)
    for phase in PHASE_ORDER:
        latency = timeline.phase_latency(phase)
        if latency is None:
            continue
        lines.append("  %s done at +%.3f ms (critical node %s)"
                     % (phase, latency / 1e6, timeline.critical_node(phase)))
    return "\n".join(lines)
