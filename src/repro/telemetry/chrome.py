"""Chrome ``trace_event`` export: load a run in chrome://tracing / Perfetto.

The emitted JSON follows the Trace Event Format (the JSON-array flavour
wrapped in an object):

* recovery phases become complete ("X") duration events, one track (tid)
  per node under a single "flash machine" process (pid 0);
* everything else (fault injections, detector firings, packet drops,
  dissemination rounds, barriers) becomes thread-scoped instant ("i")
  events on the emitting node's track;
* causal edges (``TraceEvent.cause``, forensics §11) become flow arrows:
  an "s"/"f" pair per edge, so chrome://tracing draws the propagation
  path from a fault injection through packets to detections and recovery;
* timestamps are microseconds (the format's unit); the simulation's
  nanosecond clock divides by 1000.

Validated by a schema test; the file loads directly in chrome://tracing.
"""

import json

PID = 0


def _us(time_ns):
    return time_ns / 1000.0


def to_chrome_trace(events, label="flash machine", dropped_events=0):
    """Convert trace events into a Chrome trace_event JSON object (dict).

    ``dropped_events`` (a recorder's overflow count) is carried in the
    standard ``otherData`` block so a viewer of the export can tell a
    truncated trace from a complete one.
    """
    out = [{
        "name": "process_name", "ph": "M", "pid": PID, "tid": 0,
        "args": {"name": label},
    }]
    tids = set()
    open_phases = {}          # (node, phase, epoch) -> enter time
    positions = {}            # eid -> (ts us, tid) for flow arrows

    for event in events:
        tid = event.node if event.node is not None else 0
        tids.add(tid)
        if event.eid is not None:
            positions[event.eid] = (_us(event.time), tid)
        if event.category == "phase":
            key = (event.node, event.data.get("phase"),
                   event.data.get("epoch", 0))
            if event.name == "enter":
                open_phases[key] = event.time
            else:
                start = open_phases.pop(key, None)
                if start is not None:
                    out.append({
                        "name": key[1] or "phase",
                        "cat": "phase", "ph": "X",
                        "ts": _us(start), "dur": _us(event.time - start),
                        "pid": PID, "tid": tid,
                        "args": {"epoch": key[2]},
                    })
            continue
        out.append({
            "name": "%s.%s" % (event.category, event.name),
            "cat": event.category, "ph": "i", "s": "t",
            "ts": _us(event.time), "pid": PID, "tid": tid,
            "args": {k: _jsonable(v) for k, v in event.data.items()},
        })

    flow_id = 0
    for event in events:
        if event.eid is None or event.cause is None:
            continue
        child = positions.get(event.eid)
        if child is None:
            continue
        cause = event.cause
        parents = cause if isinstance(cause, tuple) else (cause,)
        for parent_eid in parents:
            parent = positions.get(parent_eid)
            if parent is None:
                continue   # parent dropped by the cap or outside the window
            flow_id += 1
            out.append({
                "name": "cause", "cat": "flow", "ph": "s", "id": flow_id,
                "ts": parent[0], "pid": PID, "tid": parent[1], "args": {},
            })
            out.append({
                "name": "cause", "cat": "flow", "ph": "f", "bp": "e",
                "id": flow_id, "ts": child[0], "pid": PID,
                "tid": child[1], "args": {},
            })

    for tid in sorted(tids):
        out.append({
            "name": "thread_name", "ph": "M", "pid": PID, "tid": tid,
            "args": {"name": "node %d" % tid},
        })
    payload = {"traceEvents": out, "displayTimeUnit": "ms"}
    if dropped_events:
        payload["otherData"] = {"dropped_events": dropped_events,
                                "truncated": True}
    return payload


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(events, path, label="flash machine",
                       dropped_events=0):
    """Write the Chrome trace JSON for ``events`` to ``path``."""
    payload = to_chrome_trace(events, label=label,
                              dropped_events=dropped_events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload
