"""The always-on flight recorder: a bounded ring of the *last* N events.

:class:`~repro.telemetry.trace.TraceRecorder` bounds memory by keeping the
*first* ``max_events`` events — the right shape for timeline work, where
the episode structure lives at the front, and the wrong shape for a fleet:
in a 100k-schedule sweep a failure surfaces at the *end* of a run, exactly
the window a head-capped trace has already dropped.  The
:class:`FlightRecorder` inverts the cap: a fixed-capacity ring buffer with
O(1) append that always holds the most recent events, like an aircraft
flight recorder.  Campaign and fuzz workers keep one attached even when
full tracing is off, so an oracle violation, a worker crash or a stray
message storm always arrives with its tail window of evidence.

Contract notes:

* the guard idiom is unchanged (DESIGN.md §9): components still hold
  ``self.trace`` and emission sites still cost one identity check when
  detached, so a run with a FlightRecorder detached is bit-identical to
  the seed behaviour — a directed test asserts this;
* ``emit`` never perturbs the simulation: it reads the clock, packs a
  tuple and stores it in the ring — no randomness, no scheduling;
* eids stay **global stream indices** (the count of events ever emitted),
  not ring slots, so ``cause=`` edges remain meaningful after eviction.
  An evicted parent simply becomes a dangling edge, which forensic DAG
  construction already tolerates (:func:`repro.telemetry.forensics
  .build_dag` counts it);
* the hot path stores plain tuples and materializes
  :class:`~repro.telemetry.trace.TraceEvent` objects only when the
  :attr:`events` view is read, keeping the always-on cost low enough for
  the CI overhead gate (``repro.cli bench --micro --flight-overhead``).

``dropped_events`` counts ring evictions, so the forensics truncation
caveat (``truncated`` / ``dropped_events``) applies to tail windows
exactly as it does to head-capped traces.
"""

from repro.telemetry.trace import TraceEvent, TraceRecorder

#: default ring capacity for campaign/fuzz workers — deep enough to hold
#: a whole recovery episode tail, small enough to be always-on
DEFAULT_CAPACITY = 20_000


class FlightRecorder(TraceRecorder):
    """Bounded ring buffer keeping the last ``capacity`` trace events.

    Drop-in for :class:`TraceRecorder` anywhere a recorder is consumed:
    :attr:`events` yields the retained window oldest-first as
    :class:`TraceEvent` objects, and ``dropped_events`` carries the
    eviction count, so timelines, forensics and the Chrome export all
    work unchanged on the tail window.
    """

    def __init__(self, sim=None, capacity=DEFAULT_CAPACITY):
        # Deliberately not calling TraceRecorder.__init__: ``events`` is
        # a materializing property here, not a list attribute.
        if capacity < 1:
            raise ValueError("flight ring needs capacity >= 1 (got %r)"
                             % (capacity,))
        self._sim = sim
        self.capacity = capacity
        self.max_events = None
        self.enabled = True
        self.total_emitted = 0
        self.dropped_events = 0      # evictions (oldest overwritten)
        self._ring = []              # raw event tuples, see emit()
        self._head = 0               # oldest slot once the ring is full

    def emit(self, category, name, node=None, cause=None, **data):
        """Record one event into the ring; returns its (global) eid."""
        if not self.enabled:
            return None
        eid = self.total_emitted
        self.total_emitted = eid + 1
        entry = (self.now, category, name, node, data, eid, cause)
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(entry)
        else:
            head = self._head
            ring[head] = entry
            self._head = head + 1 if head + 1 < self.capacity else 0
            self.dropped_events += 1
        return eid

    # ------------------------------------------------------------- queries

    @property
    def events(self):
        """Retained window, oldest first, as :class:`TraceEvent` objects."""
        ring = self._ring
        head = self._head
        ordered = ring[head:] + ring[:head] if head else list(ring)
        return [TraceEvent(*entry) for entry in ordered]

    def __len__(self):
        return len(self._ring)

    def clear(self):
        self._ring = []
        self._head = 0
        self.total_emitted = 0
        self.dropped_events = 0

    # --------------------------------------------------------------- dumps

    def dump(self, limit=None):
        """JSON-friendly snapshot of the tail window.

        ``limit`` keeps only the newest ``limit`` events — campaign
        records cap their attached window so a FAIL line stays a line,
        while in-process forensics still sees the whole ring.
        """
        events = self.events
        clipped = 0
        if limit is not None and len(events) > limit:
            clipped = len(events) - limit
            events = events[-limit:]
        return {
            "capacity": self.capacity,
            "total_emitted": self.total_emitted,
            "evicted": self.dropped_events + clipped,
            "events": [event.to_dict() for event in events],
        }


def events_from_dump(dump):
    """Rebuild :class:`TraceEvent` objects from a :meth:`FlightRecorder
    .dump` payload, ready for :func:`repro.telemetry.forensics.analyze`
    (pass ``dropped_events=dump["evicted"]`` to keep the truncation
    caveat) or :func:`repro.telemetry.timeline.build_timelines`."""
    events = []
    for entry in dump.get("events", ()):
        cause = entry.get("cause")
        if isinstance(cause, list):
            cause = tuple(cause)
        events.append(TraceEvent(
            entry.get("time", 0.0), entry.get("category"),
            entry.get("name"), entry.get("node"),
            entry.get("data") or {}, entry.get("eid"), cause))
    return events


def analyze_dump(dump):
    """Forensic audit of a dumped tail window (truncation caveat intact)."""
    from repro.telemetry.forensics import analyze
    return analyze(events_from_dump(dump),
                   dropped_events=dump.get("evicted", 0))
