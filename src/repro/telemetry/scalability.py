"""The 4->128-node scalability benchmark harness (``repro.cli bench``).

Reproduces the paper's headline scalability result (§5.3/Figure 5.5):
distributed recovery stays fast as the machine grows.  The harness sweeps
machine sizes x fault classes, measures per-phase recovery latency plus
simulator throughput, and emits ``BENCH_scalability.json``:

* one result object per (size, fault class) point with the cumulative
  phase latencies (P1, P1-2, P1-3, total — the Figure 5.5 curves), the
  per-phase durations, and sim throughput (executed events / wall second);
* a ``sublinear`` verdict per fault class: recovery latency must grow
  sub-linearly in node count (latency ratio < node-count ratio across the
  sweep), which is the paper's scalability claim in testable form.

Small per-node memory keeps a 128-node run tractable in CI; the phase
structure — what the sweep measures — is unaffected (P4 simply shrinks
with the cache, exactly as in the paper's own scaled-down figures).
"""

import time

from repro.analysis.tables import format_series
from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.faults.models import LINK_FAULT_TYPES, FaultSpec, FaultType
from repro.workloads.standalone import cache_fill_program

#: the paper's Figure 5.5 sweep points (2 replaced by 4: a 2-node machine
#: has a degenerate barrier tree and measures nothing interesting)
DEFAULT_SIZES = (4, 8, 16, 32, 64, 128)

#: memory/cache sizing for sweep machines — small enough that a 128-node
#: point runs in tens of seconds, large enough to exercise every phase
BENCH_MEM_PER_NODE = 64 << 10
BENCH_L2_SIZE = 8 << 10


def default_fault(fault_class, num_nodes, topology):
    """The canonical fault of a class for a sweep point: strike the
    highest-id node (or a link attached to it), farthest from node 0's
    detection probe."""
    fault_type = FaultType(fault_class)
    victim = num_nodes - 1
    if fault_type in LINK_FAULT_TYPES:
        for rid_a, _, rid_b, _ in topology.links():
            if victim in (rid_a, rid_b):
                return FaultSpec(fault_type, (rid_a, rid_b))
        raise ValueError("no link touches node %d" % victim)
    return FaultSpec(fault_type, victim)


def run_scalability_point(num_nodes, fault_class="node_failure",
                          topology="mesh", mem_per_node=BENCH_MEM_PER_NODE,
                          l2_size=BENCH_L2_SIZE, seed=0, fill_fraction=0.25,
                          telemetry=None, run_limit=200_000_000_000):
    """One sweep point: build, fill, inject, recover, measure.

    Returns a JSON-friendly result dict; ``completed`` is False (with an
    ``error``) when recovery never finished within ``run_limit``.
    """
    from repro.core.experiment import _start_prober

    config = MachineConfig(
        num_nodes=num_nodes, topology=topology, mem_per_node=mem_per_node,
        l2_size=l2_size, seed=seed)
    machine = FlashMachine(config, telemetry=telemetry).start()

    fill_lines = max(1, int(config.l2_lines * fill_fraction))
    machine.run_programs(
        [(node_id, cache_fill_program(machine, node_id, fill_lines, seed))
         for node_id in range(num_nodes)],
        limit=run_limit)
    machine.quiesce()

    fault = default_fault(fault_class, num_nodes, machine.topology)
    wall_start = time.perf_counter()
    events_before = machine.sim.events_executed

    machine.injector.inject(fault)
    if fault.fault_type != FaultType.FALSE_ALARM:
        _start_prober(machine, fault)

    result = {"nodes": num_nodes, "fault": fault_class,
              "topology": topology, "seed": seed}
    try:
        report = machine.run_until_recovered(limit=run_limit)
    except (TimeoutError, RuntimeError) as exc:
        result["completed"] = False
        result["error"] = "%s: %s" % (type(exc).__name__, exc)
        report = None
    else:
        result["completed"] = (report.complete_time is not None
                               and "P4" in report.phase_ends)

    wall_s = time.perf_counter() - wall_start
    events = machine.sim.events_executed - events_before
    result["sim"] = {
        "events_executed": events,
        "sim_ns": machine.sim.now,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s) if wall_s > 0 else None,
        # Live count only — cancelled-but-unreclaimed heap entries would
        # otherwise inflate the queue-depth figure by orders of magnitude.
        "pending_events": machine.sim.pending_events,
        "heap_size": machine.sim.heap_size,
        "compactions": machine.sim.compactions,
    }
    if report is not None:
        result["recovery"] = {
            "P1_ms": _cum_ms(report, "P1"),
            "P12_ms": _cum_ms(report, "P2"),
            "P123_ms": _cum_ms(report, "P3"),
            "total_ms": (round(report.total_duration / 1e6, 6)
                         if report.total_duration is not None else None),
            "phase_durations_ms": {
                phase: round(duration / 1e6, 6)
                for phase, duration in sorted(
                    report.phase_durations.items())},
            "restarts": report.restarts,
            "marked_incoherent": report.marked_incoherent,
            "available_nodes": len(report.available_nodes),
        }
    return result


def _cum_ms(report, phase):
    latency = report.phase_duration_from_trigger(phase)
    return None if latency is None else round(latency / 1e6, 6)


def sublinear_check(results):
    """The paper's scalability claim, testable: across one fault class's
    completed sweep points, recovery latency must grow slower than node
    count (largest-vs-smallest latency ratio below the node-count ratio).
    """
    points = sorted(
        ((r["nodes"], r["recovery"]["total_ms"]) for r in results
         if r.get("completed") and r.get("recovery", {}).get("total_ms")),
        key=lambda p: p[0])
    if len(points) < 2:
        return {"ok": False, "reason": "fewer than two completed sizes"}
    (n_min, t_min), (n_max, t_max) = points[0], points[-1]
    latency_ratio = t_max / t_min
    node_ratio = n_max / n_min
    return {
        "ok": latency_ratio < node_ratio,
        "nodes": [n_min, n_max],
        "total_ms": [t_min, t_max],
        "latency_ratio": round(latency_ratio, 3),
        "node_ratio": round(node_ratio, 3),
    }


def run_scalability_sweep(sizes=DEFAULT_SIZES,
                          fault_classes=("node_failure",),
                          topology="mesh", mem_per_node=BENCH_MEM_PER_NODE,
                          l2_size=BENCH_L2_SIZE, seed=0, progress=None):
    """The full sweep; returns the ``BENCH_scalability.json`` payload."""
    results = []
    for fault_class in fault_classes:
        for num_nodes in sizes:
            result = run_scalability_point(
                num_nodes, fault_class=fault_class, topology=topology,
                mem_per_node=mem_per_node, l2_size=l2_size, seed=seed)
            results.append(result)
            if progress is not None:
                progress(result)
    return {
        "version": 1,
        "benchmark": "recovery-scalability",
        "topology": topology,
        "sizes": list(sizes),
        "fault_classes": list(fault_classes),
        "mem_per_node": mem_per_node,
        "l2_size": l2_size,
        "seed": seed,
        "results": results,
        "sublinear": {
            fault_class: sublinear_check(
                [r for r in results if r["fault"] == fault_class])
            for fault_class in fault_classes
        },
    }


def sweep_ok(payload):
    """True when every point completed recovery (the CI gate)."""
    return (bool(payload["results"])
            and all(r.get("completed") for r in payload["results"]))


def scalability_table(payload):
    """Paper-style table(s) of a sweep payload, one per fault class."""
    blocks = []
    for fault_class in payload["fault_classes"]:
        rows = []
        for result in payload["results"]:
            if result["fault"] != fault_class:
                continue
            recovery = result.get("recovery") or {}
            sim = result.get("sim") or {}
            rows.append((
                result["nodes"],
                _fmt(recovery.get("P1_ms")),
                _fmt(recovery.get("P12_ms")),
                _fmt(recovery.get("P123_ms")),
                _fmt(recovery.get("total_ms")),
                sim.get("events_per_sec") or "-",
                "yes" if result.get("completed") else "NO",
            ))
        verdict = payload["sublinear"].get(fault_class, {})
        title = ("Recovery scalability — %s on %s (sub-linear: %s)"
                 % (fault_class, payload["topology"],
                    "yes" if verdict.get("ok") else "NO"))
        blocks.append(format_series(
            title, "nodes",
            ["P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]",
             "events/s", "complete"],
            rows))
    return "\n\n".join(blocks)


def _fmt(value):
    return "-" if value is None else "%.2f" % value


def bench_meta():
    """Provenance stamp for committed bench artifacts: git SHA + UTC time.

    The SHA comes from ``git rev-parse HEAD`` when a work tree is
    available, falling back to the ``GITHUB_SHA`` CI variable, then to
    ``"unknown"`` — a bench JSON must stay writable from a tarball.
    """
    import datetime
    import os
    import subprocess
    sha = None
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10.0, check=False).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "git_sha": sha or os.environ.get("GITHUB_SHA") or "unknown",
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
    }


def write_bench_json(payload, path):
    """Write a bench payload (``BENCH_*.json``), stamping provenance."""
    import json
    payload.setdefault("meta", bench_meta())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def append_bench_history(payload, path):
    """Append one compact JSONL line to the committed bench history.

    The line keeps the headline figures only (benchmark name, provenance
    meta, events/sec map or sublinear verdicts), so the history stays
    reviewable in diffs while every CI run adds a point to the trend.
    """
    import json
    line = {"benchmark": payload.get("benchmark"),
            "meta": payload.get("meta") or bench_meta()}
    for key in ("events_per_sec", "sublinear", "flight_overhead", "stats",
                "coverage_features", "seed"):
        if payload.get(key) is not None:
            line[key] = payload[key]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return path
