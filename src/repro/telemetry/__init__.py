"""Telemetry: event tracing, metrics, timelines, and the scalability bench.

The subsystem has four layers, all disabled by default (zero-cost when off):

* :mod:`repro.telemetry.trace` — the structured event bus.  Instrumented
  components (routers, node interfaces, MAGIC, the recovery manager and
  agents, the fault injector) each hold a ``trace`` attribute that is
  ``None`` unless a :class:`TraceRecorder` was attached; every emission
  site is guarded by a single ``is None`` check, which is the whole
  overhead contract (see DESIGN.md §9).
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms with
  per-node labels and machine-wide aggregation, plus harvesting of the
  hardware stats (RouterStats, MagicStats, RecoveryReports) that the model
  maintains anyway.
* :mod:`repro.telemetry.timeline` — reconstruction of per-episode recovery
  timelines (P1..P4 spans per node, critical path) from a trace.
* :mod:`repro.telemetry.chrome` — Chrome ``trace_event`` JSON export for
  chrome://tracing / Perfetto, with flow arrows along causal edges.
* :mod:`repro.telemetry.forensics` — causal DAG reconstruction, per-fault
  blast radii and the observational containment audit (DESIGN.md §11).

The observability layer (DESIGN.md §15) builds on the same contract:

* :mod:`repro.telemetry.flight` — the always-on flight recorder, a
  bounded ring keeping the *last* N events instead of the first N;
* :mod:`repro.telemetry.profiler` — per-handler sim-time profiling over
  the event-loop dispatch (attach-only, same ``is not None`` guard);
* :mod:`repro.telemetry.availability` — per-cell up/degraded/down
  timelines and MTTR percentiles from recovery reports;
* :mod:`repro.telemetry.status` / :mod:`repro.telemetry.report` — fleet
  heartbeat sidecars and the aggregated HTML report.

:mod:`repro.telemetry.scalability` builds the paper's Section 6 style
recovery-latency-vs-machine-size sweep on top (``repro.cli bench``).
"""

from repro.telemetry.availability import (
    availability_from_reports,
    format_availability,
    merge_availability,
)
from repro.telemetry.chrome import to_chrome_trace, write_chrome_trace
from repro.telemetry.flight import (
    FlightRecorder,
    analyze_dump,
    events_from_dump,
)
from repro.telemetry.forensics import (
    ForensicsReport,
    analyze,
    build_dag,
    forensic_summary,
    format_forensics,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    harvest_machine_metrics,
    summarize_run,
)
from repro.telemetry.profiler import SimProfiler, profile_table
from repro.telemetry.report import aggregate, render_html, write_report
from repro.telemetry.scalability import (
    DEFAULT_SIZES,
    append_bench_history,
    bench_meta,
    run_scalability_sweep,
    scalability_table,
    sublinear_check,
    write_bench_json,
)
from repro.telemetry.status import (
    StatusWriter,
    format_status,
    read_status,
    status_sidecar_path,
)
from repro.telemetry.timeline import EpisodeTimeline, build_timelines
from repro.telemetry.trace import NULL_RECORDER, Telemetry, TraceEvent, TraceRecorder

__all__ = [
    "DEFAULT_SIZES",
    "EpisodeTimeline",
    "FlightRecorder",
    "ForensicsReport",
    "MetricsRegistry",
    "NULL_RECORDER",
    "SimProfiler",
    "StatusWriter",
    "Telemetry",
    "TraceEvent",
    "TraceRecorder",
    "aggregate",
    "analyze",
    "analyze_dump",
    "append_bench_history",
    "availability_from_reports",
    "bench_meta",
    "build_dag",
    "build_timelines",
    "events_from_dump",
    "forensic_summary",
    "format_availability",
    "format_forensics",
    "format_status",
    "harvest_machine_metrics",
    "merge_availability",
    "profile_table",
    "read_status",
    "render_html",
    "run_scalability_sweep",
    "scalability_table",
    "status_sidecar_path",
    "sublinear_check",
    "summarize_run",
    "to_chrome_trace",
    "write_bench_json",
    "write_report",
]
