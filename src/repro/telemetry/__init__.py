"""Telemetry: event tracing, metrics, timelines, and the scalability bench.

The subsystem has four layers, all disabled by default (zero-cost when off):

* :mod:`repro.telemetry.trace` — the structured event bus.  Instrumented
  components (routers, node interfaces, MAGIC, the recovery manager and
  agents, the fault injector) each hold a ``trace`` attribute that is
  ``None`` unless a :class:`TraceRecorder` was attached; every emission
  site is guarded by a single ``is None`` check, which is the whole
  overhead contract (see DESIGN.md §9).
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms with
  per-node labels and machine-wide aggregation, plus harvesting of the
  hardware stats (RouterStats, MagicStats, RecoveryReports) that the model
  maintains anyway.
* :mod:`repro.telemetry.timeline` — reconstruction of per-episode recovery
  timelines (P1..P4 spans per node, critical path) from a trace.
* :mod:`repro.telemetry.chrome` — Chrome ``trace_event`` JSON export for
  chrome://tracing / Perfetto, with flow arrows along causal edges.
* :mod:`repro.telemetry.forensics` — causal DAG reconstruction, per-fault
  blast radii and the observational containment audit (DESIGN.md §11).

:mod:`repro.telemetry.scalability` builds the paper's Section 6 style
recovery-latency-vs-machine-size sweep on top (``repro.cli bench``).
"""

from repro.telemetry.chrome import to_chrome_trace, write_chrome_trace
from repro.telemetry.forensics import (
    ForensicsReport,
    analyze,
    build_dag,
    forensic_summary,
    format_forensics,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    harvest_machine_metrics,
    summarize_run,
)
from repro.telemetry.scalability import (
    DEFAULT_SIZES,
    run_scalability_sweep,
    scalability_table,
    sublinear_check,
    write_bench_json,
)
from repro.telemetry.timeline import EpisodeTimeline, build_timelines
from repro.telemetry.trace import NULL_RECORDER, Telemetry, TraceEvent, TraceRecorder

__all__ = [
    "DEFAULT_SIZES",
    "EpisodeTimeline",
    "ForensicsReport",
    "MetricsRegistry",
    "NULL_RECORDER",
    "Telemetry",
    "TraceEvent",
    "TraceRecorder",
    "analyze",
    "build_dag",
    "build_timelines",
    "forensic_summary",
    "format_forensics",
    "harvest_machine_metrics",
    "run_scalability_sweep",
    "scalability_table",
    "sublinear_check",
    "summarize_run",
    "to_chrome_trace",
    "write_bench_json",
]
