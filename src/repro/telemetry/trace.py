"""The low-overhead event bus: TraceRecorder and the Telemetry bundle.

Design contract (the "disabled-by-default overhead" rule, DESIGN.md §9):

* every instrumented component initializes ``self.trace = None``;
* every emission site is written as::

      tr = self.trace
      if tr is not None:
          tr.emit("pkt", "drop", node=self.router_id, reason="link")

  so with telemetry off the *entire* cost is one attribute load and one
  identity comparison — no call, no argument packing, no event object;
* recording must never perturb the simulation: :meth:`TraceRecorder.emit`
  reads the clock and appends to a list, draws no randomness and schedules
  nothing.  A directed test asserts a traced run and an untraced run
  produce bit-identical recovery reports.

Event taxonomy (category / name):

========== ===================== ==========================================
category   names                 emitted by
========== ===================== ==========================================
pkt        send, recv, drop      NodeInterface (send/recv), Router (drop)
detect     timeout, nak_overflow MAGIC failure detectors (§4.2)
           truncated
recovery   trigger               MAGIC -> RecoveryManager fan-in
episode    begin, restart, end   RecoveryManager
phase      enter, exit           recovery agents via the manager (P1..P4)
round      done                  agent dissemination loop (§4.3)
barrier    done                  RecoveryComm combining-tree barrier (§4.4)
fault      inject, skip          FaultInjector
========== ===================== ==========================================

Events optionally carry a *causal edge* (DESIGN.md §11): ``emit`` accepts
``cause=<parent eid or tuple of eids>`` and returns the new event's eid so
callers can thread provenance through packets and handler fan-out.  The
forensics module (:mod:`repro.telemetry.forensics`) reconstructs the
per-fault causal DAG from those edges.
"""


class TraceEvent:
    """One structured event: (time ns, category, name, node, data).

    ``eid`` is the event's index in its recorder; ``cause`` is the eid of
    the event that caused it (or a tuple of eids for merge points), forming
    the causal DAG edges used by forensics.  Both are None for events
    recorded without provenance.
    """

    __slots__ = ("time", "category", "name", "node", "data", "eid", "cause")

    def __init__(self, time, category, name, node, data, eid=None,
                 cause=None):
        self.time = time
        self.category = category
        self.name = name
        self.node = node
        self.data = data
        self.eid = eid
        self.cause = cause

    @property
    def key(self):
        return "%s.%s" % (self.category, self.name)

    def to_dict(self):
        cause = self.cause
        if isinstance(cause, tuple):
            cause = list(cause)
        return {"time": self.time, "category": self.category,
                "name": self.name, "node": self.node, "data": self.data,
                "eid": self.eid, "cause": cause}

    def __repr__(self):
        return "<TraceEvent %s.%s node=%s @%.0f %r>" % (
            self.category, self.name, self.node, self.time, self.data)


class TraceRecorder:
    """Collects :class:`TraceEvent` objects from instrumented components.

    ``max_events`` bounds memory on long runs: once reached, further events
    are counted in :attr:`dropped_events` instead of stored (the cap keeps
    the oldest events, which carry the episode structure).
    """

    def __init__(self, sim=None, max_events=None):
        self._sim = sim
        self.max_events = max_events
        self.events = []
        self.dropped_events = 0
        self.enabled = True

    def bind(self, sim):
        """Attach the simulator whose clock stamps the events."""
        self._sim = sim
        return self

    @property
    def now(self):
        return self._sim.now if self._sim is not None else 0.0

    def emit(self, category, name, node=None, cause=None, **data):
        """Record one event; returns its eid (None when not recorded).

        ``cause`` is an optional causal-parent eid (or tuple of eids) as
        returned by a previous ``emit``; forensics reconstructs the causal
        DAG from these edges.  Events dropped by the cap return None, so
        downstream edges simply dangle — DAG construction tolerates that.
        """
        if not self.enabled:
            return None
        eid = len(self.events)
        if self.max_events is not None and eid >= self.max_events:
            self.dropped_events += 1
            return None
        self.events.append(
            TraceEvent(self.now, category, name, node, data, eid, cause))
        return eid

    # ------------------------------------------------------------- queries

    def __len__(self):
        return len(self.events)

    def events_of(self, category, name=None):
        return [event for event in self.events
                if event.category == category
                and (name is None or event.name == name)]

    def count(self, category, name=None):
        return len(self.events_of(category, name))

    def clear(self):
        self.events = []
        self.dropped_events = 0

    def to_dicts(self):
        return [event.to_dict() for event in self.events]


class _NullRecorder(TraceRecorder):
    """A recorder that records nothing.

    Components never call it (they check ``trace is None``), but harness
    code that wants to call ``recorder.emit`` unconditionally can use
    :data:`NULL_RECORDER` instead of branching.  A no-op-recorder test
    pins this behaviour.
    """

    def __init__(self):
        super().__init__()
        self.enabled = False

    def emit(self, category, name, node=None, cause=None, **data):
        return None


NULL_RECORDER = _NullRecorder()


class Telemetry:
    """The bundle a :class:`~repro.core.machine.FlashMachine` accepts.

    ``Telemetry()`` enables both the event bus and the metrics registry;
    ``Telemetry(trace=False)`` keeps only metrics (cheap counters harvested
    at the end of a run, nothing on the hot path);
    ``Telemetry(trace=False, flight=N)`` attaches a
    :class:`~repro.telemetry.flight.FlightRecorder` instead — a bounded
    ring keeping the *last* N events (the always-on campaign/fuzz mode:
    full tracing off, but a failure still arrives with its tail window).
    """

    def __init__(self, trace=True, max_events=None, flight=None):
        if flight is not None:
            from repro.telemetry.flight import FlightRecorder
            self.recorder = FlightRecorder(capacity=flight)
        elif trace:
            self.recorder = TraceRecorder(max_events=max_events)
        else:
            self.recorder = None
        from repro.telemetry.metrics import MetricsRegistry
        self.metrics = MetricsRegistry()

    def bind(self, sim):
        if self.recorder is not None:
            self.recorder.bind(sim)
        return self

    @property
    def events(self):
        return self.recorder.events if self.recorder is not None else []
