"""Fleet status sidecars: atomically-updated ``status.json`` heartbeats.

A 100k-schedule sweep (the ROADMAP's distributed campaign fabric) is only
operable if a running batch can be *asked how it is doing* without
attaching to its stderr.  Both driving loops — the campaign runner and
the fuzz engine — already own a progress callback per finished run; this
module rides that path with a structured heartbeat:

* the driver owns a :class:`StatusWriter` pointed at a sidecar next to
  its output (``<records>.status.json`` for campaigns,
  ``<out_dir>/status.json`` for fuzz sessions);
* every update writes the *whole* status document to a temp file and
  ``os.replace``-s it into place, so a concurrent reader (``repro.cli
  status``, a dashboard, another agent) never sees a torn JSON —
  the same atomicity story as the JSONL append-and-resume contract;
* updates are throttled (:attr:`StatusWriter.min_interval_s`) so a burst
  of sub-second runs does not turn the sidecar into an I/O hot spot; the
  terminal update is forced so the final document always says
  ``finished``.

The document is deliberately self-contained: kind, pid, wall-clock
progress, outcome counts, in-flight runs with their ages, a rate/ETA
estimate, and engine-specific extras (coverage growth for fuzz sessions).
"""

import json
import os
import time


class StatusWriter:
    """Owns one status sidecar; every ``update`` is an atomic replace."""

    def __init__(self, path, kind, total=None, min_interval_s=0.5):
        self.path = path
        self.kind = kind
        self.total = total
        self.min_interval_s = min_interval_s
        self.started = time.time()
        self.started_monotonic = time.monotonic()
        self._last_write = None

    def update(self, done=0, counts=None, in_flight=None, extras=None,
               finished=False, force=False):
        """Write the current status document (throttled unless forced)."""
        now = time.monotonic()
        if (not force and not finished and self._last_write is not None
                and now - self._last_write < self.min_interval_s):
            return False
        self._last_write = now
        elapsed = now - self.started_monotonic
        rate = done / elapsed if elapsed > 0 and done else None
        remaining = (self.total - done
                     if self.total is not None and done is not None else None)
        payload = {
            "kind": self.kind,
            "pid": os.getpid(),
            "started_at": self.started,
            "updated_at": time.time(),
            "elapsed_s": round(elapsed, 3),
            "total": self.total,
            "done": done,
            "counts": dict(counts or {}),
            "in_flight": list(in_flight or ()),
            "rate_per_s": round(rate, 4) if rate else None,
            "eta_s": (round(remaining / rate, 1)
                      if rate and remaining is not None and remaining > 0
                      else None),
            "finished": finished,
        }
        if extras:
            payload["extras"] = dict(extras)
        _atomic_write_json(self.path, payload)
        return True


def _atomic_write_json(path, payload):
    """Write-then-rename so readers never observe a torn document."""
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def status_sidecar_path(path):
    """The sidecar a given campaign/fuzz output path implies.

    Accepts the sidecar itself, a fuzz session directory, or a campaign
    records path (``x.jsonl`` -> ``x.jsonl.status.json``).
    """
    if os.path.isdir(path):
        return os.path.join(path, "status.json")
    if path.endswith(".status.json") or os.path.basename(path) == \
            "status.json":
        return path
    return path + ".status.json"


def read_status(path):
    """Load a status document (resolving the sidecar path); None if absent
    or torn mid-write on a filesystem without atomic rename."""
    sidecar = status_sidecar_path(path)
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, ValueError):
        return None


def format_status(payload):
    """Human-readable live view of one status document."""
    age = time.time() - payload.get("updated_at", 0.0)
    state = "finished" if payload.get("finished") else (
        "running" if age < 30.0 else "STALE (%.0fs since heartbeat)" % age)
    lines = ["%s sweep [%s]  pid=%s" % (payload.get("kind", "?"), state,
                                        payload.get("pid"))]
    total = payload.get("total")
    done = payload.get("done", 0)
    progress = ("%d/%d" % (done, total)) if total else "%d" % done
    line = "  progress: %s runs in %.1fs" % (progress,
                                             payload.get("elapsed_s", 0.0))
    if payload.get("rate_per_s"):
        line += "  (%.2f runs/s" % payload["rate_per_s"]
        if payload.get("eta_s") is not None:
            line += ", ~%.0fs left" % payload["eta_s"]
        line += ")"
    lines.append(line)
    counts = payload.get("counts") or {}
    if counts:
        lines.append("  outcomes: " + "  ".join(
            "%s=%d" % (key, counts[key]) for key in sorted(counts)))
    in_flight = payload.get("in_flight") or ()
    for entry in in_flight:
        lines.append("  in flight: run %s  %.1fs"
                     % (entry.get("run_index"), entry.get("elapsed_s", 0.0)))
    extras = payload.get("extras") or {}
    if extras:
        lines.append("  " + "  ".join(
            "%s=%s" % (key, extras[key]) for key in sorted(extras)))
    return "\n".join(lines)
