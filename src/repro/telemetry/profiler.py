"""Sim-time profiler: per-handler wall-time attribution at the dispatch.

The ROADMAP's "timer wheel + stage-batched routers" item needs a target:
*which* callbacks actually burn the wall clock in a campaign-scale run?
cProfile answers in Python-function terms; this profiler answers in
simulation terms — per process family and per handler — by wrapping the
single point every event already passes through,
:meth:`Simulator.step <repro.sim.engine.Simulator.step>`'s callback
dispatch.

Contract (mirrors the trace guard, DESIGN.md §9/§15):

* ``Simulator.profiler`` is ``None`` by default; the dispatch site is::

      prof = self.profiler
      if prof is not None:
          prof.dispatch(call.callback, call.args)
      else:
          call.callback(*call.args)

  so a detached run pays one attribute load and one identity test per
  event, and the lint ``telemetry-guard`` rule covers the site;
* attached, the profiler only *reads* the wall clock around the callback
  — it draws no randomness and schedules nothing, so a profiled run is
  bit-identical to an unprofiled one (directed test in
  ``tests/test_flight_profiler.py``).

Labels normalize per-instance digits (``fwd3`` -> ``fwdN``) so the
attribution aggregates by process *family*; the generator's code name is
kept as a second frame, which makes :meth:`SimProfiler.folded` output
directly loadable by any flamegraph renderer (``flamegraph.pl``,
speedscope, inferno) — one line per stack, weight in microseconds.
"""

import re
from time import perf_counter

_DIGITS = re.compile(r"\d+")


class SimProfiler:
    """Accumulates per-label event counts and wall seconds."""

    def __init__(self):
        self._stats = {}          # label -> [count, wall_s]
        self.dispatches = 0
        self.wall_s = 0.0

    # ------------------------------------------------------------ hot path

    def dispatch(self, callback, args):
        """Run ``callback(*args)``, attributing its wall time."""
        started = perf_counter()
        try:
            callback(*args)
        finally:
            elapsed = perf_counter() - started
            label = self._label(callback)
            entry = self._stats.get(label)
            if entry is None:
                entry = self._stats[label] = [0, 0.0]
            entry[0] += 1
            entry[1] += elapsed
            self.dispatches += 1
            self.wall_s += elapsed

    @staticmethod
    def _label(callback):
        """``process-family;generator`` for process-owned callbacks,
        qualname for plain functions."""
        process = getattr(callback, "__self__", None)
        if process is None or not hasattr(process, "generator"):
            # Wait-lane adapters carry their process one or two hops away.
            process = getattr(callback, "process", None)
            if process is None:
                wait = getattr(callback, "wait", None)
                process = getattr(wait, "process", None)
        if process is not None:
            family = _DIGITS.sub("N", getattr(process, "name", None)
                                 or "process")
            generator = getattr(process, "generator", None)
            code = getattr(generator, "gi_code", None)
            if code is not None and code.co_name != family:
                return "%s;%s" % (family, code.co_name)
            return family
        name = getattr(callback, "__qualname__", None)
        if name is None:
            name = type(callback).__name__
        return _DIGITS.sub("N", name)

    # ------------------------------------------------------------- reports

    def top(self, limit=10):
        """``(label, count, wall_s)`` rows, heaviest wall time first."""
        rows = sorted(self._stats.items(),
                      key=lambda item: (-item[1][1], item[0]))
        return [(label, count, wall)
                for label, (count, wall) in rows[:limit]]

    def snapshot(self):
        """JSON-friendly dump of the full attribution."""
        return {
            "dispatches": self.dispatches,
            "wall_s": round(self.wall_s, 6),
            "handlers": {
                label: {"count": count, "wall_s": round(wall, 6)}
                for label, (count, wall) in sorted(self._stats.items())
            },
        }

    def folded(self):
        """Folded-stack lines (``frame;frame weight``), weight in us."""
        lines = []
        for label, (_count, wall) in sorted(self._stats.items()):
            lines.append("sim;%s %d" % (label, round(wall * 1e6)))
        return "\n".join(lines) + ("\n" if lines else "")

    def merge(self, other):
        """Fold another profiler's attribution into this one."""
        for label, (count, wall) in other._stats.items():
            entry = self._stats.get(label)
            if entry is None:
                entry = self._stats[label] = [0, 0.0]
            entry[0] += count
            entry[1] += wall
        self.dispatches += other.dispatches
        self.wall_s += other.wall_s
        return self


def profile_table(profiler, limit=10, title="Sim-time profile"):
    """Human-readable top-N table of one profiler's attribution."""
    from repro.analysis.tables import format_table
    total = profiler.wall_s or 1.0
    rows = []
    for label, count, wall in profiler.top(limit):
        rows.append((label, count, "%.4f" % wall,
                     "%.1f%%" % (100.0 * wall / total),
                     "%.2f" % (wall / count * 1e6 if count else 0.0)))
    return format_table(
        "%s (top %d of %d handlers, %.4fs dispatched)"
        % (title, min(limit, len(profiler._stats)), len(profiler._stats),
           profiler.wall_s),
        ["handler", "events", "wall [s]", "share", "us/event"],
        rows)
