"""Fleet reports: aggregate campaign + fuzz JSONL into one HTML document.

``repro.cli report`` is the read side of the fleet observability layer:
given any mix of campaign records files and fuzz session directories, it
produces a single self-contained HTML report (inline CSS + SVG, no
external assets, no dependencies) with the paper-facing statistics:

* outcome mix per source and overall (pass / fail / crashed / hung);
* **containment-time percentiles** — p50/p95/p99 over every recovery
  episode observed across all sources, the headline distribution
  (PAPERS.md: containment-time distributions for self-stabilizing
  systems) plus its bucket histogram;
* **availability / MTTR** — fleet-level aggregation of the per-run
  availability sections (:mod:`repro.telemetry.availability`), with MTTR
  percentiles recomputed over raw episode durations, never averaged over
  per-run percentiles;
* **blast-radius distribution** — how many nodes each injected fault
  actually reached (forensic summaries), the observational containment
  evidence;
* **coverage growth** — the fuzz sessions' distinct-feature curve over
  run index, showing whether the mutation loop is still finding new
  behaviour.

The same aggregate is available as JSON (``--json``) for dashboards.
"""

import html
import json
import os

from repro.telemetry.availability import merge_availability
from repro.telemetry.metrics import Histogram

_STATUSES = ("pass", "fail", "crashed", "hung")

_STATUS_COLORS = {"pass": "#2e7d32", "fail": "#c62828",
                  "crashed": "#6a1b9a", "hung": "#ef6c00"}


# ------------------------------------------------------------- collection

def _load_json_lines(path):
    rows = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return rows
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                continue   # torn tail line of a live session
    return rows


def collect_sources(paths):
    """Resolve CLI paths into ``{path, kind, records}`` sources.

    A directory is a fuzz session (``records.jsonl`` inside); a JSONL
    file is sniffed — fuzz records carry ``lineage``, campaign records do
    not.
    """
    sources = []
    for path in paths:
        if os.path.isdir(path):
            records_path = os.path.join(path, "records.jsonl")
            sources.append({"path": path, "kind": "fuzz",
                            "records": _load_json_lines(records_path)})
            continue
        records = _load_json_lines(path)
        kind = ("fuzz" if records and "lineage" in records[0]
                else "campaign")
        sources.append({"path": path, "kind": kind, "records": records})
    return sources


# ------------------------------------------------------------ aggregation

def aggregate(sources):
    """Fold sources into the report aggregate (JSON-friendly)."""
    outcomes = {status: 0 for status in _STATUSES}
    containment = Histogram()
    availability_sections = []
    blast = {}
    growth = []
    per_source = []
    fuzz_runs = 0

    for source in sources:
        counts = {status: 0 for status in _STATUSES}
        for record in source["records"]:
            status = record.get("status", "crashed")
            counts[status] = counts.get(status, 0) + 1
            outcomes[status] = outcomes.get(status, 0) + 1
            metrics = record.get("metrics") or {}
            section = metrics.get("availability")
            if section:
                availability_sections.append(section)
                for duration_ms in section.get("episode_durations_ms", ()):
                    containment.observe(duration_ms)
            elif source["kind"] == "fuzz":
                for ns in record.get("containment_ns", ()):
                    containment.observe(ns / 1e6)
            else:
                # Pre-availability campaign records still carry the last
                # episode's recovery latency in the metrics summary.
                total_ms = (metrics.get("recovery") or {}).get("total_ms")
                if total_ms:
                    containment.observe(total_ms)
            for fault in (record.get("forensics") or {}).get("faults", ()):
                radius = len(fault.get("blast_nodes", ()))
                blast[radius] = blast.get(radius, 0) + 1
        per_source.append({
            "path": source["path"],
            "kind": source["kind"],
            "runs": len(source["records"]),
            "counts": counts,
        })
        if source["kind"] == "fuzz":
            seen = 0
            for record in sorted(source["records"],
                                 key=lambda r: r.get("run_index", 0)):
                seen += len(record.get("new_features", ()))
                fuzz_runs += 1
                growth.append((fuzz_runs, seen))

    total = sum(outcomes.values())
    return {
        "sources": per_source,
        "runs": total,
        "outcomes": outcomes,
        "containment_ms": {
            "count": containment.count,
            "mean": round(containment.mean, 6) if containment.count else None,
            "p50": containment.percentile(50),
            "p95": containment.percentile(95),
            "p99": containment.percentile(99),
            "max": containment.max,
            "buckets": {str(bound): count for bound, count
                        in sorted(containment.buckets.items())},
        },
        "availability": merge_availability(availability_sections),
        "blast_radius": {str(radius): count for radius, count
                         in sorted(blast.items())},
        "coverage_growth": growth,
    }


# -------------------------------------------------------------- rendering

def _svg_bars(pairs, width=640, height=180, color="#1565c0"):
    """Vertical bar chart of ``(label, value)`` pairs as inline SVG."""
    if not pairs:
        return "<p class='empty'>no data</p>"
    top = max(value for _, value in pairs) or 1
    pad, axis = 8, 22
    slot = (width - pad * 2) / len(pairs)
    bar_w = max(2.0, slot * 0.7)
    parts = ["<svg viewBox='0 0 %d %d' role='img'>" % (width, height + axis)]
    for index, (label, value) in enumerate(pairs):
        bar_h = (height - pad) * value / top
        x = pad + index * slot + (slot - bar_w) / 2
        y = height - bar_h
        parts.append(
            "<rect x='%.1f' y='%.1f' width='%.1f' height='%.1f' "
            "fill='%s'><title>%s: %s</title></rect>"
            % (x, y, bar_w, bar_h, color,
               html.escape(str(label)), value))
        parts.append(
            "<text x='%.1f' y='%.1f' font-size='10' fill='#444' "
            "text-anchor='middle'>%s</text>"
            % (x + bar_w / 2, height + 14, html.escape(str(label))))
        parts.append(
            "<text x='%.1f' y='%.1f' font-size='10' fill='#222' "
            "text-anchor='middle'>%s</text>"
            % (x + bar_w / 2, max(10.0, y - 3), value))
    parts.append("</svg>")
    return "".join(parts)


def _svg_line(points, width=640, height=180, color="#1565c0"):
    """Line chart of ``(x, y)`` points as inline SVG."""
    if len(points) < 2:
        return "<p class='empty'>fewer than two points</p>"
    pad, axis = 8, 22
    x_max = max(x for x, _ in points) or 1
    y_max = max(y for _, y in points) or 1
    scale_x = (width - pad * 2) / x_max
    scale_y = (height - pad * 2) / y_max
    coords = " ".join(
        "%.1f,%.1f" % (pad + x * scale_x, height - pad - y * scale_y)
        for x, y in points)
    last_x, last_y = points[-1]
    return (
        "<svg viewBox='0 0 %d %d' role='img'>"
        "<polyline points='%s' fill='none' stroke='%s' stroke-width='2'/>"
        "<text x='%.1f' y='%.1f' font-size='10' fill='#222' "
        "text-anchor='end'>%d features @ run %d</text>"
        "<text x='%.1f' y='%.1f' font-size='10' fill='#444'>runs -></text>"
        "</svg>"
        % (width, height + axis, coords, color,
           width - pad, max(12.0, height - pad - last_y * scale_y - 6),
           last_y, last_x, pad, height + 14))


def _outcome_section(agg):
    pairs = [(status, agg["outcomes"].get(status, 0))
             for status in _STATUSES]
    bars = "".join(
        "<div class='chip' style='background:%s'>%s&nbsp;%d</div>"
        % (_STATUS_COLORS[status], status, count)
        for status, count in pairs)
    rows = "".join(
        "<tr><td>%s</td><td>%s</td><td>%d</td>%s</tr>"
        % (html.escape(source["path"]), source["kind"], source["runs"],
           "".join("<td>%d</td>" % source["counts"].get(status, 0)
                   for status in _STATUSES))
        for source in agg["sources"])
    return (
        "<h2>Outcome mix — %d runs</h2><div class='chips'>%s</div>"
        "<table><tr><th>source</th><th>kind</th><th>runs</th>"
        "<th>pass</th><th>fail</th><th>crashed</th><th>hung</th></tr>"
        "%s</table>" % (agg["runs"], bars, rows))


def _containment_section(agg):
    stats = agg["containment_ms"]
    if not stats["count"]:
        return "<h2>Containment time</h2><p class='empty'>no recovery " \
               "episodes observed</p>"
    buckets = [(_bucket_label(bound), count)
               for bound, count in stats["buckets"].items()]
    return (
        "<h2>Containment time — %d episodes</h2>"
        "<p>p50=<b>%s ms</b> p95=<b>%s ms</b> p99=<b>%s ms</b> "
        "mean=%s ms max=%s ms</p>%s"
        % (stats["count"], stats["p50"], stats["p95"], stats["p99"],
           stats["mean"], stats["max"],
           _svg_bars(buckets, color="#1565c0")))


def _bucket_label(bound):
    value = float(bound)
    return ("<=%g" % value) if value < 1024 else "<=%gk" % (value / 1024)


def _availability_section(agg):
    avail = agg["availability"]
    if not avail.get("runs"):
        return "<h2>Availability</h2><p class='empty'>no availability " \
               "sections (records predate the availability layer)</p>"
    mttr = avail.get("mttr_ms") or {}
    mttr_html = ""
    if mttr:
        mttr_html = ("<p>MTTR: p50=<b>%s ms</b> p95=<b>%s ms</b> "
                     "p99=<b>%s ms</b> mean=%s ms over %d repair(s)</p>"
                     % (mttr.get("p50"), mttr.get("p95"), mttr.get("p99"),
                        mttr.get("mean"), mttr.get("count")))
    return (
        "<h2>Availability — %d runs</h2>"
        "<p>mean availability=<b>%s</b> min=%s, %d episode(s), "
        "%d cell(s) ended down</p>%s"
        % (avail["runs"], avail.get("availability_mean"),
           avail.get("availability_min"), avail.get("episodes", 0),
           avail.get("down_nodes", 0), mttr_html))


def _blast_section(agg):
    blast = agg["blast_radius"]
    if not blast:
        return "<h2>Blast radius</h2><p class='empty'>no forensic " \
               "summaries in these records</p>"
    pairs = [("%s node(s)" % radius, count)
             for radius, count in sorted(blast.items(),
                                         key=lambda kv: int(kv[0]))]
    return ("<h2>Blast-radius distribution — %d audited fault(s)</h2>%s"
            % (sum(blast.values()), _svg_bars(pairs, color="#c62828")))


def _coverage_section(agg):
    growth = agg["coverage_growth"]
    if not growth:
        return "<h2>Coverage growth</h2><p class='empty'>no fuzz " \
               "sessions among the sources</p>"
    return ("<h2>Coverage growth — %d fuzz runs</h2>%s"
            % (growth[-1][0], _svg_line(growth, color="#2e7d32")))


_PAGE = """<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>%(title)s</title>
<style>
 body { font: 14px/1.5 -apple-system, "Segoe UI", sans-serif;
        margin: 2em auto; max-width: 720px; color: #1a1a1a; }
 h1 { font-size: 1.4em; border-bottom: 2px solid #1565c0;
      padding-bottom: .3em; }
 h2 { font-size: 1.1em; margin-top: 1.6em; }
 table { border-collapse: collapse; margin: .6em 0; width: 100%%; }
 th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: left;
          font-size: 13px; }
 th { background: #f0f4f8; }
 svg { width: 100%%; height: auto; background: #fafafa;
       border: 1px solid #eee; }
 .chips { margin: .4em 0; }
 .chip { display: inline-block; color: #fff; border-radius: 3px;
         padding: .15em .6em; margin-right: .4em; font-size: 13px; }
 .empty { color: #777; font-style: italic; }
 footer { margin-top: 2em; color: #777; font-size: 12px; }
</style></head><body>
<h1>%(title)s</h1>
%(sections)s
<footer>self-contained report — repro.cli report</footer>
</body></html>
"""


def render_html(agg, title="Fault-containment fleet report"):
    """The full self-contained HTML document for one aggregate."""
    sections = "\n".join([
        _outcome_section(agg),
        _containment_section(agg),
        _availability_section(agg),
        _blast_section(agg),
        _coverage_section(agg),
    ])
    return _PAGE % {"title": html.escape(title), "sections": sections}


def write_report(paths, out_path, title="Fault-containment fleet report"):
    """Aggregate ``paths`` and write the HTML report; returns the
    aggregate."""
    agg = aggregate(collect_sources(paths))
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(render_html(agg, title=title))
    return agg
