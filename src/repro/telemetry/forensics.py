"""Fault forensics: causal DAGs, blast radii and containment audits.

The paper's central claim is *observational*: a fault may destroy state
inside its failure unit (cell), but no effect of it escapes the cell except
over sanctioned channels — the dedicated recovery lanes (§4.1) and
firewall-permitted coherence paths (§3.3).  The oracle checks the claim by
comparing end states; this module checks it by *watching the propagation*:

1. **Causal DAG** — every trace event may carry a ``cause`` edge (the eid
   of its causal parent, or a tuple of eids at merge points).  Packets
   thread these edges hop by hop (NI send -> NI recv -> handler fan-out),
   the injector mints a root-cause id ("F0", "F1", ...) per injected fault,
   and components tainted by a fault merge its lineage into everything they
   touch.  :func:`build_dag` reconstructs the children map.

2. **Blast radius** — everything causally downstream of a ``fault.inject``
   root, minus *repair*: the recovery machinery's own descendants (episode
   events, recovery-lane traffic, P4 writebacks) are the cure, not the
   disease.  The radius reports the nodes, memory lines and packets the
   fault actually reached.

3. **Containment audit** — each remaining fault-descendant packet event
   observed *outside* the fault's cell is classified.  Packets destroyed at
   the boundary (drops, sinks, NAK/bus-error terminations) are containment
   working as designed.  A state-transferring event outside the cell — an
   exclusive grant issued by an outside home to a tainted requester, dirty
   data absorbed from a tainted owner, an invalidation fanning out — is a
   **violation**: the observational signature of the escape the oracle
   would flag as corruption.  Verdict: ``contained`` iff no violations.

Graceful degradation: when the recorder's event cap was hit, descendant
events may be missing and cause edges may dangle.  The report carries
``truncated``/``dropped_events`` so a "contained" verdict from a truncated
trace can be treated with suspicion.

Timeout attribution caveat: a memory-op timeout observes nothing (§4.2),
so its cause edge uses :meth:`Network.fault_lineage_of` — exact for single
faults, best-effort ("latest injection") for overlapping ones.
"""

#: lanes on which fault-descendant traffic is sanctioned (§4.1)
RECOVERY_LANES = frozenset({"RECOVERY_A", "RECOVERY_B"})

#: containment responses: the protocol terminating an access (§3.1-§3.3)
TERMINATION_KINDS = frozenset({"NAK", "BUS_ERROR_REPLY"})

#: recovery-machinery kinds that ride normal lanes
MACHINERY_KINDS = frozenset({"FLUSH_DONE"})

#: state transfer *into* a requester: write-ownership grants (§3.3)
GRANT_KINDS = frozenset({"DATA_EXCL"})

#: state transfer *out of* a tainted node absorbed elsewhere
ABSORB_KINDS = frozenset({"PUT", "SHARING_WB", "OWNERSHIP_XFER",
                          "UC_WRITE"})

#: cache-state mutation fanned out by a home on behalf of a requester
INVALIDATION_KINDS = frozenset({"INVAL", "FWD_GETX"})


def _kind_name(kind):
    """'MessageKind.GETX' -> 'GETX'; router string kinds pass through."""
    if kind is None:
        return None
    return kind.rsplit(".", 1)[-1]


def _parents(cause):
    if cause is None:
        return ()
    if isinstance(cause, tuple):
        return cause
    return (cause,)


def build_dag(events):
    """Children map of the causal DAG: eid -> [child eids].

    Returns ``(children, dangling)`` where ``dangling`` counts cause edges
    whose parent is not among ``events`` (a windowed or truncated trace).
    """
    known = {event.eid for event in events if event.eid is not None}
    children = {}
    dangling = 0
    for event in events:
        if event.eid is None:
            continue
        for parent in _parents(event.cause):
            if parent in known:
                children.setdefault(parent, []).append(event.eid)
            else:
                dangling += 1
    return children, dangling


def _descendants(children, roots):
    """All eids reachable from ``roots`` (roots excluded)."""
    seen = set()
    frontier = list(roots)
    while frontier:
        eid = frontier.pop()
        for child in children.get(eid, ()):
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen


def _classify(event):
    """Forensic class of one event (DESIGN.md §11 edge taxonomy)."""
    if event.category != "pkt":
        return "machinery"
    data = event.data
    if data.get("lane") in RECOVERY_LANES:
        return "recovery-lane"
    if event.name in ("drop", "sink"):
        return "destroyed"
    if data.get("truncated"):
        return "truncated"
    kind = _kind_name(data.get("kind"))
    if kind in TERMINATION_KINDS:
        return "terminated"
    if kind in MACHINERY_KINDS:
        return "machinery"
    return "data"


def _violation_reason(event):
    """Why a data-class packet event outside the cell is an escape, or
    None when it is only an (informational) boundary crossing."""
    kind = _kind_name(event.data.get("kind"))
    if event.name == "send" and kind in GRANT_KINDS:
        return "write-grant escape: %s issued outside the failed cell" % kind
    if event.name == "send" and kind in INVALIDATION_KINDS:
        return ("invalidation escape: %s fanned out outside the failed "
                "cell" % kind)
    if event.name == "recv" and kind in ABSORB_KINDS:
        return ("dirty-data escape: %s absorbed outside the failed cell"
                % kind)
    return None


class FaultForensics:
    """Blast radius and audit for one injected fault."""

    def __init__(self, root, inject_event):
        self.root = root
        self.inject_eid = inject_event.eid
        self.time = inject_event.time
        self.fault = inject_event.data.get("fault")
        self.target = inject_event.data.get("target")
        self.cell = list(inject_event.data.get("cell") or ())
        self.blast_nodes = []
        self.blast_lines = []
        self.blast_packets = 0
        self.blast_events = 0
        self.repair_events = 0
        self.boundary_events = 0     # descendants destroyed/terminated
        self.crossings = []          # informational out-of-cell arrivals
        self.violations = []

    @property
    def verdict(self):
        return "escape" if self.violations else "contained"

    def to_dict(self):
        return {
            "root": self.root,
            "fault": self.fault,
            "target": self.target,
            "cell": self.cell,
            "time": self.time,
            "inject_eid": self.inject_eid,
            "blast": {
                "nodes": self.blast_nodes,
                "lines": self.blast_lines,
                "packets": self.blast_packets,
                "events": self.blast_events,
            },
            "repair_events": self.repair_events,
            "boundary_events": self.boundary_events,
            "crossings": self.crossings,
            "violations": self.violations,
            "verdict": self.verdict,
        }


class ForensicsReport:
    """The full audit of one traced run."""

    def __init__(self, faults, total_events, dropped_events, dangling):
        self.faults = faults
        self.total_events = total_events
        self.dropped_events = dropped_events
        self.dangling_edges = dangling
        self.truncated = dropped_events > 0

    @property
    def verdict(self):
        if not self.faults:
            return "no-fault"
        if any(fault.verdict == "escape" for fault in self.faults):
            return "escape"
        return "contained"

    def to_dict(self):
        return {
            "verdict": self.verdict,
            "truncated": self.truncated,
            "dropped_events": self.dropped_events,
            "dangling_edges": self.dangling_edges,
            "total_events": self.total_events,
            "faults": [fault.to_dict() for fault in self.faults],
        }


def _event_ref(event):
    return {"eid": event.eid, "time": event.time, "event": event.key,
            "node": event.node, "kind": _kind_name(event.data.get("kind")),
            "line": event.data.get("line"), "uid": event.data.get("uid")}


def analyze(source, dropped_events=None):
    """Run the forensic audit; returns a :class:`ForensicsReport`.

    ``source`` is a :class:`~repro.telemetry.trace.TraceRecorder` or a
    plain iterable of :class:`TraceEvent`.
    """
    events = getattr(source, "events", source)
    if dropped_events is None:
        dropped_events = getattr(source, "dropped_events", 0)
    by_eid = {event.eid: event for event in events if event.eid is not None}
    children, dangling = build_dag(events)

    # Episode machinery descendants (of any episode.begin) form the repair
    # set: recovery pings, reprogramming, P4 writebacks.  They descend from
    # the fault *through* its detection, and are excluded from the radius —
    # repair is not contamination.
    episode_roots = [event.eid for event in events
                     if event.category == "episode"
                     and event.name == "begin" and event.eid is not None]
    repair = _descendants(children, episode_roots) | set(episode_roots)

    faults = []
    for event in events:
        if event.category != "fault" or event.name != "inject":
            continue
        if event.eid is None:
            continue
        fault = FaultForensics(event.data.get("root"), event)
        cell = set(fault.cell)
        nodes, lines, packets = set(), set(), set()

        for eid in sorted(_descendants(children, [event.eid])):
            desc = by_eid[eid]
            cls = _classify(desc)
            if cls == "machinery":
                continue
            if eid in repair or cls == "recovery-lane":
                fault.repair_events += 1
                continue
            fault.blast_events += 1
            if desc.node is not None:
                nodes.add(desc.node)
            line = desc.data.get("line")
            if line is not None:
                lines.add(line)
            uid = desc.data.get("uid")
            if uid is not None:
                packets.add(uid)
            outside = desc.node is not None and desc.node not in cell
            if not outside:
                continue
            if cls in ("destroyed", "truncated", "terminated"):
                # Destroyed at/inside the boundary: containment at work.
                fault.boundary_events += 1
                continue
            reason = _violation_reason(desc)
            ref = _event_ref(desc)
            if reason is None:
                fault.crossings.append(ref)
            else:
                ref["reason"] = reason
                fault.violations.append(ref)

        fault.blast_nodes = sorted(nodes)
        fault.blast_lines = sorted(lines)
        fault.blast_packets = len(packets)
        faults.append(fault)

    return ForensicsReport(faults, len(events), dropped_events, dangling)


def forensic_summary(source):
    """Compact dict for campaign run records: root causes, blast radius
    and audit verdict per fault, plus the truncation caveat."""
    report = analyze(source)
    return {
        "verdict": report.verdict,
        "truncated": report.truncated,
        # For a head-capped trace: events silently dropped at the tail;
        # for a flight ring: oldest events evicted.  Either way a
        # "contained" verdict over a truncated window deserves suspicion.
        "dropped_events": report.dropped_events,
        "analyzed_events": report.total_events,
        "faults": [
            {
                "root": fault.root,
                "fault": fault.fault,
                "target": fault.target,
                "cell": fault.cell,
                "blast_nodes": fault.blast_nodes,
                "blast_events": fault.blast_events,
                "violations": len(fault.violations),
                "verdict": fault.verdict,
            }
            for fault in report.faults
        ],
    }


def format_forensics(report):
    """Human-readable audit report."""
    lines = []
    lines.append("containment audit: %s%s" % (
        report.verdict,
        "  [TRUNCATED TRACE: %d events dropped]" % report.dropped_events
        if report.truncated else ""))
    lines.append("  events analyzed: %d   dangling cause edges: %d"
                 % (report.total_events, report.dangling_edges))
    for fault in report.faults:
        lines.append("fault %s: %s target=%s cell=%s @%.0fns -> %s"
                     % (fault.root, fault.fault, fault.target,
                        fault.cell, fault.time, fault.verdict))
        lines.append("  blast radius: %d events, %d packets, "
                     "nodes=%s lines=%s"
                     % (fault.blast_events, fault.blast_packets,
                        fault.blast_nodes,
                        ["0x%x" % l for l in fault.blast_lines]))
        lines.append("  repair descendants: %d   destroyed at boundary: %d"
                     "   benign crossings: %d"
                     % (fault.repair_events, fault.boundary_events,
                        len(fault.crossings)))
        for violation in fault.violations:
            lines.append("  VIOLATION @%.0fns node=%d %s uid=%s line=%s"
                         % (violation["time"], violation["node"],
                            violation["reason"], violation["uid"],
                            "0x%x" % violation["line"]
                            if violation["line"] is not None else None))
    return "\n".join(lines)
