"""Metrics: counters, gauges and histograms with per-node aggregation.

Two sources feed the registry:

* explicit instrumentation (``registry.counter("x", node=3).inc()``);
* :func:`harvest_machine_metrics`, which sweeps the statistics the hardware
  model keeps anyway (RouterStats, MagicStats, RecoveryReports, the
  simulator's executed-event counter) into the registry after a run —
  zero cost during the run itself.

:func:`summarize_run` produces the compact JSON-friendly per-run summary
that campaign records carry.
"""


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value


class Histogram:
    """Power-of-two bucketed histogram plus count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = {}      # bucket upper bound (2**k) -> count

    def observe(self, value):
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bound = 1
        while bound < value:
            bound <<= 1
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Estimated q-th percentile (0 < q <= 100).

        Walks the cumulative bucket counts and returns the upper bound of
        the bucket containing the target rank, clipped to the observed max
        — accurate to within one power of two, which is all the bucketing
        keeps.  Returns None for an empty histogram.
        """
        if not self.count:
            return None
        target = self.count * q / 100.0
        cumulative = 0
        for bound in sorted(self.buckets):
            cumulative += self.buckets[bound]
            if cumulative >= target:
                return min(bound, self.max)
        return self.max

    def percentiles(self):
        return {"p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99)}

    def snapshot(self):
        snap = {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean,
                "buckets": dict(sorted(self.buckets.items()))}
        snap.update(self.percentiles())
        return snap


#: label used for machine-wide (not per-node) instruments
MACHINE = "_machine"


class MetricsRegistry:
    """Named instruments, each optionally labelled with a node id."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # ----------------------------------------------------------- factories

    def counter(self, name, node=None):
        return self._get(self._counters, Counter, name, node)

    def gauge(self, name, node=None):
        return self._get(self._gauges, Gauge, name, node)

    def histogram(self, name, node=None):
        return self._get(self._histograms, Histogram, name, node)

    @staticmethod
    def _get(store, factory, name, node):
        key = (name, MACHINE if node is None else node)
        instrument = store.get(key)
        if instrument is None:
            instrument = store[key] = factory()
        return instrument

    # ---------------------------------------------------------- aggregation

    def counter_total(self, name):
        """Machine-wide sum of a counter across all nodes."""
        return sum(counter.value for (n, _), counter in
                   self._counters.items() if n == name)

    def counter_by_node(self, name):
        return {node: counter.value
                for (n, node), counter in self._counters.items()
                if n == name and node != MACHINE}

    def counter_items(self, prefix=""):
        """Sorted ``(name, node, value)`` triples, optionally filtered by
        a name prefix (e.g. ``"protocol.cover."`` for the fuzzer)."""
        return sorted(
            ((name, node, counter.value)
             for (name, node), counter in self._counters.items()
             if name.startswith(prefix)),
            key=lambda item: (item[0], str(item[1])))

    def names(self):
        return sorted({name for name, _ in self._counters}
                      | {name for name, _ in self._gauges}
                      | {name for name, _ in self._histograms})

    def snapshot(self):
        """Nested JSON-friendly dump: kind -> name -> node -> value."""
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, node), counter in sorted(
                self._counters.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
            out["counters"].setdefault(name, {})[str(node)] = counter.value
        for (name, node), gauge in sorted(
                self._gauges.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
            out["gauges"].setdefault(name, {})[str(node)] = gauge.value
        for (name, node), histogram in sorted(
                self._histograms.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))):
            out["histograms"].setdefault(
                name, {})[str(node)] = histogram.snapshot()
        return out


# --------------------------------------------------------------- harvesting

_ROUTER_STAT_FIELDS = (
    "forwarded", "delivered_local", "dropped_failed", "dropped_unroutable",
    "dropped_discard", "dropped_stall", "dropped_link",
    "dropped_intermittent", "probes_answered",
)

_MAGIC_STAT_FIELDS = (
    "handlers_run", "pi_requests", "naks_sent", "naks_received",
    "bus_errors", "timeouts", "nak_overflows", "assertion_failures",
    "truncated_received", "stray_messages", "firewall_rejections",
    "range_check_rejections", "drained_messages",
)

_PHASES = ("P1", "P2", "P3", "P4", "WB")


def harvest_machine_metrics(machine, registry=None):
    """Sweep a machine's hardware statistics into a registry."""
    registry = registry or MetricsRegistry()
    for router in machine.network.routers:
        for field in _ROUTER_STAT_FIELDS:
            registry.counter("router.%s" % field, node=router.router_id).inc(
                getattr(router.stats, field))
    for node in machine.nodes:
        for field in _MAGIC_STAT_FIELDS:
            registry.counter("magic.%s" % field, node=node.node_id).inc(
                getattr(node.magic.stats, field))
    manager = machine.recovery_manager
    registry.counter("recovery.episodes").inc(len(manager.reports))
    for report in manager.reports:
        registry.counter("recovery.restarts").inc(report.restarts)
        registry.counter("recovery.marked_incoherent").inc(
            report.marked_incoherent)
        if report.total_duration is not None:
            registry.histogram("recovery.total_ns").observe(
                report.total_duration)
        for phase in _PHASES:
            duration = report.phase_durations.get(phase)
            if duration is not None:
                registry.histogram("recovery.%s_ns" % phase).observe(duration)
    registry.gauge("sim.now_ns").set(machine.sim.now)
    registry.gauge("sim.events_executed").set(machine.sim.events_executed)
    return registry


def summarize_run(machine):
    """Compact per-run summary carried by campaign records.

    Everything here comes from counters the model keeps anyway, so the
    summary costs one sweep at the end of the run — nothing on the hot
    path, which is what lets campaigns collect it by default.
    """
    dropped = {}
    packets = {"forwarded": 0, "delivered": 0}
    for router in machine.network.routers:
        stats = router.stats
        packets["forwarded"] += stats.forwarded
        packets["delivered"] += stats.delivered_local
        for field in _ROUTER_STAT_FIELDS:
            if field.startswith("dropped_"):
                count = getattr(stats, field)
                if count:
                    reason = field[len("dropped_"):]
                    dropped[reason] = dropped.get(reason, 0) + count
    packets["dropped"] = dropped

    detectors = {"timeouts": 0, "nak_overflows": 0, "truncated": 0}
    naks = {"sent": 0, "received": 0}
    for node in machine.nodes:
        stats = node.magic.stats
        detectors["timeouts"] += stats.timeouts
        detectors["nak_overflows"] += stats.nak_overflows
        detectors["truncated"] += stats.truncated_received
        naks["sent"] += stats.naks_sent
        naks["received"] += stats.naks_received

    manager = machine.recovery_manager
    recovery = {
        "episodes": len(manager.reports),
        "restarts": sum(report.restarts for report in manager.reports),
        "marked_incoherent": sum(report.marked_incoherent
                                 for report in manager.reports),
    }
    if manager.reports:
        last = manager.reports[-1]
        recovery["phase_ms"] = {
            phase: round(duration / 1e6, 6)
            for phase, duration in sorted(last.phase_durations.items())
        }
        if last.total_duration is not None:
            recovery["total_ms"] = round(last.total_duration / 1e6, 6)
        recovery["available_nodes"] = len(last.available_nodes)
        latencies = Histogram()
        for report in manager.reports:
            if report.total_duration is not None:
                latencies.observe(report.total_duration)
        if latencies.count:
            recovery["total_ms_percentiles"] = {
                key: round(value / 1e6, 6)
                for key, value in latencies.percentiles().items()
            }

    from repro.telemetry.availability import availability_from_reports

    return {
        "sim_ns": machine.sim.now,
        "sim_events": machine.sim.events_executed,
        "packets": packets,
        "detectors": detectors,
        "naks": naks,
        "recovery": recovery,
        "availability": availability_from_reports(
            manager.reports, machine.sim.now, len(machine.nodes)),
    }
