"""Sim-core micro-benchmarks (``repro.cli bench --micro``).

Three synthetic workloads exercise the simulation kernel's hot paths in
isolation — no machine model, so the numbers measure the event loop, not
the protocol:

* ``timeout_stream`` — the MAGIC pattern that motivated lazy-deletion
  compaction: every "memory op" arms a long-deadline timeout timer and
  cancels it a few hundred simulated nanoseconds later, so dead timers
  dominate the heap unless the engine reclaims them (paper §4.2 arms one
  such timer per outstanding memory operation).
* ``router_saturation`` — a put/watch/get pipeline in the style of the
  SPIDER router processes: every ``Channel.put`` must wake a fan-out of
  one-shot watchers without rebuilding the watcher list.
* ``barrier_storm`` — recovery-style barrier rounds: many processes
  arrive on per-round events, a coordinator waits ``AllOf`` and releases
  everyone through a broadcast event, stressing the subscribe/trigger
  wait lanes.

Each bench runs ``repeats`` times and keeps the best throughput (wall
noise only ever slows a run down).  The suite emits the
``BENCH_simcore.json`` payload; :func:`check_against_baseline` is the CI
perf-regression gate — it fails any bench whose events/sec falls more
than ``max_regression`` below the committed baseline.

The workloads are fully deterministic for a given seed: the same event
stream runs whether or not the engine compacts, which is what lets the
determinism directed test compare the two configurations bit-for-bit.
"""

import gc
import json
import time

from repro.sim import AllOf, Channel, Event, Simulator

#: benchmark names in reporting order
MICRO_BENCHES = ("timeout_stream", "router_saturation", "barrier_storm")

#: default repeats; best-of keeps scheduler noise out of the gate
DEFAULT_REPEATS = 3


def _noop():
    """Armed timeout that must never fire (ops complete long before it)."""


def _timeout_stream(sim, nodes, ops, timers_per_op, timeout_ns, stats):
    """One process per node; per op: arm the per-operation watchdogs
    (memory-op timeout plus NAK-retry counters, like MAGIC does for every
    outstanding request), work, cancel them all on completion."""

    def node(node_id):
        for op in range(ops):
            timers = [sim.schedule(timeout_ns + 100.0 * extra, _noop)
                      for extra in range(timers_per_op)]
            yield 100.0 + (node_id + op) % 7
            for timer in timers:
                timer.cancel()
        stats["done"] += 1

    for node_id in range(nodes):
        sim.spawn(node(node_id), name="stream%d" % node_id)


def _router_saturation(sim, stages, messages, fanout, stats):
    """Pipeline of channels with watch-multiplexed forwarders, plus a
    fan-out of re-registering monitor watchers on every channel."""
    channels = [Channel(sim, name="pipe%d" % i) for i in range(stages + 1)]

    def producer():
        for msg in range(messages):
            channels[0].put(msg)
            yield 50.0

    def forwarder(index):
        inbox, outbox = channels[index], channels[index + 1]
        moved = 0
        while moved < messages:
            item = inbox.try_get()
            if item is None:
                yield inbox.watch()
                continue
            yield 20.0
            outbox.put(item)
            moved += 1

    def sink():
        for _ in range(messages):
            yield channels[-1].get()
            stats["delivered"] += 1

    def monitor(channel):
        while stats["delivered"] < messages:
            yield channel.watch()
            stats["wakeups"] += 1

    sim.spawn(producer(), name="producer")
    for index in range(stages):
        sim.spawn(forwarder(index), name="fwd%d" % index)
    sim.spawn(sink(), name="sink")
    for channel in channels:
        for _ in range(fanout):
            sim.spawn(monitor(channel), name="%s.mon" % channel.name)


def _barrier_storm(sim, participants, rounds, stats):
    """Recovery-barrier storm: arrive events + AllOf + broadcast release."""
    arrivals = [[Event(sim, name="arrive%d.%d" % (r, i))
                 for i in range(participants)] for r in range(rounds)]
    releases = [Event(sim, name="release%d" % r) for r in range(rounds)]

    def participant(index):
        for r in range(rounds):
            yield 1.0 + (index + r) % 5
            arrivals[r][index].trigger(index)
            yield releases[r]

    def coordinator():
        for r in range(rounds):
            yield AllOf(arrivals[r])
            releases[r].trigger(r)
            stats["rounds"] += 1

    for index in range(participants):
        sim.spawn(participant(index), name="part%d" % index)
    sim.spawn(coordinator(), name="coordinator")


def _scaled(value, scale):
    return max(1, int(round(value * scale)))


def run_micro_bench(name, seed=0, scale=1.0, compact_min_cancelled=None,
                    profiler=None):
    """Run one micro-bench once; returns its JSON-friendly result dict.

    ``scale`` multiplies the workload size (tests use a small fraction);
    ``compact_min_cancelled`` is forwarded to :class:`Simulator` so the
    determinism test can force compaction on or off.  ``profiler``
    attaches a :class:`~repro.telemetry.profiler.SimProfiler` to the
    dispatch loop — use only on a *separate* profiled pass, never on the
    throughput measurement (timing every dispatch costs real wall time).
    """
    sim = Simulator(seed=seed, compact_min_cancelled=compact_min_cancelled)
    if profiler is not None:
        sim.profiler = profiler
    peak = {"heap": 0, "live": 0}

    def probe():
        peak["heap"] = max(peak["heap"], sim.heap_size)
        peak["live"] = max(peak["live"], sim.pending_events)
        if sim.pending_events > 1:   # stop probing once the run drains
            sim.schedule(500.0, probe)

    if name == "timeout_stream":
        stats = {"done": 0}
        params = {"nodes": _scaled(80, scale), "ops": _scaled(1250, scale),
                  "timers_per_op": 4, "timeout_ns": 1_000_000.0}
        _timeout_stream(sim, params["nodes"], params["ops"],
                        params["timers_per_op"], params["timeout_ns"],
                        stats)
    elif name == "router_saturation":
        stats = {"delivered": 0, "wakeups": 0}
        params = {"stages": 8, "messages": _scaled(1500, scale), "fanout": 4}
        _router_saturation(sim, params["stages"], params["messages"],
                           params["fanout"], stats)
    elif name == "barrier_storm":
        stats = {"rounds": 0}
        params = {"participants": _scaled(96, scale),
                  "rounds": _scaled(150, scale)}
        _barrier_storm(sim, params["participants"], params["rounds"], stats)
    else:
        raise ValueError("unknown micro-bench %r (have: %s)"
                         % (name, ", ".join(MICRO_BENCHES)))

    sim.schedule(0.0, probe)
    # Start each measurement from a clean allocator/GC state so a heavy
    # bench cannot skew the ones that run after it in the same process.
    gc.collect()
    wall_start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - wall_start

    return {
        "name": name,
        "params": params,
        "stats": stats,
        "events_executed": sim.events_executed,
        "sim_ns": sim.now,
        "wall_s": round(wall_s, 6),
        "events_per_sec": (round(sim.events_executed / wall_s)
                           if wall_s > 0 else None),
        "max_heap": peak["heap"],
        "max_live_pending": peak["live"],
        "compactions": sim.compactions,
    }


def run_micro_suite(seed=0, repeats=DEFAULT_REPEATS, scale=1.0,
                    progress=None):
    """Run every micro-bench ``repeats`` times; best throughput wins.

    Returns the ``BENCH_simcore.json`` payload.
    """
    results = []
    for name in MICRO_BENCHES:
        best = None
        for _ in range(max(1, repeats)):
            result = run_micro_bench(name, seed=seed, scale=scale)
            if (best is None
                    or (result["events_per_sec"] or 0)
                    > (best["events_per_sec"] or 0)):
                best = result
        best["repeats"] = max(1, repeats)
        results.append(best)
        if progress is not None:
            progress(best)
    return {
        "version": 1,
        "benchmark": "simcore-micro",
        "seed": seed,
        "scale": scale,
        "results": results,
        "events_per_sec": {r["name"]: r["events_per_sec"] for r in results},
    }


def run_profiled_suite(seed=0, scale=1.0):
    """One profiled pass over every micro-bench; returns the merged
    :class:`~repro.telemetry.profiler.SimProfiler`.

    Kept separate from :func:`run_micro_suite` on purpose: the profiler's
    per-dispatch ``perf_counter`` pair is real overhead, so attributing
    wall time and gating throughput must never share a run.
    """
    from repro.telemetry.profiler import SimProfiler
    profiler = SimProfiler()
    for name in MICRO_BENCHES:
        run_micro_bench(name, seed=seed, scale=scale, profiler=profiler)
    return profiler


def run_flight_overhead(seed=0, repeats=DEFAULT_REPEATS, num_nodes=8,
                        capacity=None):
    """Measure the always-on flight recorder's cost on a machine workload.

    The micro-benches have no emission sites (they exercise the bare event
    loop), so the honest measurement is a full machine recovery run —
    :func:`~repro.telemetry.scalability.run_scalability_point` — paired:
    telemetry off versus ``Telemetry(trace=False, flight=N)``.  Best of
    ``repeats`` per arm (wall noise only ever slows a run down); overhead
    is the throughput drop of the flight arm.  Returns a JSON-friendly
    dict with both arms' events/sec and the ``overhead`` fraction.
    """
    from repro.telemetry.flight import DEFAULT_CAPACITY
    from repro.telemetry.scalability import run_scalability_point
    from repro.telemetry.trace import Telemetry
    capacity = DEFAULT_CAPACITY if capacity is None else capacity

    def best_events_per_sec(flight):
        best = 0
        for _ in range(max(1, repeats)):
            telemetry = (Telemetry(trace=False, flight=capacity)
                         if flight else None)
            gc.collect()
            result = run_scalability_point(num_nodes, seed=seed,
                                           telemetry=telemetry)
            best = max(best, result["sim"]["events_per_sec"] or 0)
        return best

    off = best_events_per_sec(flight=False)
    on = best_events_per_sec(flight=True)
    overhead = max(0.0, 1.0 - on / off) if off else None
    return {
        "num_nodes": num_nodes,
        "capacity": capacity,
        "repeats": max(1, repeats),
        "events_per_sec_off": off,
        "events_per_sec_flight": on,
        "overhead": round(overhead, 4) if overhead is not None else None,
    }


def check_against_baseline(payload, baseline, max_regression=0.30):
    """The CI gate: list of failure strings, empty when the run is ok.

    A bench fails when its events/sec drops more than ``max_regression``
    below the committed baseline figure.  Benches the baseline does not
    know about are ignored (so adding a bench never blocks the PR that
    adds it); a baseline bench missing from the run fails loudly.
    """
    failures = []
    reference = baseline.get("events_per_sec", {})
    measured = payload.get("events_per_sec", {})
    for name in sorted(reference):
        floor = reference[name] * (1.0 - max_regression)
        got = measured.get(name)
        if got is None:
            failures.append("%s: missing from the bench run "
                            "(baseline %d ev/s)" % (name, reference[name]))
        elif got < floor:
            failures.append(
                "%s: %d ev/s is %.0f%% below baseline %d ev/s "
                "(floor %d)" % (name, got,
                                100.0 * (1.0 - got / reference[name]),
                                reference[name], floor))
    return failures


def baseline_from_payload(payload, margin=0.5):
    """Derive a committed-baseline document from a suite run.

    ``margin`` scales the recorded figures down so the 30%% gate tracks
    real regressions rather than differences between the machine that
    recorded the baseline and the CI runner.
    """
    return {
        "version": 1,
        "benchmark": "simcore-micro",
        "margin": margin,
        "events_per_sec": {
            name: int(value * margin)
            for name, value in sorted(payload["events_per_sec"].items())
            if value},
    }


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def micro_table(payload):
    """Human-readable table of a suite payload."""
    from repro.analysis.tables import format_table

    rows = []
    for result in payload["results"]:
        rows.append((
            result["name"],
            result["events_executed"],
            "%.0f" % (result["sim_ns"] / 1e3),
            "%.4f" % result["wall_s"],
            result["events_per_sec"] or "-",
            result["max_heap"],
            result["max_live_pending"],
            result["compactions"],
        ))
    repeats = payload["results"][0]["repeats"] if payload["results"] else 1
    return format_table(
        "Sim-core micro-benchmarks (best of %d)" % repeats,
        ["bench", "events", "sim [us]", "wall [s]", "events/s",
         "max heap", "max live", "compactions"],
        rows)
