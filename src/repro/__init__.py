"""repro: a reproduction of "Hardware Fault Containment in Scalable
Shared-Memory Multiprocessors" (Teodosiu et al., ISCA 1997).

The package simulates the Stanford FLASH multiprocessor — MAGIC node
controllers, a directory cache-coherence protocol, and a CrayLink-style
interconnect — extended with the paper's fault-containment features and its
four-phase distributed recovery algorithm, plus a Hive-style cellular
operating system model for end-to-end experiments.

Quickstart::

    from repro import FlashMachine, MachineConfig, FaultSpec

    machine = FlashMachine(MachineConfig(num_nodes=8)).start()
    machine.injector.inject(FaultSpec.node_failure(3))
    report = machine.run_until_recovered()
    print(report.total_duration, "ns of recovery")
"""

from repro.common.errors import BusError, ConfigurationError, ReproError
from repro.common.params import TimingParams
from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.faults.models import FaultSpec, FaultType
from repro.faults.oracle import Oracle

__version__ = "1.0.0"

__all__ = [
    "BusError",
    "ConfigurationError",
    "FaultSpec",
    "FaultType",
    "FlashMachine",
    "MachineConfig",
    "Oracle",
    "ReproError",
    "TimingParams",
    "__version__",
]
