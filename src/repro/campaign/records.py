"""Resumable JSONL records for campaign runs.

Each completed run appends exactly one JSON object (one line) to the
campaign's results file.  Because every record carries its ``run_index``
and the campaign derives per-run seeds deterministically from the campaign
seed, re-running the same campaign against an existing file simply skips
the indices already recorded — a killed batch resumes where it stopped.
"""

import dataclasses
import enum
import json


class RunStatus(enum.Enum):
    """Terminal state of one campaign run."""

    PASS = "pass"          # recovery contained the schedule, oracle clean
    FAIL = "fail"          # run completed but the §5.2 oracle found problems
    CRASHED = "crashed"    # the worker raised (or died); traceback recorded
    HUNG = "hung"          # watchdog expired / simulation deadlocked

    @property
    def is_abort(self):
        """Did the run fail to produce a verdict at all?"""
        return self in (RunStatus.CRASHED, RunStatus.HUNG)


@dataclasses.dataclass
class RunRecord:
    """One line of the campaign JSONL file."""

    run_index: int
    seed: int
    status: RunStatus
    schedule: dict               # FaultSchedule.to_dict()
    problems: list = dataclasses.field(default_factory=list)
    restarts: int = 0
    episodes: int = 0
    error: str = ""              # traceback / watchdog message for aborts
    elapsed_s: float = 0.0       # wall-clock of the worker
    #: per-run hardware metrics summary (telemetry.summarize_run): packet
    #: counters, detector trips, per-phase recovery latency — {} for aborts
    metrics: dict = dataclasses.field(default_factory=dict)
    #: compact forensic summary (telemetry.forensics.forensic_summary):
    #: root causes, blast radii and the containment-audit verdict —
    #: attached to FAIL runs only, {} otherwise
    forensics: dict = dataclasses.field(default_factory=dict)
    #: flight-recorder tail window (FlightRecorder.dump) — attached by
    #: flight-mode workers on FAIL/HUNG/CRASHED verdicts and stray-message
    #: storms, {} otherwise; replayable through telemetry.flight
    #: .events_from_dump for forensics/timeline analysis
    flight: dict = dataclasses.field(default_factory=dict)

    def to_dict(self):
        data = dataclasses.asdict(self)
        data["status"] = self.status.value
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(run_index=data["run_index"],
                   seed=data["seed"],
                   status=RunStatus(data["status"]),
                   schedule=data["schedule"],
                   problems=list(data.get("problems", ())),
                   restarts=data.get("restarts", 0),
                   episodes=data.get("episodes", 0),
                   error=data.get("error", ""),
                   elapsed_s=data.get("elapsed_s", 0.0),
                   metrics=dict(data.get("metrics", {})),
                   forensics=dict(data.get("forensics", {})),
                   flight=dict(data.get("flight", {})))


def append_record(path, record):
    """Append one record; the trailing newline commits it atomically enough
    for resume (a torn partial line is ignored by :func:`load_records`)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        handle.flush()


def load_records(path):
    """Read all complete records from a campaign file (missing file: [])."""
    records = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(RunRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError):
                # A torn write (batch killed mid-append); that run will
                # simply be re-executed on resume.
                continue
    return records


def completed_indices(records):
    return {record.run_index for record in records}


def count_by_status(records):
    counts = {status: 0 for status in RunStatus}
    for record in records:
        counts[record.status] += 1
    return counts
