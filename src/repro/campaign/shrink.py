"""Greedy minimization of failing fault schedules.

A randomly generated schedule that breaks recovery usually carries noise:
faults that play no part in the bug, odd timestamps, a bigger machine than
needed.  :func:`shrink_schedule` strips all of that while a caller-supplied
predicate keeps confirming "still fails", then :func:`repro_command` turns
the minimized schedule into a ready-to-paste reproduction command.

The passes (each run to a fixpoint, in order of expected payoff):

1. **drop entries** — remove one fault at a time;
2. **simplify timing** — zero a timed entry's offset, else round it to a
   whole millisecond;
3. **shrink the machine** — retarget the schedule onto fewer nodes when
   every fault target still exists there
   (:func:`~repro.campaign.schedule.valid_for_machine`).
"""

import dataclasses
import json

from repro.campaign.schedule import FaultSchedule, valid_for_machine

_MS = 1_000_000.0


@dataclasses.dataclass
class ShrinkResult:
    """The minimized schedule plus how much work it took."""

    schedule: FaultSchedule
    original: FaultSchedule
    checks: int           # predicate invocations spent
    steps: list           # human-readable log of accepted reductions

    def __str__(self):
        return ("shrunk %d->%d faults, %d->%d nodes in %d checks"
                % (self.original.fault_count, self.schedule.fault_count,
                   self.original.num_nodes, self.schedule.num_nodes,
                   self.checks))


def shrink_schedule(schedule, still_fails, machine_sizes=(2, 4, 6),
                    max_checks=200):
    """Minimize ``schedule`` while ``still_fails(candidate)`` holds.

    ``still_fails`` must be a pure-ish predicate (typically: run the
    schedule under :func:`~repro.core.experiment.run_schedule_experiment`
    with the failing seed and report ``not result.passed``).  A predicate
    that aborts with the simulator's abort types — ``TimeoutError`` from a
    ``run_until`` limit, ``RuntimeError`` from a drained event heap or
    deadlock detection — counts as failing too: an abort is exactly the
    kind of bug worth minimizing.  Any *other* exception propagates; to
    treat arbitrary crashes as failures, run candidates through the
    crash-isolated :func:`~repro.campaign.runner.run_schedule_isolated`,
    which never raises.  The original schedule is assumed failing and is
    never re-checked.  ``max_checks`` bounds the total predicate budget.
    """
    state = {"checks": 0}
    steps = []

    def fails(candidate):
        if state["checks"] >= max_checks:
            return False
        state["checks"] += 1
        try:
            return bool(still_fails(candidate))
        except (TimeoutError, RuntimeError):
            # The simulator's abort types (run_until limit, drained event
            # heap) count as failing: an abort is exactly the kind of bug
            # worth minimizing.
            return True

    current = schedule

    # Pass 1: drop entries, restarting the scan after every success so the
    # greedy walk reaches a fixpoint.
    changed = True
    while changed and current.fault_count > 1:
        changed = False
        for index in range(current.fault_count):
            entries = (current.entries[:index]
                       + current.entries[index + 1:])
            candidate = current.replace(entries=entries)
            if fails(candidate):
                steps.append("dropped %s" % current.entries[index])
                current = candidate
                changed = True
                break

    # Pass 2: simplify timing — zero first, whole milliseconds second.
    entries = list(current.entries)
    for index, entry in enumerate(entries):
        if entry.phase is not None or entry.time == 0.0:
            continue
        for new_time in (0.0, round(entry.time / _MS) * _MS):
            if new_time == entry.time:
                continue
            trial = list(entries)
            trial[index] = dataclasses.replace(entry, time=new_time)
            candidate = current.replace(entries=tuple(trial))
            if fails(candidate):
                steps.append("time %s: %.0f -> %.0f"
                             % (entry.spec, entry.time, new_time))
                entries = trial
                current = candidate
                break

    # Pass 3: fewest nodes on which every target still exists.
    for num_nodes in sorted(machine_sizes):
        if num_nodes >= current.num_nodes:
            break
        if not valid_for_machine(current, num_nodes):
            continue
        candidate = current.replace(num_nodes=num_nodes)
        if fails(candidate):
            steps.append("machine %d -> %d nodes"
                         % (current.num_nodes, num_nodes))
            current = candidate
            break

    return ShrinkResult(schedule=current, original=schedule,
                        checks=state["checks"], steps=steps)


def repro_command(schedule, seed=0):
    """A ready-to-paste command replaying exactly this schedule + seed."""
    payload = json.dumps(schedule.to_dict(), sort_keys=True)
    return ("PYTHONPATH=src python -m repro.cli campaign "
            "--replay '%s' --runs 1 --seed %d" % (payload, seed))
