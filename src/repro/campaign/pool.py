"""Persistent crash-isolated workers for small-schedule bursts.

The per-run-process model of :mod:`repro.campaign.runner` is the right
shape for long schedules: one interpreter per run, nothing shared, a
watchdog per process.  The fuzz loop inverts the workload — hundreds of
runs of a few simulated milliseconds each — and there the per-run process
spawn plus module imports dominate wall clock.  This module keeps the
crash-isolation contract (a wedged or crashing run becomes a HUNG/CRASHED
payload, never the death of the batch) while amortizing process startup
and machine construction across consecutive runs in one worker:

* each worker is a long-lived subprocess holding a
  :class:`~repro.core.machine.MachineFactory`, so consecutive runs whose
  shape parameters match share topology construction;
* the pool tracks one in-flight task per worker; a watchdog kills and
  respawns the whole worker when a task exceeds its wall-clock budget, so
  one wedged schedule costs one worker restart, not the batch;
* results arrive on a shared queue tagged with the worker id, keeping
  completion strictly attributable even across respawns.

Determinism is untouched: a run executes the same
:func:`~repro.core.experiment.run_schedule_experiment` with the same
(schedule, seed) regardless of which worker picks it up, and a directed
test proves factory-reused and fresh machines produce bit-identical
records.
"""

# repro-lint: disable-file=wall-clock — this module is a real-time
# boundary like the campaign runner: watchdogs and elapsed_s measure wall
# clock around crash-isolated workers; nothing here runs under the event
# scheduler.

import multiprocessing
import queue as queue_module
import time

from repro.campaign.records import RunStatus

#: flight-ring capacity for ``telemetry_mode="flight"`` workers — deep
#: enough to hold a recovery episode's tail, cheap enough to be always-on
FLIGHT_CAPACITY = 20_000

#: newest events a dumped flight window keeps in the run record (the full
#: ring still feeds in-process forensics; the record stays one JSONL line)
FLIGHT_DUMP_EVENTS = 2_000

#: stray protocol messages after which a flight worker dumps its window
#: even on a PASS verdict — a stray storm is evidence worth keeping
STRAY_DUMP_THRESHOLD = 5


def _attach_flight(payload, telemetry):
    """Attach the flight recorder's tail window to a worker payload."""
    recorder = None if telemetry is None else telemetry.recorder
    if recorder is not None and hasattr(recorder, "dump"):
        payload["flight"] = recorder.dump(limit=FLIGHT_DUMP_EVENTS)
    return payload


def _execute_schedule_run(schedule_dict, seed, run_limit, mem_per_node,
                          l2_size, factory=None, coverage=False,
                          telemetry_mode="trace"):
    """Run one (schedule, seed) to a payload dict; never raises.

    The shared body of the per-run campaign worker and the batch workers.
    With ``coverage=True`` the payload additionally carries the fuzzer's
    per-run coverage summary (feature strings + containment times).
    ``telemetry_mode="flight"`` swaps the full (head-capped) trace for an
    always-on :class:`~repro.telemetry.flight.FlightRecorder` ring — the
    cheap mode for very large sweeps; a FAIL/HUNG/CRASHED verdict (or a
    stray-message storm) then dumps the tail window into the payload.
    """
    started = time.monotonic()
    telemetry = None
    try:
        from repro.campaign.schedule import FaultSchedule
        from repro.core.config import MachineConfig
        from repro.core.experiment import run_schedule_experiment
        from repro.core.machine import FlashMachine
        from repro.telemetry import Telemetry
        from repro.telemetry.forensics import forensic_summary
        schedule = FaultSchedule.from_dict(schedule_dict)
        config = MachineConfig(
            num_nodes=schedule.num_nodes, topology=schedule.topology,
            mem_per_node=mem_per_node, l2_size=l2_size, seed=seed)
        # A recorder is attached to every campaign run (bit-identical to
        # untraced by the §9 contract) so a FAIL verdict arrives with its
        # forensic story attached instead of needing a re-run to diagnose:
        # the full head-capped trace by default, the last-N flight ring in
        # flight mode.
        if telemetry_mode == "flight":
            telemetry = Telemetry(trace=False, flight=FLIGHT_CAPACITY)
        else:
            telemetry = Telemetry(max_events=200_000)
        if factory is not None:
            machine = factory.build(config, telemetry=telemetry)
        else:
            machine = FlashMachine(config, telemetry=telemetry)
        result = run_schedule_experiment(schedule, seed=seed,
                                         run_limit=run_limit,
                                         telemetry=telemetry,
                                         collect_metrics=True,
                                         machine=machine)
        payload = {
            "status": (RunStatus.PASS if result.passed
                       else RunStatus.FAIL).value,
            "problems": list(result.problems),
            "restarts": result.restarts,
            "episodes": result.episodes,
            "elapsed_s": time.monotonic() - started,
            "metrics": result.metrics or {},
        }
        if not result.passed:
            payload["forensics"] = forensic_summary(telemetry.recorder)
        if telemetry_mode == "flight":
            strays = sum(node.magic.stats.stray_messages
                         for node in machine.nodes)
            if not result.passed or strays >= STRAY_DUMP_THRESHOLD:
                _attach_flight(payload, telemetry)
        if coverage:
            from repro.fuzz.coverage import run_coverage
            payload["coverage"] = run_coverage(machine, result,
                                               telemetry.recorder)
        return payload
    except (TimeoutError, RuntimeError) as exc:
        # Simulation-limit and deadlock/heap-drain conditions: the run
        # never reached a verdict.
        return _attach_flight({
            "status": RunStatus.HUNG.value,
            "error": "%s: %s" % (type(exc).__name__, exc),
            "elapsed_s": time.monotonic() - started,
        }, telemetry)
    except BaseException:   # repro-lint: disable=broad-except — the
        # crash-isolation boundary itself: any worker death must become a
        # CRASHED record, not kill the campaign batch.
        import traceback
        return _attach_flight({
            "status": RunStatus.CRASHED.value,
            "error": traceback.format_exc(),
            "elapsed_s": time.monotonic() - started,
        }, telemetry)


def _batch_worker(task_queue, result_queue, worker_id, run_limit,
                  mem_per_node, l2_size, coverage, telemetry_mode):
    """Long-lived worker loop: one task at a time until the None sentinel.

    The factory lives for the worker's whole life, which is exactly the
    machine-reuse amortization: every run in this worker with matching
    shape parameters shares topology construction.
    """
    import warnings
    warnings.simplefilter("ignore")   # skipped-injection warnings are data
    from repro.core.machine import MachineFactory
    factory = MachineFactory()
    while True:
        task = task_queue.get()
        if task is None:
            return
        run_index, schedule_dict, seed = task
        payload = _execute_schedule_run(
            schedule_dict, seed, run_limit, mem_per_node, l2_size,
            factory=factory, coverage=coverage,
            telemetry_mode=telemetry_mode)
        result_queue.put((worker_id, run_index, payload))


class _Worker:
    """One pool slot: a subprocess plus its private task queue."""

    def __init__(self, worker_id, result_queue, run_limit, mem_per_node,
                 l2_size, coverage, telemetry_mode):
        self.worker_id = worker_id
        self.task_queue = multiprocessing.Queue()
        self.process = multiprocessing.Process(
            target=_batch_worker,
            args=(self.task_queue, result_queue, worker_id, run_limit,
                  mem_per_node, l2_size, coverage, telemetry_mode),
            daemon=True)
        self.process.start()
        self.task = None          # (run_index, schedule_dict, seed)
        self.started = None


class BatchWorkerPool:
    """A fixed set of persistent workers with per-task watchdogs.

    Usage: ``submit`` tasks while :meth:`idle_count` is positive, then
    ``poll`` for ``(run_index, payload)`` completions; a task that blows
    its wall-clock budget or kills its worker comes back as a HUNG or
    CRASHED payload and the worker slot is respawned.  ``close`` always —
    the workers are daemons, but an orderly sentinel shutdown keeps queue
    feeder threads from complaining.
    """

    def __init__(self, jobs=1, timeout_s=300.0, run_limit=60_000_000_000,
                 mem_per_node=64 << 10, l2_size=8 << 10, coverage=False,
                 telemetry_mode="trace"):
        self.jobs = max(1, jobs)
        self.timeout_s = timeout_s
        self.run_limit = run_limit
        self.mem_per_node = mem_per_node
        self.l2_size = l2_size
        self.coverage = coverage
        self.telemetry_mode = telemetry_mode
        self.result_queue = multiprocessing.Queue()
        self._next_worker_id = 0
        self.workers = [self._spawn() for _ in range(self.jobs)]

    def _spawn(self):
        worker = _Worker(self._next_worker_id, self.result_queue,
                         self.run_limit, self.mem_per_node, self.l2_size,
                         self.coverage, self.telemetry_mode)
        self._next_worker_id += 1
        return worker

    # ------------------------------------------------------------ dispatch

    def idle_count(self):
        return sum(1 for worker in self.workers if worker.task is None)

    def busy_count(self):
        return sum(1 for worker in self.workers if worker.task is not None)

    def submit(self, run_index, schedule_dict, seed):
        """Hand one run to an idle worker; returns False when all busy."""
        for worker in self.workers:
            if worker.task is None:
                worker.task = (run_index, schedule_dict, seed)
                worker.started = time.monotonic()
                worker.task_queue.put(worker.task)
                return True
        return False

    # ------------------------------------------------------------- results

    def poll(self):
        """Collect finished runs; returns a list of (run_index, payload).

        Also runs the watchdog: any worker whose task exceeded the budget
        (or whose process died without reporting) yields a HUNG/CRASHED
        payload and a fresh worker takes its slot.
        """
        finished = []
        by_id = {worker.worker_id: worker for worker in self.workers}
        while True:
            try:
                worker_id, run_index, payload = \
                    self.result_queue.get_nowait()
            except queue_module.Empty:
                break
            finished.append((run_index, payload))
            worker = by_id.get(worker_id)
            if worker is not None and worker.task is not None \
                    and worker.task[0] == run_index:
                worker.task = None
                worker.started = None

        for index, worker in enumerate(self.workers):
            if worker.task is None:
                continue
            elapsed = time.monotonic() - worker.started
            if not worker.process.is_alive():
                finished.append((worker.task[0], {
                    "status": RunStatus.CRASHED.value,
                    "error": ("batch worker died without reporting "
                              "(exitcode %s)" % worker.process.exitcode),
                    "elapsed_s": elapsed,
                }))
                self.workers[index] = self._spawn()
            elif elapsed >= self.timeout_s:
                self._kill(worker)
                finished.append((worker.task[0], {
                    "status": RunStatus.HUNG.value,
                    "error": ("watchdog: run exceeded %.0fs wall clock"
                              % self.timeout_s),
                    "elapsed_s": elapsed,
                }))
                self.workers[index] = self._spawn()
        return finished

    @staticmethod
    def _kill(worker):
        worker.process.terminate()
        worker.process.join(5.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(5.0)

    # ------------------------------------------------------------ shutdown

    def close(self):
        for worker in self.workers:
            if worker.process.is_alive():
                worker.task_queue.put(None)
        deadline = time.monotonic() + 5.0
        for worker in self.workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                self._kill(worker)

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False
