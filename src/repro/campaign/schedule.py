"""Fault schedules: timed / phase-triggered sequences of faults.

A :class:`FaultSchedule` is the campaign engine's unit of work: the machine
shape plus an ordered set of :class:`TimedFault` entries.  An entry fires
either at a fixed time offset from the schedule start, or — the §4.1 stress
case — the instant a recovery agent enters a given phase (P1–P4), which is
precisely when the paper's restart rule has to cope with it.

The generators at the bottom produce the hard cases that single-fault
validation never reaches; they are registered by name in
:data:`SCHEDULE_GENERATORS` so campaigns can be described on the command
line and in JSONL records.
"""

import dataclasses

from repro.common.errors import ConfigurationError
from repro.faults.models import FaultSpec, FaultType
from repro.interconnect.topology import make_topology

RECOVERY_PHASES = ("P1", "P2", "P3", "P4")


@dataclasses.dataclass(frozen=True)
class TimedFault:
    """One schedule entry.

    ``time`` is the injection offset (ns) from the schedule start.  When
    ``phase`` is set ("P1".."P4") the entry instead fires when a recovery
    agent enters that phase — any agent, or the agent of ``phase_node``.
    """

    spec: FaultSpec
    time: float = 0.0
    phase: str = None
    phase_node: int = None

    def to_dict(self):
        data = {"spec": self.spec.to_dict(), "time": self.time}
        if self.phase is not None:
            data["phase"] = self.phase
        if self.phase_node is not None:
            data["phase_node"] = self.phase_node
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(spec=FaultSpec.from_dict(data["spec"]),
                   time=data.get("time", 0.0),
                   phase=data.get("phase"),
                   phase_node=data.get("phase_node"))

    def __str__(self):
        if self.phase is not None:
            where = "@%s" % self.phase
            if self.phase_node is not None:
                where += "(node %d)" % self.phase_node
        else:
            where = "@%.0fns" % self.time
        return "%s%s" % (self.spec, where)


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A machine shape plus the faults to throw at it."""

    entries: tuple
    num_nodes: int = 8
    topology: str = "mesh"
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "entries", tuple(self.entries))

    @property
    def fault_count(self):
        return len(self.entries)

    def specs(self):
        return [entry.spec for entry in self.entries]

    def excluded_targets(self, topology=None):
        """Union of targets used so far (feeds ``FaultSpec.random``).

        Pass the built topology to also exclude collateral targets (links
        adjacent to a dead router), so drawing against this set never
        produces a fault the injector would skip as a no-op.
        """
        used = set()
        for entry in self.entries:
            used |= entry.spec.excluded_targets(topology)
        return used

    def replace(self, **changes):
        return dataclasses.replace(self, **changes)

    def to_dict(self):
        return {"entries": [entry.to_dict() for entry in self.entries],
                "num_nodes": self.num_nodes,
                "topology": self.topology,
                "name": self.name}

    @classmethod
    def from_dict(cls, data):
        return cls(entries=tuple(TimedFault.from_dict(e)
                                 for e in data["entries"]),
                   num_nodes=data.get("num_nodes", 8),
                   topology=data.get("topology", "mesh"),
                   name=data.get("name", ""))

    def __str__(self):
        label = self.name or "schedule"
        return "%s[%d nodes %s: %s]" % (
            label, self.num_nodes, self.topology,
            "; ".join(str(entry) for entry in self.entries))


def valid_for_machine(schedule, num_nodes, topology=None):
    """Can this schedule's targets exist on a ``num_nodes`` machine?

    Used by the shrinker before trying a smaller machine: every node target
    must exist and every link target must be an actual link of the smaller
    topology.
    """
    topology = topology or schedule.topology
    try:
        topo = make_topology(topology, num_nodes)
    except ConfigurationError:
        # The only expected failure: this machine shape cannot be built
        # (too few nodes, unknown topology kind).
        return False
    link_pairs = {frozenset((a, b)) for a, _, b, _ in topo.links()}
    for entry in schedule.entries:
        spec = entry.spec
        if spec.is_link_fault:
            if frozenset(spec.target) not in link_pairs:
                return False
        elif not 0 <= spec.target < num_nodes:
            return False
        if entry.phase_node is not None and entry.phase_node >= num_nodes:
            return False
    return True


def redundant_entries(schedule):
    """Entries whose target an earlier entry already failed (injector
    no-ops).  Generators and the fuzz mutator must produce none: a
    schedule entry that the injector skips is dead weight in a corpus."""
    topo = make_topology(schedule.topology, schedule.num_nodes)
    used = set()
    redundant = []
    for entry in schedule.entries:
        if entry.spec.excluded_targets() & used:
            redundant.append(entry)
        used |= entry.spec.excluded_targets(topo)
    return redundant


# ------------------------------------------------------------------ generators

def _primary_fault(rng, topology):
    """A detectable first fault: node, router or link failure."""
    fault_type = rng.choice([FaultType.NODE_FAILURE, FaultType.ROUTER_FAILURE,
                             FaultType.LINK_FAILURE])
    return FaultSpec.random(rng, topology, fault_type)


def fault_during_recovery(rng, num_nodes=8, topology="mesh"):
    """The §4.1 restart case: a second fault strikes inside recovery.

    The second fault kills a node just as *that node's* agent enters a
    random phase — by then the other agents count it as alive, so its death
    mid-protocol forces the restart path rather than being absorbed as a
    pre-existing failure.
    """
    topo = make_topology(topology, num_nodes)
    first = _primary_fault(rng, topo)
    exclude = first.excluded_targets(topo)
    if not first.is_link_fault:
        exclude = exclude | {0}   # keep one stable prober candidate
    second = FaultSpec.random(rng, topo, FaultType.NODE_FAILURE,
                              exclude=exclude)
    phase = rng.choice(RECOVERY_PHASES)
    return FaultSchedule(
        entries=(TimedFault(first, time=0.0),
                 TimedFault(second, phase=phase, phase_node=second.target)),
        num_nodes=num_nodes, topology=topology,
        name="fault-during-recovery")


def correlated_link_router(rng, num_nodes=8, topology="mesh"):
    """Correlated faults: a router dies and a nearby link goes with it —
    the shape a cabinet-level power event produces."""
    topo = make_topology(topology, num_nodes)
    router = FaultSpec.random(rng, topo, FaultType.ROUTER_FAILURE)
    # Links adjacent to the dead router are already down; pick another.
    link = FaultSpec.random(rng, topo, FaultType.LINK_FAILURE,
                            exclude=router.excluded_targets(topo))
    jitter = rng.uniform(0.0, 500_000.0)
    return FaultSchedule(
        entries=(TimedFault(router, time=0.0),
                 TimedFault(link, time=jitter)),
        num_nodes=num_nodes, topology=topology,
        name="correlated-link-router")


def false_alarm_storm(rng, num_nodes=8, topology="mesh"):
    """Several detectors fire with no fault at all, microseconds apart.

    Recovery must coalesce the triggers into one episode (or run clean
    back-to-back episodes) and lose nothing.
    """
    count = rng.randint(2, max(2, min(5, num_nodes - 1)))
    nodes = rng.sample(range(num_nodes), count)
    entries = tuple(
        TimedFault(FaultSpec.false_alarm(node),
                   time=index * rng.uniform(10_000.0, 80_000.0))
        for index, node in enumerate(nodes))
    return FaultSchedule(entries=entries, num_nodes=num_nodes,
                         topology=topology, name="false-alarm-storm")


def flaky_links(rng, num_nodes=8, topology="mesh"):
    """Transient and intermittent link faults, then a real node failure.

    The healing/flaky links may or may not be observed as down by the
    recovery that the node failure triggers — both outcomes must be
    contained.
    """
    topo = make_topology(topology, num_nodes)
    transient = FaultSpec.random(rng, topo,
                                 FaultType.TRANSIENT_LINK_FAILURE)
    intermittent = FaultSpec.random(rng, topo, FaultType.INTERMITTENT_LINK,
                                    exclude=transient.excluded_targets(topo))
    exclude = (transient.excluded_targets(topo)
               | intermittent.excluded_targets(topo) | {0})
    victim = FaultSpec.random(rng, topo, FaultType.NODE_FAILURE,
                              exclude=exclude)
    return FaultSchedule(
        entries=(TimedFault(transient, time=0.0),
                 TimedFault(intermittent, time=rng.uniform(0, 200_000.0)),
                 TimedFault(victim, time=rng.uniform(500_000.0,
                                                     1_500_000.0))),
        num_nodes=num_nodes, topology=topology, name="flaky-links")


def random_multi(rng, num_nodes=8, topology="mesh", fault_count=None):
    """2–3 random well-formed faults at random times within ~2 ms."""
    topo = make_topology(topology, num_nodes)
    count = fault_count or rng.randint(2, 3)
    entries = []
    exclude = {0}   # keep one stable prober candidate
    for _ in range(count):
        try:
            spec = FaultSpec.random(rng, topo, exclude=exclude)
        except ValueError:
            break   # everything usable is excluded already
        exclude |= spec.excluded_targets(topo)
        entries.append(TimedFault(spec, time=rng.uniform(0.0, 2_000_000.0)))
    entries.sort(key=lambda entry: entry.time)
    return FaultSchedule(entries=tuple(entries), num_nodes=num_nodes,
                         topology=topology, name="random-multi")


SCHEDULE_GENERATORS = {
    "fault-during-recovery": fault_during_recovery,
    "correlated-link-router": correlated_link_router,
    "false-alarm-storm": false_alarm_storm,
    "flaky-links": flaky_links,
    "random-multi": random_multi,
}


def make_schedule(kind, rng, num_nodes=8, topology="mesh"):
    """Generate one schedule by registered name."""
    try:
        generator = SCHEDULE_GENERATORS[kind]
    except KeyError:
        raise ValueError(
            "unknown schedule kind %r (have: %s)"
            % (kind, ", ".join(sorted(SCHEDULE_GENERATORS)))) from None
    return generator(rng, num_nodes=num_nodes, topology=topology)
