"""Multi-fault campaign engine.

Single-fault validation (paper §5.2) leaves the hardest recovery code —
the §4.1 restart-on-new-fault rule and the surviving-node merge logic —
nearly untested.  This package stress-tests exactly that:

* :mod:`repro.campaign.schedule` — timed/phase-triggered fault sequences
  and generators for the hard cases (fault during each recovery phase,
  correlated link+router faults, false-alarm storms, flaky links);
* :mod:`repro.campaign.runner` — a crash-isolated parallel campaign runner
  with per-run watchdogs and resumable JSONL records;
* :mod:`repro.campaign.records` — the JSONL record format;
* :mod:`repro.campaign.shrink` — greedy minimization of failing schedules
  into ready-to-paste reproducers.
"""

from repro.campaign.records import RunRecord, RunStatus
from repro.campaign.runner import CampaignRunner, CampaignSummary
from repro.campaign.schedule import (
    SCHEDULE_GENERATORS,
    FaultSchedule,
    TimedFault,
    make_schedule,
)
from repro.campaign.shrink import repro_command, shrink_schedule

__all__ = [
    "CampaignRunner",
    "CampaignSummary",
    "FaultSchedule",
    "RunRecord",
    "RunStatus",
    "SCHEDULE_GENERATORS",
    "TimedFault",
    "make_schedule",
    "repro_command",
    "shrink_schedule",
]
