"""Crash-isolated campaign runner.

Every run executes in its own ``multiprocessing`` worker with a wall-clock
watchdog, so a simulator bug found by an aggressive schedule — a Python
crash, an infinite event loop, a drained event heap — is *data* (a
``CRASHED``/``HUNG`` record) rather than the death of the whole batch.

Determinism and resume:

* per-run seeds derive from the campaign seed via BLAKE2b
  (:func:`derive_run_seed`), so run *i* of campaign seed *s* is the same
  experiment on every machine and every re-run;
* each finished run appends one JSONL record
  (:mod:`repro.campaign.records`); re-running the same campaign against an
  existing results file skips the already-recorded run indices.
"""

# repro-lint: disable-file=wall-clock — this module IS the real-time
# boundary: the watchdog and per-run elapsed_s measure wall clock around
# crash-isolated workers; nothing here runs under the event scheduler.

import dataclasses
import hashlib
import multiprocessing
import queue as queue_module
import random
import time

from repro.campaign.records import (
    RunRecord,
    RunStatus,
    append_record,
    completed_indices,
    load_records,
)
from repro.campaign.schedule import FaultSchedule, make_schedule


def derive_run_seed(campaign_seed, run_index):
    """Deterministic 63-bit per-run seed (stable across processes, unlike
    salted ``hash()``)."""
    digest = hashlib.blake2b(
        ("%d:%d" % (campaign_seed, run_index)).encode("ascii"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


def _campaign_worker(result_queue, schedule_dict, seed, run_limit,
                     mem_per_node, l2_size, telemetry_mode="trace"):
    """Subprocess entry point: run one schedule, report via the queue.

    The run body itself lives in :mod:`repro.campaign.pool` so the
    per-run workers here and the persistent batch workers there execute
    byte-for-byte the same experiment.
    """
    import warnings
    warnings.simplefilter("ignore")   # skipped-injection warnings are data
    from repro.campaign.pool import _execute_schedule_run
    result_queue.put(_execute_schedule_run(
        schedule_dict, seed, run_limit, mem_per_node, l2_size,
        telemetry_mode=telemetry_mode))


@dataclasses.dataclass
class CampaignSummary:
    """Aggregate of a finished (or resumed-and-finished) campaign."""

    total: int
    passed: int
    failed: int
    crashed: int
    hung: int
    records: list

    @classmethod
    def from_records(cls, records):
        counts = {status: 0 for status in RunStatus}
        for record in records:
            counts[record.status] += 1
        return cls(total=len(records),
                   passed=counts[RunStatus.PASS],
                   failed=counts[RunStatus.FAIL],
                   crashed=counts[RunStatus.CRASHED],
                   hung=counts[RunStatus.HUNG],
                   records=list(records))

    @property
    def ok(self):
        """True when every run reached a verdict (no batch-level aborts)."""
        return self.crashed == 0 and self.hung == 0

    def failures(self):
        return [record for record in self.records
                if record.status is not RunStatus.PASS]

    def __str__(self):
        return ("campaign: %d runs — %d pass, %d fail, %d crashed, %d hung"
                % (self.total, self.passed, self.failed,
                   self.crashed, self.hung))


@dataclasses.dataclass
class _PlannedRun:
    """The identity of a pooled run (no process of its own to track)."""

    run_index: int
    seed: int
    schedule: FaultSchedule


@dataclasses.dataclass
class _ActiveRun:
    run_index: int
    seed: int
    schedule: FaultSchedule
    process: multiprocessing.Process
    queue: object
    started: float


class CampaignRunner:
    """Run ``runs`` schedules, each crash-isolated, streaming JSONL records.

    ``kind`` names a generator from
    :data:`~repro.campaign.schedule.SCHEDULE_GENERATORS`; alternatively a
    fixed ``schedule`` replays one exact scenario every run (the per-run
    seeds still vary the machine's random fill and timing draws).
    """

    def __init__(self, kind="random-multi", runs=50, campaign_seed=0,
                 num_nodes=8, topology="mesh", schedule=None, out_path=None,
                 timeout_s=300.0, run_limit=60_000_000_000, jobs=1,
                 mem_per_node=64 << 10, l2_size=8 << 10, progress=None,
                 reuse_machines=False, telemetry_mode="trace"):
        self.kind = kind
        self.runs = runs
        self.campaign_seed = campaign_seed
        self.num_nodes = num_nodes
        self.topology = topology
        self.fixed_schedule = schedule
        self.out_path = out_path
        self.timeout_s = timeout_s
        self.run_limit = run_limit
        self.jobs = max(1, jobs)
        # Campaigns trade machine size for run count: a small memory/cache
        # still exercises every protocol path, and a run finishes in
        # seconds instead of minutes.
        self.mem_per_node = mem_per_node
        self.l2_size = l2_size
        self.progress = progress
        #: route runs through persistent batch workers
        #: (:class:`repro.campaign.pool.BatchWorkerPool`) instead of one
        #: process per run — same records, amortized startup.
        self.reuse_machines = reuse_machines
        #: "trace" (full head-capped trace per run) or "flight" (tracing
        #: off, always-on last-N flight ring dumped on failures) — the
        #: cheap mode for very large sweeps.
        self.telemetry_mode = telemetry_mode

    # ------------------------------------------------------------ scheduling

    def plan_run(self, run_index):
        """The (seed, schedule) of run ``run_index`` — pure and stable.

        In replay mode (a fixed schedule) the campaign seed is used
        *literally* for every run, so a failure's printed repro command —
        which carries the failing run's own derived seed — reproduces that
        exact run.
        """
        if self.fixed_schedule is not None:
            return self.campaign_seed, self.fixed_schedule
        seed = derive_run_seed(self.campaign_seed, run_index)
        rng = random.Random(seed)
        return seed, make_schedule(self.kind, rng, num_nodes=self.num_nodes,
                                   topology=self.topology)

    # --------------------------------------------------------------- driving

    def _status_writer(self):
        """Heartbeat sidecar next to the records file (None without one)."""
        if not self.out_path:
            return None
        from repro.telemetry.status import StatusWriter
        return StatusWriter(self.out_path + ".status.json",
                            kind="campaign", total=self.runs)

    @staticmethod
    def _counts_of(records):
        counts = {}
        for record in records.values():
            key = record.status.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def run(self):
        """Execute all pending runs; returns a :class:`CampaignSummary`."""
        records = {}
        if self.out_path:
            for record in load_records(self.out_path):
                if record.run_index < self.runs:
                    records[record.run_index] = record
        pending = [index for index in range(self.runs)
                   if index not in records]

        if self.reuse_machines:
            return self._run_pooled(records, pending)

        status = self._status_writer()
        counts = self._counts_of(records)
        active = []
        while pending or active:
            while pending and len(active) < self.jobs:
                active.append(self._launch(pending.pop(0)))
            time.sleep(0.02)
            still_running = []
            for run in active:
                record = self._poll(run)
                if record is None:
                    still_running.append(run)
                    continue
                records[record.run_index] = record
                counts[record.status.value] = \
                    counts.get(record.status.value, 0) + 1
                if self.out_path:
                    append_record(self.out_path, record)
                if self.progress is not None:
                    self.progress(record)
            active = still_running
            if status is not None:
                now = time.monotonic()
                status.update(
                    done=len(records), counts=counts,
                    in_flight=[{"run_index": run.run_index,
                                "elapsed_s": round(now - run.started, 2)}
                               for run in active])
        if status is not None:
            status.update(done=len(records), counts=counts, finished=True,
                          force=True)

        ordered = [records[index] for index in sorted(records)]
        return CampaignSummary.from_records(ordered)

    def _run_pooled(self, records, pending):
        """Pooled driving loop: persistent workers, same records out."""
        from repro.campaign.pool import BatchWorkerPool
        plans = {}
        status = self._status_writer()
        counts = self._counts_of(records)
        with BatchWorkerPool(jobs=self.jobs, timeout_s=self.timeout_s,
                             run_limit=self.run_limit,
                             mem_per_node=self.mem_per_node,
                             l2_size=self.l2_size,
                             telemetry_mode=self.telemetry_mode) as pool:
            pending = list(pending)
            outstanding = 0
            while pending or outstanding:
                while pending and pool.idle_count():
                    run_index = pending.pop(0)
                    seed, schedule = self.plan_run(run_index)
                    plans[run_index] = (seed, schedule)
                    pool.submit(run_index, schedule.to_dict(), seed)
                    outstanding += 1
                time.sleep(0.02)
                for run_index, payload in pool.poll():
                    outstanding -= 1
                    seed, schedule = plans.pop(run_index)
                    record = self._record(
                        _PlannedRun(run_index, seed, schedule), payload)
                    records[record.run_index] = record
                    counts[record.status.value] = \
                        counts.get(record.status.value, 0) + 1
                    if self.out_path:
                        append_record(self.out_path, record)
                    if self.progress is not None:
                        self.progress(record)
                if status is not None:
                    now = time.monotonic()
                    status.update(
                        done=len(records), counts=counts,
                        in_flight=[
                            {"run_index": worker.task[0],
                             "elapsed_s": round(now - worker.started, 2)}
                            for worker in pool.workers
                            if worker.task is not None])
        if status is not None:
            status.update(done=len(records), counts=counts, finished=True,
                          force=True)
        ordered = [records[index] for index in sorted(records)]
        return CampaignSummary.from_records(ordered)

    def _launch(self, run_index):
        seed, schedule = self.plan_run(run_index)
        return self._launch_with(run_index, seed, schedule)

    def _launch_with(self, run_index, seed, schedule):
        result_queue = multiprocessing.Queue()
        process = multiprocessing.Process(
            target=_campaign_worker,
            args=(result_queue, schedule.to_dict(), seed, self.run_limit,
                  self.mem_per_node, self.l2_size, self.telemetry_mode),
            daemon=True)
        process.start()
        return _ActiveRun(run_index=run_index, seed=seed, schedule=schedule,
                          process=process, queue=result_queue,
                          started=time.monotonic())

    def _poll(self, run):
        """Returns the finished RunRecord, or None if still running."""
        elapsed = time.monotonic() - run.started
        if run.process.is_alive():
            if elapsed < self.timeout_s:
                return None
            # Watchdog: terminate (then kill) the wedged worker.
            run.process.terminate()
            run.process.join(5.0)
            if run.process.is_alive():
                run.process.kill()
                run.process.join(5.0)
            return self._record(run, {
                "status": RunStatus.HUNG.value,
                "error": ("watchdog: run exceeded %.0fs wall clock"
                          % self.timeout_s),
                "elapsed_s": elapsed,
            })
        run.process.join()
        try:
            payload = run.queue.get(timeout=2.0)
        except queue_module.Empty:
            payload = {
                "status": RunStatus.CRASHED.value,
                "error": ("worker died without reporting (exitcode %s)"
                          % run.process.exitcode),
                "elapsed_s": elapsed,
            }
        return self._record(run, payload)

    def _record(self, run, payload):
        return RunRecord(
            run_index=run.run_index,
            seed=run.seed,
            status=RunStatus(payload["status"]),
            schedule=run.schedule.to_dict(),
            problems=list(payload.get("problems", ())),
            restarts=payload.get("restarts", 0),
            episodes=payload.get("episodes", 0),
            error=payload.get("error", ""),
            elapsed_s=payload.get("elapsed_s", 0.0),
            metrics=dict(payload.get("metrics", {})),
            forensics=dict(payload.get("forensics", {})),
            flight=dict(payload.get("flight", {})),
        )


def run_schedule_isolated(schedule, seed, timeout_s=300.0,
                          run_limit=60_000_000_000,
                          mem_per_node=64 << 10, l2_size=8 << 10):
    """Run one exact (schedule, seed) in a crash-isolated worker.

    Used by the shrinker's still-fails predicate and by replay: the seed is
    the failing run's own, not derived, so the reproduction is exact.
    Returns a :class:`~repro.campaign.records.RunRecord`.
    """
    runner = CampaignRunner(schedule=schedule, runs=1, timeout_s=timeout_s,
                            run_limit=run_limit, mem_per_node=mem_per_node,
                            l2_size=l2_size)
    run = runner._launch_with(0, seed, schedule)
    while True:
        record = runner._poll(run)
        if record is not None:
            return record
        time.sleep(0.02)


def resume_info(out_path, runs):
    """How much of a campaign file is already done (for CLI messaging)."""
    records = load_records(out_path)
    done = {index for index in completed_indices(records) if index < runs}
    return len(done), runs - len(done)
