"""Small-model verification of the extracted coherence protocol.

:mod:`repro.verify.model` executes the transition table lifted by
:mod:`repro.lint.extract` over abstract single-line configurations;
:mod:`repro.verify.checker` exhaustively explores the reachable space
and checks the paper's containment invariants (single-owner, lock
drainability, sharer consistency, firewall escape).
"""

from repro.verify.checker import Report, ScenarioResult, Violation, verify_spec
from repro.verify.model import (HOME, Config, ModelError, Scenario,
                                SpecMachine, initial_config)

__all__ = [
    "HOME", "Config", "ModelError", "Report", "Scenario", "ScenarioResult",
    "SpecMachine", "Violation", "initial_config", "verify_spec",
]
