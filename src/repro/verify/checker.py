"""Exhaustive small-model exploration of the extracted protocol.

Three scenarios, mirroring the paper's containment argument:

* ``fault-free/firewall-on`` and ``fault-free/firewall-off`` — the full
  protocol under every interleaving of requests, writebacks, silent
  drops and deliveries from an idle line (plus an INCOHERENT seed for
  the post-recovery bus-error paths).  Checked: single-owner, cache/
  directory consistency, lock bookkeeping, firmware asserts, and
  drainability — every reachable LOCKED configuration must be able to
  drain back to an unlocked state (the abstract-machine liveness of
  "every lock() reaches unlock()").
* ``failed-cell`` — one remote is torn away (paper §4.1: the firewall
  is closed against its cell) with seeds capturing the messy moment of
  failure: the dead node still owns the line, still sits in the sharer
  vector, or has a pre-failure GETX in flight.  Checked: safety only —
  single-owner and no write grant (DATA_EXCL) ever targets the failed
  cell.  Drainability is *not* checked here: a line locked on a dead
  owner legitimately wedges until recovery reconstructs the directory,
  which is the recovery subsystem's job, not the protocol's.

The uncached and scrub kinds never enter the stateful exploration (the
model line is ordinary memory); instead :func:`static_checks` proves
their containment shape directly on the spec — remote uncached I/O must
have a rejection path (§3.3) and every kind must reply to somebody.
"""

from repro.verify.model import (GRANT_KINDS, HOME, REPLY_KINDS, ModelError,
                                Scenario, SpecMachine, enqueue, dequeue,
                                initial_config, make_line, message)

#: kinds the environment (processor side) injects.
_REQUEST_KINDS = ("GET", "GETX")

#: kinds excluded from stateful exploration (checked statically).
STATIC_ONLY_KINDS = frozenset({"UC_READ", "UC_WRITE", "PAGE_SCRUB"})

_TRACE_LIMIT = 20


class Violation:
    """One invariant breach, with a reproduction trace."""

    __slots__ = ("invariant", "scenario", "description", "trace")

    def __init__(self, invariant, scenario, description, trace=()):
        self.invariant = invariant
        self.scenario = scenario
        self.description = description
        self.trace = list(trace)

    def to_dict(self):
        return {"invariant": self.invariant, "scenario": self.scenario,
                "description": self.description, "trace": self.trace}

    def __repr__(self):
        return "<Violation %s/%s>" % (self.scenario, self.invariant)


class ScenarioResult:

    __slots__ = ("name", "states", "transitions", "violations")

    def __init__(self, name, states, transitions, violations):
        self.name = name
        self.states = states
        self.transitions = transitions
        self.violations = violations

    def to_dict(self):
        return {"name": self.name, "states": self.states,
                "transitions": self.transitions,
                "violations": [v.to_dict() for v in self.violations]}


class Report:
    """Outcome of a full verification run over one spec."""

    def __init__(self, scenarios, static_violations):
        self.scenarios = scenarios
        self.static_violations = static_violations

    @property
    def ok(self):
        return not self.violations()

    def violations(self):
        found = list(self.static_violations)
        for scenario in self.scenarios:
            found.extend(scenario.violations)
        return found

    @property
    def total_states(self):
        return sum(scenario.states for scenario in self.scenarios)

    @property
    def total_transitions(self):
        return sum(scenario.transitions for scenario in self.scenarios)

    def to_dict(self):
        return {
            "ok": self.ok,
            "total_states": self.total_states,
            "total_transitions": self.total_transitions,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "static_violations": [v.to_dict()
                                  for v in self.static_violations],
        }


def default_scenarios():
    return [
        Scenario("fault-free/firewall-on"),
        Scenario("fault-free/firewall-off", firewall_enabled=False),
        Scenario("failed-cell", failed={3}, deny_failed=True,
                 check_drain=False),
    ]


def verify_spec(spec, scenarios=None, max_states=500000):
    """Explore every scenario; returns a :class:`Report`."""
    machine = SpecMachine(spec)
    results = []
    for scenario in (scenarios or default_scenarios()):
        explorer = _Explorer(machine, scenario, max_states)
        results.append(explorer.run())
    return Report(results, static_checks(spec))


# ------------------------------------------------------------ static checks

def static_checks(spec):
    """Spec-shape invariants for the kinds the model does not explore."""
    violations = []
    by_kind = {}
    for entry in spec.get("transitions", ()):
        by_kind.setdefault(entry["kind"], []).append(entry)
    for kind in sorted(STATIC_ONLY_KINDS):
        paths = by_kind.get(kind)
        if not paths:
            violations.append(Violation(
                "missing-handler", "static",
                "%s has no extracted transition" % kind))
            continue
        if not any(item[0] == "send"
                   for entry in paths for item in _walk(entry["items"])):
            violations.append(Violation(
                "silent-handler", "static",
                "%s never replies; requesters would wedge" % kind))
    for kind in ("UC_READ", "UC_WRITE"):
        if not _has_uc_rejection(by_kind.get(kind, ())):
            violations.append(Violation(
                "uncached-escape", "static",
                "%s lacks the remote-I/O rejection path (paper §3.3: "
                "nonidempotent I/O must not cross failure units)" % kind))
    return violations


def _walk(items):
    for item in items:
        yield item
        if item[0] == "fanout":
            for inner in item[3]:
                yield inner


def _has_uc_rejection(paths):
    """Some path must reject I/O for requesters outside the failure
    unit: guarded on io-region AND not-in-failure-unit, replying with an
    error payload."""
    for entry in paths:
        guarded = False
        for item in entry["items"]:
            if item[0] == "guard" and item[2]:
                if _mentions(item[1], "io_region") and _mentions(
                        item[1], "in_failure_unit"):
                    guarded = True
            if guarded and item[0] == "send":
                payload = item[3]
                if "BusErrorKind" in str(payload.get("error_kind", "")):
                    return True
    return False


def _mentions(atom, tag):
    if atom[0] == tag:
        return True
    if atom[0] in ("and", "or"):
        return any(_mentions(part, tag) for part in atom[1])
    if atom[0] == "not":
        return _mentions(atom[1], tag)
    return False


# -------------------------------------------------------------- exploration

class _Explorer:

    def __init__(self, machine, scenario, max_states):
        self.machine = machine
        self.scenario = scenario
        self.max_states = max_states
        self.parents = {}        # config -> (parent-config, move label)
        self.successors = {}     # config -> [config]
        self.violations = []
        self.seen_violations = set()
        self.transitions = 0

    def run(self):
        scenario = self.scenario
        frontier = list(self._seeds())
        for config in frontier:
            self.parents[config] = (None, "seed")
            self._check_config(config)
        index = 0
        while index < len(frontier):
            config = frontier[index]
            index += 1
            if len(self.parents) > self.max_states:
                self._violate("state-explosion", config,
                              "exceeded %d states" % self.max_states)
                break
            for label, successor in self._moves(config):
                self.successors.setdefault(config, []).append(successor)
                if successor in self.parents:
                    continue
                self.parents[successor] = (config, label)
                self._check_config(successor)
                frontier.append(successor)
        if scenario.check_drain:
            self._check_drain()
        return ScenarioResult(scenario.name, len(self.parents),
                              self.transitions, self.violations)

    # ----------------------------------------------------------------- seeds

    def _seeds(self):
        n = self.scenario.num_nodes
        yield initial_config(n)
        # Post-recovery marking: the line was declared lost.
        yield initial_config(n, line=make_line(state="INCOHERENT",
                                               memory_valid=False))
        failed = sorted(self.scenario.failed)
        if failed:
            dead = failed[0]
            live = self.scenario.live_remotes()[0]
            # The dead node still owns the line dirty.
            yield initial_config(
                n, line=make_line(state="EXCLUSIVE", owner=dead,
                                  memory_valid=False),
                caches=self._caches(n, {dead: "E"}))
            # The dead node still sits in the sharer vector.
            yield initial_config(
                n, line=make_line(state="SHARED", sharers={dead, live}),
                caches=self._caches(n, {dead: "S", live: "S"}))
            # A pre-failure write request from the dead node is still in
            # flight — the firewall must eat it.
            yield initial_config(
                n, queues=enqueue((), dead, HOME,
                                  message("GETX", requester=dead)))
            # And a pre-failure read for completeness.
            yield initial_config(
                n, queues=enqueue((), dead, HOME,
                                  message("GET", requester=dead)))

    @staticmethod
    def _caches(n, assignments):
        caches = ["I"] * n
        for node, state in assignments.items():
            caches[node] = state
        return tuple(caches)

    # ----------------------------------------------------------------- moves

    def _moves(self, config):
        moves = []
        for remote in self.scenario.live_remotes():
            moves.extend(self._env_moves(config, remote))
        for (src, dst), _messages in config.queues:
            moves.append(self._delivery(config, src, dst))
        return [move for move in moves if move is not None]

    def _env_moves(self, config, remote):
        cache = config.caches[remote]
        outstanding = config.outstanding[remote]
        moves = []
        # One memory operation per processor at a time: a new request or
        # writeback is issued only once the previous one has left the
        # node's request lane.  This bounds each remote->home FIFO to one
        # message without hiding any cross-node race.  On top of that,
        # ``scenario.max_concurrent`` caps how many remotes may be mid-
        # transaction at once — every pairwise race is still enumerated.
        budget = self.scenario.max_transactions
        if (outstanding is None and not self._lane_busy(config, remote)
                and (budget is None or config.spent < budget)
                and self._active_remotes(config)
                < self.scenario.max_concurrent):
            if cache == "I":
                moves.append(self._issue(config, remote, "GET"))
                moves.append(self._issue(config, remote, "GETX"))
            elif cache == "S":
                moves.append(self._issue(config, remote, "GETX"))
            elif cache == "E":
                moves.append(self._evict(config, remote))
        if cache == "S":
            moves.append(self._silent_drop(config, remote))
        return moves

    @staticmethod
    def _lane_busy(config, remote):
        for (src, dst), messages in config.queues:
            if src == remote and messages:
                return True
        return False

    def _active_remotes(self, config):
        count = 0
        for remote in self.scenario.live_remotes():
            if (config.outstanding[remote] is not None
                    or self._lane_busy(config, remote)):
                count += 1
        return count

    def _issue(self, config, remote, kind):
        outstanding = list(config.outstanding)
        outstanding[remote] = kind
        queues = enqueue(config.queues, remote, HOME,
                         message(kind, requester=remote))
        successor = config.replace(outstanding=outstanding, queues=queues,
                                   spent=config.spent + 1)
        return ("%d issues %s" % (remote, kind), successor)

    def _evict(self, config, remote):
        caches = list(config.caches)
        caches[remote] = "I"
        queues = enqueue(config.queues, remote, HOME, message("PUT"))
        successor = config.replace(caches=caches, queues=queues,
                                   spent=config.spent + 1)
        return ("%d evicts (PUT)" % remote, successor)

    def _silent_drop(self, config, remote):
        caches = list(config.caches)
        caches[remote] = "I"
        successor = config.replace(caches=caches)
        return ("%d drops its SHARED copy" % remote, successor)

    def _delivery(self, config, src, dst):
        msg, queues = dequeue(config.queues, src, dst)
        kind = msg[0]
        base = config.replace(queues=queues)
        label = "deliver %s %d->%d" % (kind, src, dst)
        if dst in self.scenario.failed:
            # The dead cell consumes nothing; the interconnect drops
            # traffic addressed to it (as magic's node map does).
            return (label + " (dropped: failed)", base)
        if kind in REPLY_KINDS:
            return (label, self._absorb(base, dst, kind))
        self.transitions += 1
        try:
            outcome = self.machine.deliver(base, src, dst, msg,
                                           self.scenario)
        except ModelError as exc:
            self._violate("model-gap", config, str(exc))
            return None
        for tag, detail in outcome.events:
            if tag == "assert":
                self._violate("firmware-assert", config,
                              "firmware assertion %s tripped delivering "
                              "%s at node %d" % (detail, kind, dst))
            elif tag == "acks-underflow":
                self._violate("ack-underflow", config,
                              "awaiting_acks went negative on %s" % kind)
        successor = outcome.config
        for target, sent in outcome.sends:
            sent_kind = sent[0]
            if (sent_kind in GRANT_KINDS
                    and target in self.scenario.failed):
                self._violate(
                    "escape-send", config,
                    "%s handler sent %s into failed cell %d (firewall "
                    "escape, paper §4.1)" % (kind, sent_kind, target))
            successor = successor.replace(
                queues=enqueue(successor.queues, dst, target, sent))
        if kind == "INVAL" and successor.outstanding[dst] == "GET":
            # Mirrors magic's MSHR poisoning: an INVAL crossing an
            # in-flight fill marks it so the data is used once and the
            # line is not installed SHARED.
            outstanding = list(successor.outstanding)
            outstanding[dst] = "GET*"
            successor = successor.replace(outstanding=outstanding)
        return (label, successor)

    def _absorb(self, config, node, kind):
        """Requester-side reply handling (magic's _handle_reply)."""
        caches = list(config.caches)
        outstanding = list(config.outstanding)
        if kind == "DATA_SHARED":
            if outstanding[node] != "GET*":
                caches[node] = "S"
            # poisoned fill: the value satisfies the load exactly once
            # but the stale line is not installed (use-once semantics)
        elif kind == "DATA_EXCL":
            caches[node] = "E"
        outstanding[node] = None
        return config.replace(caches=caches, outstanding=outstanding)

    # ------------------------------------------------------------ invariants

    def _check_config(self, config):
        line = config.line
        state, owner, sharers = line[0], line[1], line[2]
        exclusive_holders = [node for node, cache
                             in enumerate(config.caches) if cache == "E"]
        grants_in_flight = sum(
            1 for _pair, messages in config.queues
            for msg_kind, _fields in messages if msg_kind == "DATA_EXCL")
        if len(exclusive_holders) + grants_in_flight > 1:
            self._violate(
                "single-owner", config,
                "%d exclusive holder(s) %s with %d DATA_EXCL grant(s) in "
                "flight" % (len(exclusive_holders), exclusive_holders,
                            grants_in_flight))
        for node in exclusive_holders:
            if node in self.scenario.failed:
                continue
            if config.outstanding[node] is not None:
                continue      # transient: a request of its own in flight
            if state == "EXCLUSIVE" and owner != node:
                self._violate(
                    "single-owner", config,
                    "node %d caches the line EXCLUSIVE but the directory "
                    "owner is %s" % (node, owner))
            elif state in ("SHARED", "UNOWNED"):
                self._violate(
                    "single-owner", config,
                    "node %d caches the line EXCLUSIVE but the directory "
                    "is %s" % (node, state))
        for node, cache in enumerate(config.caches):
            if cache != "S" or node in self.scenario.failed:
                continue
            if config.outstanding[node] is not None:
                continue      # e.g. S->E upgrade granted but not absorbed
            if state == "SHARED" and node not in sharers:
                self._violate(
                    "sharer-vector", config,
                    "node %d caches the line SHARED but is missing from "
                    "the sharer vector %s" % (node, sorted(sharers)))
            elif state in ("UNOWNED", "EXCLUSIVE"):
                self._violate(
                    "sharer-vector", config,
                    "node %d caches the line SHARED while the directory "
                    "is %s" % (node, state))
        if state == "LOCKED":
            if line[4] not in ("GET", "GETX") or line[5] is None:
                self._violate(
                    "lock-bookkeeping", config,
                    "LOCKED entry with pending_kind=%s "
                    "pending_requester=%s" % (line[4], line[5]))
        elif line[4] is not None or line[6] != 0 or line[7]:
            self._violate(
                "lock-bookkeeping", config,
                "unlocked entry retains pending state %s/acks=%d/"
                "await-put=%s" % (line[4], line[6], line[7]))

    def _check_drain(self):
        """Reverse reachability: every LOCKED config must reach an
        unlocked one (otherwise the abstract machine deadlocks)."""
        predecessors = {}
        drained = []
        for config, successors in self.successors.items():
            for successor in successors:
                predecessors.setdefault(successor, []).append(config)
        for config in self.parents:
            if config.state != "LOCKED":
                drained.append(config)
        can_drain = set(drained)
        frontier = list(drained)
        index = 0
        while index < len(frontier):
            for predecessor in predecessors.get(frontier[index], ()):
                if predecessor not in can_drain:
                    can_drain.add(predecessor)
                    frontier.append(predecessor)
            index += 1
        for config in self.parents:
            if config not in can_drain:
                self._violate(
                    "lock-deadlock", config,
                    "LOCKED configuration cannot drain: no sequence of "
                    "deliveries ever unlocks the line")
                break        # one witness is enough

    # -------------------------------------------------------------- plumbing

    def _violate(self, invariant, config, description):
        key = (invariant, description.split(" at node")[0])
        if key in self.seen_violations:
            return
        self.seen_violations.add(key)
        self.violations.append(Violation(
            invariant, self.scenario.name, description,
            trace=self._trace(config)))

    def _trace(self, config):
        steps = []
        cursor = config
        while cursor is not None and len(steps) < _TRACE_LIMIT:
            parent, label = self.parents.get(cursor, (None, "?"))
            steps.append("%s  =>  %s" % (label, cursor.describe()))
            cursor = parent
        steps.reverse()
        return steps
