"""Abstract single-line protocol machine driven by the extracted spec.

The machine models one cache line homed at node 0, with up to three
remote nodes, exactly the small-model shape of the paper's protocol
verification argument: every directory interaction is per-line, so a
single line with a handful of remotes exercises every transition.

A configuration is immutable (hashable) and holds:

* the directory entry for the line — state, owner, sharer vector,
  ``memory_valid``, and the lock bookkeeping (``pending_kind``,
  ``pending_requester``, ``awaiting_acks``, ``awaiting_put``);
* each remote's cache state for the line (``I``/``S``/``E``);
* each remote's outstanding request (None/``GET``/``GETX``);
* the network: per ``(src, dst)`` FIFO queues of in-flight messages.
  Per-pair FIFO matches the simulator's lane-ordered point-to-point
  delivery; fully unordered delivery would manufacture reorderings
  (e.g. an INVAL overtaking the DATA_SHARED it chases) that the
  interconnect cannot produce.

:class:`SpecMachine` executes one delivery: it finds the unique
transition path whose guards hold (executing binds and entry mutations
in extracted order, because e.g. ``INVAL_ACK`` decrements the ack count
*before* testing it), applies the writes, and returns the sends.  The
guard/step vocabulary is closed — anything outside it raises
:class:`ModelError`, which the checker reports as a model/extraction
gap rather than guessing semantics.

Model assumptions (documented deviations from the concrete machine):

* remotes always have caches (``has_cache`` is true off-home);
* failure units are singletons, so ``requester in failure_unit``
  means ``requester == node``;
* the modeled line is ordinary memory (never in the MAGIC region) and
  addresses are never I/O — the uncached and scrub kinds are validated
  statically by the checker instead of being explored statefully;
* the firewall ACL is scenario policy: open in fault-free scenarios,
  deny-failed-cell in fault scenarios (paper §4.1: recovery closes the
  firewall against dead cells).
"""

HOME = 0

#: message kinds the reply harness (magic's ``_handle_reply``) absorbs at
#: the requester instead of the protocol table.
REPLY_KINDS = frozenset({"DATA_SHARED", "DATA_EXCL", "NAK",
                         "BUS_ERROR_REPLY"})

#: write-grant kinds; sending one into a failed cell is a containment
#: escape (read replies to a failed requester are the firewall's
#: documented don't-care: the firewall of §4.1 is a *write* firewall).
GRANT_KINDS = frozenset({"DATA_EXCL"})

_CACHE_NAMES = {"EXCLUSIVE": "E", "SHARED": "S", "INVALID": "I"}


class ModelError(Exception):
    """The spec used vocabulary this model cannot execute."""


class Config(tuple):
    """Immutable machine configuration.

    Layout: ``(line, caches, outstanding, queues, spent)`` where ``line``
    is ``(state, owner, sharers, memory_valid, pending_kind,
    pending_requester, awaiting_acks, awaiting_put)``, ``caches`` and
    ``outstanding`` are per-node tuples, ``queues`` is a sorted tuple of
    ``((src, dst), (message, ...))`` with empty queues elided, and
    ``spent`` counts processor operations issued so far (the explorer's
    bounded-session budget).  A message is ``(kind, fields)`` with
    ``fields`` a sorted tuple of ``(name, value)`` pairs
    (``requester``/``home``).
    """

    __slots__ = ()

    @property
    def line(self):
        return self[0]

    @property
    def caches(self):
        return self[1]

    @property
    def outstanding(self):
        return self[2]

    @property
    def queues(self):
        return self[3]

    @property
    def spent(self):
        return self[4]

    @property
    def state(self):
        return self[0][0]

    def replace(self, line=None, caches=None, outstanding=None,
                queues=None, spent=None):
        return Config((
            self[0] if line is None else line,
            self[1] if caches is None else tuple(caches),
            self[2] if outstanding is None else tuple(outstanding),
            self[3] if queues is None else tuple(queues),
            self[4] if spent is None else spent,
        ))

    def describe(self):
        line = self.line
        bits = ["dir=%s" % line[0]]
        if line[1] is not None:
            bits.append("owner=%d" % line[1])
        if line[2]:
            bits.append("sharers={%s}" % ",".join(
                str(node) for node in sorted(line[2])))
        if line[0] == "LOCKED":
            bits.append("pending=%s@%s acks=%d%s"
                        % (line[4], line[5], line[6],
                           " await-put" if line[7] else ""))
        bits.append("caches=%s" % "".join(self.caches[1:]))
        for (src, dst), messages in self.queues:
            bits.append("%d->%d:[%s]" % (
                src, dst, ",".join(kind for kind, _ in messages)))
        return " ".join(bits)


def make_line(state="UNOWNED", owner=None, sharers=(), memory_valid=True,
              pending_kind=None, pending_requester=None, awaiting_acks=0,
              awaiting_put=False):
    return (state, owner, frozenset(sharers), memory_valid, pending_kind,
            pending_requester, awaiting_acks, awaiting_put)


def initial_config(num_nodes, line=None, caches=None, queues=()):
    """A starting configuration (defaults: idle UNOWNED line)."""
    return Config((
        line if line is not None else make_line(),
        tuple(caches) if caches is not None else ("I",) * num_nodes,
        (None,) * num_nodes,
        tuple(sorted(queues)),
        0,
    ))


def enqueue(queues, src, dst, message):
    """Functional append to the ``(src, dst)`` FIFO."""
    table = dict(queues)
    table[(src, dst)] = table.get((src, dst), ()) + (message,)
    return tuple(sorted(table.items()))


def dequeue(queues, src, dst):
    """Functional pop of the ``(src, dst)`` FIFO head."""
    table = dict(queues)
    head, rest = table[(src, dst)][0], table[(src, dst)][1:]
    if rest:
        table[(src, dst)] = rest
    else:
        del table[(src, dst)]
    return head, tuple(sorted(table.items()))


def message(kind, **fields):
    return (kind, tuple(sorted(fields.items())))


class Scenario:
    """Environment policy for one exploration run."""

    def __init__(self, name, num_nodes=4, failed=(), firewall_enabled=True,
                 deny_failed=False, check_drain=True, max_concurrent=2,
                 max_transactions=4):
        self.name = name
        self.num_nodes = num_nodes
        self.failed = frozenset(failed)
        self.firewall_enabled = firewall_enabled
        self.deny_failed = deny_failed
        self.check_drain = check_drain
        #: small-model bound: how many remotes may have a transaction
        #: (request, upgrade or writeback) in flight at once.  Two is
        #: enough to enumerate every pairwise race; three multiplies
        #: interleavings without adding new protocol decisions.
        self.max_concurrent = max_concurrent
        #: small-model bound: total processor operations (requests,
        #: upgrades, writebacks) per explored session.  Four covers every
        #: pairwise race on top of any two-op history — e.g. two GETs to
        #: build a sharer vector, then racing GETX upgrades — while
        #: cutting the unbounded NAK-retry cycles that otherwise blow
        #: the space past millions of states.  None means unbounded.
        self.max_transactions = max_transactions

    def live_remotes(self):
        return [node for node in range(1, self.num_nodes)
                if node not in self.failed]

    def firewall_allows(self, requester):
        if self.deny_failed:
            return requester not in self.failed
        return True


class Outcome:
    """Result of one transition execution."""

    __slots__ = ("config", "sends", "events", "transition")

    def __init__(self, config, sends, events, transition):
        self.config = config
        self.sends = sends        # [(dst, kind, fields-tuple)]
        self.events = events      # [(tag, detail)]
        self.transition = transition


_DIR_STATES = frozenset(
    {"UNOWNED", "SHARED", "EXCLUSIVE", "LOCKED", "INCOHERENT"})


def _may_states(atom):
    """Directory states where ``atom`` could evaluate true (sound
    over-approximation: atoms that are not purely a function of the
    directory state contribute the full set)."""
    if atom[0] == "state":
        name = atom[1].rsplit(".", 1)[-1]
        return frozenset({name}) if name in _DIR_STATES else _DIR_STATES
    if atom[0] == "not":
        return _DIR_STATES - _must_states(atom[1])
    if atom[0] == "and":
        combined = _DIR_STATES
        for part in atom[1]:
            combined &= _may_states(part)
        return combined
    if atom[0] == "or":
        combined = frozenset()
        for part in atom[1]:
            combined |= _may_states(part)
        return combined
    return _DIR_STATES


def _must_states(atom):
    """Directory states where ``atom`` is certainly true regardless of
    the rest of the configuration (sound under-approximation)."""
    if atom[0] == "state":
        name = atom[1].rsplit(".", 1)[-1]
        return frozenset({name}) if name in _DIR_STATES else frozenset()
    if atom[0] == "not":
        return _DIR_STATES - _may_states(atom[1])
    if atom[0] == "and":
        combined = _DIR_STATES
        for part in atom[1]:
            combined &= _must_states(part)
        return combined
    if atom[0] == "or":
        combined = frozenset()
        for part in atom[1]:
            combined |= _must_states(part)
        return combined
    return frozenset()


def _state_set(atom):
    """Directory states where ``atom`` holds, or None if the atom is not
    purely a function of the directory state."""
    may, must = _may_states(atom), _must_states(atom)
    return may if may == must else None


def _admissible_states(items):
    """Initial directory states a path can possibly match, judging by
    its state guards before the first state mutation (None = any)."""
    admissible = _DIR_STATES
    for item in items:
        if item[0] == "guard":
            atom = item[1] if item[2] else ["not", item[1]]
            admissible &= _may_states(atom)
        elif item[0] in ("lock", "unlock") or (
                item[0] == "write" and item[1] == "state"):
            break
    return None if admissible == _DIR_STATES else admissible


class SpecMachine:
    """Executes extracted transitions against configurations."""

    def __init__(self, spec):
        self.by_kind = {}
        for entry in spec.get("transitions", ()):
            self.by_kind.setdefault(entry["kind"], []).append(
                (entry, _admissible_states(entry["items"])))

    def kinds(self):
        return sorted(self.by_kind)

    def deliver(self, config, src, dst, msg, scenario):
        """Run the handler for ``msg`` at ``dst``.

        Returns an :class:`Outcome`; raises :class:`ModelError` when no
        transition path (or more than one) matches — the paths come from
        if/else enumeration, so the match must be unique.
        """
        kind, fields = msg
        state = config.line[0]
        matched = []
        for transition, admissible in self.by_kind.get(kind, ()):
            if admissible is not None and state not in admissible:
                continue
            work = _Execution(config, dst, src, dict(fields), scenario)
            if work.run(transition["items"]):
                matched.append((transition, work))
        if len(matched) != 1:
            raise ModelError(
                "%d transition path(s) of %s match at %s"
                % (len(matched), kind, config.describe()))
        transition, work = matched[0]
        return Outcome(work.freeze(), work.sends, work.events, transition)


class _Execution:
    """Mutable working copy of a configuration during one delivery."""

    def __init__(self, config, node, src, fields, scenario):
        line = config.line
        self.line = {
            "state": line[0], "owner": line[1], "sharers": set(line[2]),
            "memory_valid": line[3], "pending_kind": line[4],
            "pending_requester": line[5], "awaiting_acks": line[6],
            "awaiting_put": line[7],
        }
        self.caches = list(config.caches)
        self.outstanding = config.outstanding
        self.queues = config.queues
        self.spent = config.spent
        self.node = node
        self.src = src
        self.fields = fields
        self.scenario = scenario
        self.binds = {}
        self.locals = {}
        self.cache_value = None
        self.sends = []
        self.events = []

    # ------------------------------------------------------------- driving

    def run(self, items):
        """Apply items in order; False when a guard does not hold."""
        for item in items:
            if item[0] == "guard":
                if self.eval_atom(item[1]) != item[2]:
                    return False
            else:
                self.apply(item)
        return True

    def freeze(self):
        line = self.line
        return Config((
            (line["state"], line["owner"], frozenset(line["sharers"]),
             line["memory_valid"], line["pending_kind"],
             line["pending_requester"], line["awaiting_acks"],
             line["awaiting_put"]),
            tuple(self.caches),
            self.outstanding,
            self.queues,
            self.spent,
        ))

    # --------------------------------------------------------------- atoms

    def eval_atom(self, atom):
        tag = atom[0]
        if tag == "and":
            return all(self.eval_atom(part) for part in atom[1])
        if tag == "or":
            return any(self.eval_atom(part) for part in atom[1])
        if tag == "not":
            return not self.eval_atom(atom[1])
        if tag == "state":
            return self.line["state"] == atom[1]
        if tag == "pending_kind":
            return self.line["pending_kind"] == atom[1]
        if tag == "owner_is":
            return self.line["owner"] == self.resolve(atom[1])
        if tag == "entry_missing":
            # The model always materializes the entry; a missing entry
            # is indistinguishable from its reset (UNOWNED) state, and
            # every extracted use disjoins this with a state test.
            return False
        if tag == "acks_remaining":
            return self.line["awaiting_acks"] > 0
        if tag == "entry_flag":
            return bool(self.line[atom[1]])
        if tag == "bind_truthy":
            return bool(self.binds[atom[1]])
        if tag == "bind_is":
            return self.binds[atom[1]] == atom[2].split(".", 1)[1]
        if tag == "firewall_enabled":
            return self.scenario.firewall_enabled
        if tag == "in_failure_unit":
            return self.resolve(atom[1]) == self.node
        if tag == "is_home":
            return self.resolve(atom[1]) == self.node
        if tag == "firewall_allows":
            return self.scenario.firewall_allows(self.fields["requester"])
        if tag == "magic_region":
            return False        # the modeled line is ordinary memory
        if tag == "owns":
            return self.node == HOME
        if tag == "fw_assert":
            value = self.eval_atom(atom[1])
            if not value:
                self.events.append(("assert", repr(atom[1])))
            return value
        if tag == "has_cache":
            return self.node != HOME
        if tag == "cache_miss":
            return self.cache_value is None
        if tag == "cache_state":
            return (self.caches[self.node]
                    == _CACHE_NAMES.get(atom[1], atom[1]))
        raise ModelError("unknown guard atom %r" % (atom,))

    # --------------------------------------------------------------- steps

    def apply(self, item):
        tag = item[0]
        if tag == "bind":
            self.binds[item[1]] = self._bind_source(item[2])
        elif tag == "write":
            self._write(item[1], item[2])
        elif tag == "sharers_add":
            self.line["sharers"].add(self.resolve(item[1]))
        elif tag == "acks_dec":
            self.line["awaiting_acks"] -= 1
            if self.line["awaiting_acks"] < 0:
                self.events.append(("acks-underflow", ""))
        elif tag == "lock":
            self.line["state"] = "LOCKED"
            self.line["pending_kind"] = item[1]
            self.line["pending_requester"] = self.resolve(item[2])
        elif tag == "unlock":
            self.line["state"] = item[1]
            self.line["pending_kind"] = None
            self.line["pending_requester"] = None
            self.line["awaiting_acks"] = 0
            self.line["awaiting_put"] = False
        elif tag == "send":
            self._send(item[1], item[2], item[3])
        elif tag == "fanout":
            self._fanout(item[1], item[2], item[3])
        elif tag == "cache":
            self._cache_op(item[1])
        elif tag in ("mem_write", "stat", "hook", "io", "scrub"):
            pass
        elif tag == "stray":
            self.events.append(("stray", item[1]))
        elif tag == "assert":
            if not self.eval_atom(item[1]):
                self.events.append(("assert", repr(item[1])))
        elif tag == "opaque":
            raise ModelError("opaque extraction item: %s" % item[1])
        else:
            raise ModelError("unknown step %r" % (item,))

    def _bind_source(self, source):
        if source == "entry.owner":
            return self.line["owner"]
        if source == "entry.pending_requester":
            return self.line["pending_requester"]
        if source == "entry.pending_kind":
            return self.line["pending_kind"]
        if source == "other_sharers":
            return frozenset(self.line["sharers"]
                             - {self.fields["requester"]})
        raise ModelError("unknown bind source %r" % source)

    def _write(self, field, value):
        if field == "state":
            name = value.split(".", 1)[1] if "." in value else value
            self.line["state"] = name
        elif field == "sharers":
            self.line["sharers"] = set(self._set_value(value))
        elif field in ("owner", "pending_requester"):
            self.line[field] = self.resolve(value)
        elif field in ("memory_valid", "awaiting_put"):
            self.line[field] = self.resolve(value)
        elif field == "awaiting_acks":
            self.line[field] = self.resolve(value)
        else:
            raise ModelError("write to unknown field %r" % field)

    def _set_value(self, value):
        if value == "{}":
            return frozenset()
        if value.startswith("{") and value.endswith("}"):
            return frozenset(self.resolve(part.strip())
                             for part in value[1:-1].split(","))
        raise ModelError("unknown set value %r" % value)

    def _send(self, dst, kind, payload):
        target = self.resolve(dst)
        fields = {}
        for key in ("requester", "home"):
            if key in payload:
                fields[key] = self.resolve(payload[key])
        self.sends.append((target, (kind, tuple(sorted(fields.items())))))

    def _fanout(self, var, iterable, items):
        members = self.binds.get(iterable)
        if members is None:
            raise ModelError("fanout over unknown iterable %r" % iterable)
        for member in sorted(members):
            self.locals[var] = member
            for item in items:
                self.apply(item)
        self.locals.pop(var, None)

    def _cache_op(self, op):
        state = self.caches[self.node]
        if op == "downgrade":
            # Returns the value when the line is present, leaving it
            # SHARED; a miss leaves the cache untouched.
            if state in ("S", "E"):
                self.cache_value = True
                self.caches[self.node] = "S"
            else:
                self.cache_value = None
        elif op == "invalidate":
            # Returns the (dirty) value only for EXCLUSIVE; the line is
            # dropped regardless.
            self.cache_value = True if state == "E" else None
            self.caches[self.node] = "I"
        else:
            raise ModelError("unknown cache op %r" % op)

    # ------------------------------------------------------------ resolving

    def resolve(self, value):
        if value in self.locals:
            return self.locals[value]
        if value.startswith("$"):
            if value not in self.binds:
                raise ModelError("unbound slot %r" % value)
            return self.binds[value]
        if value == "requester":
            return self.fields["requester"]
        if value == "home":
            return self.fields["home"]
        if value == "src":
            return self.src
        if value == "self":
            return self.node
        if value == "None":
            return None
        if value == "True":
            return True
        if value == "False":
            return False
        if value.startswith("len(") and value.endswith(")"):
            inner = self.resolve(value[4:-1])
            return len(inner)
        raise ModelError("cannot resolve value %r" % value)
