"""Generator-based processes and the waitables they can yield.

A process generator may yield:

* a number — sleep that many nanoseconds;
* an :class:`Event` — resume when it triggers (with the event's value);
* another :class:`Process` — resume when it terminates;
* an :class:`AllOf` / :class:`AnyOf` — composite waits;
* a channel ``get()`` (which is an :class:`Event` under the hood).

``Process.interrupt(cause)`` throws :class:`Interrupt` into the generator at
the current simulation time, cancelling whatever it was waiting for.  This is
the simulation analog of the forced bus parity error / Cache Error exception
MAGIC uses to pull the R10000 out of normal execution (paper §4.2).

The single-waitable lanes (sleep, one event, one process join) are the
simulator's hot path, so everything they allocate per wait is a
``__slots__`` class — no closure cells, no per-wait dicts.  Composite
waits (:class:`AllOf`/:class:`AnyOf`) are comparatively rare and share
the same slotted machinery via per-index adapter callbacks.
"""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot level-triggered event carrying an optional value."""

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value = None
        self._waiters = []

    def trigger(self, value=None):
        """Fire the event, resuming all waiters at the current time."""
        if self.triggered:
            raise RuntimeError("event %r triggered twice" % (self.name,))
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, callback, value)

    def subscribe(self, callback):
        """Invoke ``callback(value)`` once the event fires."""
        if self.triggered:
            self.sim.schedule(0.0, callback, self.value)
        else:
            self._waiters.append(callback)

    def unsubscribe(self, callback):
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass


class Timeout:
    """Explicit timeout waitable (yielding a bare number is equivalent)."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        self.delay = delay


class AllOf:
    """Wait for every event in a collection; value is the list of values."""

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = list(events)


class AnyOf:
    """Wait for the first event in a collection; value is (index, value)."""

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = list(events)


class _Waiter:
    """One-shot resume callback for a single event/process-join wait.

    Knows its event so :meth:`detach` can unsubscribe without the process
    carrying a closure around; ``live`` goes False on detach so a resume
    already scheduled by ``Event.trigger`` becomes a no-op (the interrupt
    vs. event-resume race in :meth:`Process._step`).
    """

    __slots__ = ("process", "event", "live")

    def __init__(self, process, event):
        self.process = process
        self.event = event
        self.live = True

    def __call__(self, value):
        process = self.process
        if self.live and process.alive:
            self.live = False
            process._step(value, None)

    def detach(self):
        self.live = False
        self.event.unsubscribe(self)


class _AllOfWait:
    """Join counter for an :class:`AllOf`; resumes when every slot fired."""

    __slots__ = ("process", "values", "remaining", "live")

    def __init__(self, process, count):
        self.process = process
        self.values = [None] * count
        self.remaining = count
        self.live = True

    def fire(self, index, value):
        if not self.live or not self.process.alive:
            return
        self.values[index] = value
        self.remaining -= 1
        if self.remaining == 0:
            self.live = False
            self.process._step(self.values, None)

    def detach(self):
        self.live = False


class _AnyOfWait:
    """First-wins latch for an :class:`AnyOf`."""

    __slots__ = ("process", "live")

    def __init__(self, process):
        self.process = process
        self.live = True

    def fire(self, index, value):
        if self.live and self.process.alive:
            self.live = False
            self.process._step((index, value), None)

    def detach(self):
        self.live = False


class _IndexedCallback:
    """Adapter subscribing one composite-wait slot to one event."""

    __slots__ = ("wait", "index")

    def __init__(self, wait, index):
        self.wait = wait
        self.index = index

    def __call__(self, value):
        self.wait.fire(self.index, value)


class Process:
    """Drives a generator, resuming it as its yielded waits complete."""

    __slots__ = ("sim", "generator", "name", "alive", "result", "exception",
                 "exit_event", "_pending_timeout", "_pending_wait",
                 "_executing", "_kill_requested")

    def __init__(self, sim, generator, name=None):
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        self.result = None
        self.exception = None
        self.exit_event = Event(sim, name="%s.exit" % self.name)
        self._pending_timeout = None       # ScheduledCall handle
        self._pending_wait = None          # object with .detach()
        self._executing = False            # generator currently running
        self._kill_requested = False       # self-kill during execution
        sim.schedule(0.0, self._step, None, None)

    # -- wait plumbing -----------------------------------------------------

    def _step(self, send_value, throw_exc):
        if not self.alive:
            return
        # Invalidate any wait that is still armed: when an interrupt races
        # with an already-scheduled event resume, the loser must become a
        # no-op rather than resume the generator at the wrong yield point.
        self._cancel_pending_wait()
        self._executing = True
        try:
            if throw_exc is not None:
                yielded = self.generator.throw(throw_exc)
            else:
                yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Interrupt as exc:
            # Generator chose not to handle the interrupt: terminate quietly.
            self._finish(exception=exc, raise_unhandled=False)
            return
        except Exception as exc:  # repro-lint: disable=broad-except —
            # not swallowed: the exception is re-raised by _finish so a
            # crashed model surfaces as a test bug.
            self._finish(exception=exc, raise_unhandled=True)
            return
        finally:
            self._executing = False
        if self._kill_requested:
            # The process was killed from within its own execution (e.g. a
            # handler tearing down its own service): finish now that the
            # generator has yielded control.
            self.generator.close()
            self._finish(result=None)
            return
        self._arm(yielded)

    def _arm(self, yielded):
        if isinstance(yielded, (int, float)):
            self._pending_timeout = self.sim.schedule(
                float(yielded), self._step, None, None)
        elif isinstance(yielded, Event):
            waiter = _Waiter(self, yielded)
            yielded.subscribe(waiter)
            self._pending_wait = waiter
        elif isinstance(yielded, Timeout):
            self._pending_timeout = self.sim.schedule(
                yielded.delay, self._step, None, None)
        elif isinstance(yielded, Process):
            waiter = _Waiter(self, yielded.exit_event)
            yielded.exit_event.subscribe(waiter)
            self._pending_wait = waiter
        elif isinstance(yielded, AllOf):
            self._arm_all_of(yielded)
        elif isinstance(yielded, AnyOf):
            self._arm_any_of(yielded)
        else:
            raise TypeError(
                "process %s yielded unsupported %r" % (self.name, yielded))

    def _arm_all_of(self, all_of):
        events = all_of.events
        if not events:
            self.sim.schedule(0.0, self._step, [], None)
            return
        wait = _AllOfWait(self, len(events))
        for index, event in enumerate(events):
            event.subscribe(_IndexedCallback(wait, index))
        self._pending_wait = wait

    def _arm_any_of(self, any_of):
        wait = _AnyOfWait(self)
        for index, event in enumerate(any_of.events):
            event.subscribe(_IndexedCallback(wait, index))
        self._pending_wait = wait

    def _cancel_pending_wait(self):
        timeout = self._pending_timeout
        if timeout is not None:
            timeout.cancel()
            self._pending_timeout = None
        wait = self._pending_wait
        if wait is not None:
            wait.detach()
            self._pending_wait = None

    def _finish(self, result=None, exception=None, raise_unhandled=False):
        self.alive = False
        self.result = result
        self.exception = exception
        self._cancel_pending_wait()
        self.exit_event.trigger(result)
        if raise_unhandled and exception is not None:
            raise exception

    # -- public API ----------------------------------------------------------

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the generator at the current time."""
        if not self.alive:
            return
        self._cancel_pending_wait()
        self.sim.schedule(0.0, self._step, None, Interrupt(cause))

    def kill(self):
        """Terminate the process without running any more of its code.

        Safe to call from within the process itself: termination is then
        deferred until the generator yields control back to the kernel.
        """
        if not self.alive:
            return
        if self._executing:
            self._kill_requested = True
            return
        self._cancel_pending_wait()
        self.generator.close()
        self._finish(result=None)

    def __repr__(self):
        state = "alive" if self.alive else "dead"
        return "<Process %s (%s)>" % (self.name, state)
