"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of simpy:

* :class:`~repro.sim.engine.Simulator` owns the virtual clock and event heap.
* :class:`~repro.sim.process.Process` wraps a generator; the generator yields
  waitables (a delay, an :class:`~repro.sim.process.Event`, another process,
  or a channel get) and is resumed when they fire.
* :class:`~repro.sim.channel.Channel` is an unbounded FIFO message queue with
  blocking ``get``.

Processes can be interrupted (:meth:`Process.interrupt`), which throws
:class:`~repro.sim.process.Interrupt` into the generator at the current
simulation time.  This is the analog of the cache-error/NMI mechanism MAGIC
uses to drop the R10000 into recovery code.
"""

from repro.sim.engine import Simulator
from repro.sim.process import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from repro.sim.channel import Channel

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
]
