"""Unbounded FIFO message channel with blocking ``get``.

Capacity limits in the interconnect model are enforced by the *senders*
(credit-based flow control), so the channel itself never blocks a put.  The
channel also exposes a ``wake`` event-stream used by router processes that
multiplex over several buffers.
"""

from collections import deque

from repro.sim.process import Event


class Channel:
    """FIFO of messages between processes."""

    def __init__(self, sim, name=None):
        self.sim = sim
        self.name = name or "channel"
        self._items = deque()
        self._getters = deque()
        self._watchers = []

    def put(self, item):
        """Append ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            event = self._getters.popleft()
            event.trigger(item)
        else:
            self._items.append(item)
        watchers = self._watchers
        if watchers:
            # Snapshot-swap delivery: every current watcher is one-shot
            # and about to fire (or already fired elsewhere), so detach
            # the whole batch first.  A watcher re-registering during
            # delivery appends to the fresh list — never dropped, never
            # double-fired — and a put with no watchers costs nothing.
            self._watchers = []
            for watcher in watchers:
                if not watcher.triggered:
                    watcher.trigger(self)

    def get(self):
        """Return an event that fires with the next item (FIFO order)."""
        event = Event(self.sim, name="%s.get" % self.name)
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self):
        """Non-blocking get; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def peek(self):
        """Return the head item without removing it, or None."""
        return self._items[0] if self._items else None

    def watch(self):
        """Return an event that fires on the next put (without consuming)."""
        event = Event(self.sim, name="%s.watch" % self.name)
        self._watchers.append(event)
        return event

    def clear(self):
        """Drop all queued items (used when a component fails)."""
        dropped = list(self._items)
        self._items.clear()
        return dropped

    def __len__(self):
        return len(self._items)

    def __bool__(self):
        return True

    def __repr__(self):
        return "<Channel %s depth=%d>" % (self.name, len(self._items))
