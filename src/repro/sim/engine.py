"""The simulator core: a time-ordered event heap and a virtual clock.

Times are floats in nanoseconds.  Determinism is guaranteed by breaking time
ties with a monotonically increasing sequence number, and by routing all
randomness through the simulator-owned :class:`random.Random` instance.
"""

import heapq
import itertools
import random


class ScheduledCall:
    """Handle for a scheduled callback; allows cancellation."""

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time, callback, args):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True


class Simulator:
    """Event-driven simulator with a nanosecond-resolution virtual clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned RNG.  All stochastic model decisions
        must draw from :attr:`rng` so that runs are reproducible.
    """

    def __init__(self, seed=0):
        self._now = 0.0
        self._heap = []
        self._seq = itertools.count()
        self.rng = random.Random(seed)
        self._processes = []
        #: executed (non-cancelled) events — the telemetry bench divides
        #: this by wall time for its events/sec throughput figure
        self.events_executed = 0

    @property
    def now(self):
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` after ``delay`` ns; returns a handle."""
        if delay < 0:
            raise ValueError("cannot schedule in the past (delay=%r)" % delay)
        call = ScheduledCall(self._now + delay, callback, args)
        heapq.heappush(self._heap, (call.time, next(self._seq), call))
        return call

    def schedule_at(self, time, callback, *args):
        """Run ``callback(*args)`` at absolute time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def spawn(self, generator, name=None):
        """Create a :class:`Process` driving ``generator``; starts at now."""
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def step(self):
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            time, _, call = heapq.heappop(self._heap)
            if call.cancelled:
                continue
            self._now = time
            self.events_executed += 1
            call.callback(*call.args)
            return True
        return False

    def run(self, until=None):
        """Run until the heap is empty or the clock passes ``until``."""
        if until is None:
            while self.step():
                pass
            return self._now
        while self._heap:
            time, _, call = self._heap[0]
            if time > until:
                break
            heapq.heappop(self._heap)
            if call.cancelled:
                continue
            self._now = time
            self.events_executed += 1
            call.callback(*call.args)
        self._now = max(self._now, until)
        return self._now

    def run_until(self, predicate, check_interval=1000.0, limit=None):
        """Run until ``predicate()`` is true, polling between events.

        The predicate is evaluated after every executed event; ``limit`` (ns)
        bounds the run to guard against livelock in tests.
        """
        while not predicate():
            if limit is not None and self._now > limit:
                raise TimeoutError(
                    "run_until exceeded limit of %r ns" % limit)
            if not self.step():
                raise RuntimeError(
                    "event heap drained before predicate became true")
        return self._now

    @property
    def pending_events(self):
        """Number of scheduled (possibly cancelled) events."""
        return len(self._heap)
