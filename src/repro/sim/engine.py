"""The simulator core: a time-ordered event heap and a virtual clock.

Times are floats in nanoseconds.  Determinism is guaranteed by breaking time
ties with a monotonically increasing sequence number, and by routing all
randomness through the simulator-owned :class:`random.Random` instance.

Cancellation uses *lazy deletion with amortized compaction*: a cancelled
entry stays in the heap (removal from the middle of a binary heap is
O(n)), but the simulator counts dead entries and rebuilds the heap once
they outnumber the live ones.  The rebuild is O(live + dead) and is paid
at most once per O(heap) cancellations, so cancels stay amortized O(1)
while the heap the hot ``heappush``/``heappop`` path sees stays within 2x
of the live event count.  This matters because the MAGIC model arms a
long-deadline timeout for *every* outstanding memory operation and
cancels it a few hundred simulated nanoseconds later — without
compaction the heap is dominated by dead timers.

Compaction preserves event order exactly: entries are totally ordered by
``(time, seq)`` and ``heapify`` over any subset replays them identically,
so runs are bit-identical with compaction on or off (the determinism
directed test in ``tests/test_sim_kernel.py`` asserts this).
"""

import itertools
import random
from heapq import heapify, heappop, heappush


class ScheduledCall:
    """Handle for a scheduled callback; allows cancellation."""

    __slots__ = ("time", "callback", "args", "cancelled", "_sim")

    def __init__(self, sim, time, callback, args):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self):
        """Prevent the callback from running when its time arrives.

        Idempotent, and a no-op on a call that already ran (the engine
        marks consumed entries), so wakers and their cancellers can race
        without skewing the simulator's dead-entry accounting.  The
        compaction trigger is inlined here because MAGIC cancels several
        watchdogs per completed memory op — this is a hot path.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        sim._cancelled = cancelled = sim._cancelled + 1
        if cancelled >= sim._compact_min and cancelled * 2 > len(sim._heap):
            sim._compact()


class Simulator:
    """Event-driven simulator with a nanosecond-resolution virtual clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned RNG.  All stochastic model decisions
        must draw from :attr:`rng` so that runs are reproducible.
    compact_min_cancelled:
        Dead-entry floor below which the heap is never compacted
        (defaults to :attr:`COMPACT_MIN_CANCELLED`; tests override it to
        force or forbid compaction).
    """

    #: default floor on dead entries before a compaction can trigger —
    #: keeps tiny heaps from churning through pointless rebuilds
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, seed=0, compact_min_cancelled=None):
        self._now = 0.0
        self._heap = []
        self._cancelled = 0       # dead entries still sitting in the heap
        self._compact_min = (self.COMPACT_MIN_CANCELLED
                             if compact_min_cancelled is None
                             else compact_min_cancelled)
        self._seq = itertools.count()
        self.rng = random.Random(seed)
        self._processes = []
        #: executed (non-cancelled) events — the telemetry bench divides
        #: this by wall time for its events/sec throughput figure
        self.events_executed = 0
        #: heap rebuilds performed (compaction effectiveness telemetry)
        self.compactions = 0
        #: optional :class:`~repro.telemetry.profiler.SimProfiler`; the
        #: dispatch site below uses the §9 zero-cost guard idiom, so a
        #: detached run pays one identity test per event and is
        #: bit-identical to seed behaviour
        self.profiler = None

    @property
    def now(self):
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` after ``delay`` ns; returns a handle."""
        if delay < 0:
            raise ValueError("cannot schedule in the past (delay=%r)" % delay)
        call = ScheduledCall(self, self._now + delay, callback, args)
        heappush(self._heap, (call.time, next(self._seq), call))
        return call

    def schedule_at(self, time, callback, *args):
        """Run ``callback(*args)`` at absolute time ``time``.

        Accumulated float error can make ``time - now`` come out a hair
        negative for a caller that computed ``time`` from ``now`` by a
        chain of additions; such epsilon-negative delays are clamped to
        zero rather than rejected.  Genuinely past times still raise.
        """
        delay = time - self._now
        if delay < 0.0 and -delay <= 1e-9 + 1e-12 * self._now:
            delay = 0.0
        return self.schedule(delay, callback, *args)

    def spawn(self, generator, name=None):
        """Create a :class:`Process` driving ``generator``; starts at now."""
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def step(self, _until=None):
        """Execute the next pending event.  Returns False if none remain.

        With ``_until`` set, an event strictly later than it is left in
        the heap and False is returned — this is the shared loop body of
        both :meth:`run` modes (dead entries are popped and discarded
        either way).
        """
        heap = self._heap
        while heap:
            head = heap[0]
            call = head[2]
            if call.cancelled:
                heappop(heap)
                self._cancelled -= 1
                continue
            if _until is not None and head[0] > _until:
                return False
            heappop(heap)
            # Mark the entry consumed so a later cancel() (the common
            # case: a process cancelling the very timeout that woke it)
            # is a no-op instead of a dead-entry miscount.
            call.cancelled = True
            self._now = head[0]
            self.events_executed += 1
            prof = self.profiler
            if prof is not None:
                prof.dispatch(call.callback, call.args)
            else:
                call.callback(*call.args)
            return True
        return False

    def run(self, until=None):
        """Run until the heap is empty or the clock passes ``until``."""
        step = self.step
        if until is None:
            while step():
                pass
            return self._now
        while step(until):
            pass
        if until > self._now:
            self._now = until
        return self._now

    def run_until(self, predicate, check_interval=1000.0, limit=None):
        """Run until ``predicate()`` is true, polling between events.

        The predicate is evaluated after every executed event; ``limit`` (ns)
        bounds the run to guard against livelock in tests.
        """
        while not predicate():
            if limit is not None and self._now > limit:
                raise TimeoutError(
                    "run_until exceeded limit of %r ns" % limit)
            if not self.step():
                raise RuntimeError(
                    "event heap drained before predicate became true")
        return self._now

    # -- lazy-deletion bookkeeping -----------------------------------------

    def _compact(self):
        """Rebuild the heap without its dead entries.

        ``heapify`` over ``(time, seq, call)`` tuples reproduces exactly
        the pop order of the unfiltered heap minus the dead entries, so
        compaction is invisible to the simulation.
        """
        self._heap = [entry for entry in self._heap
                      if not entry[2].cancelled]
        heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    @property
    def pending_events(self):
        """Number of live (non-cancelled) scheduled events."""
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self):
        """Raw heap length including not-yet-reclaimed cancelled entries."""
        return len(self._heap)
