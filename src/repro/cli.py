"""Command-line interface: run paper experiments without writing code.

Usage::

    python -m repro.cli validate --fault node_failure --target 3
    python -m repro.cli endtoend --fault infinite_loop --target 5
    python -m repro.cli scale --nodes 2 8 16 32 --topology mesh
    python -m repro.cli campaign --runs 50 --seed 7 \\
        --schedule fault-during-recovery
"""

import argparse
import json
import sys

from repro.analysis.tables import format_series, format_table
from repro.core.config import MachineConfig
from repro.core.experiment import (
    run_recovery_scalability,
    run_validation_experiment,
)
from repro.faults.models import LINK_FAULT_TYPES, FaultSpec, FaultType
from repro.telemetry.scalability import DEFAULT_SIZES


def _fault_from_args(args):
    fault_type = FaultType(args.fault)
    if fault_type in LINK_FAULT_TYPES:
        if args.target2 is None:
            raise SystemExit("%s needs --target and --target2"
                             % fault_type.value)
        return FaultSpec(fault_type, (args.target, args.target2),
                         dwell=getattr(args, "dwell", None),
                         drop_rate=getattr(args, "drop_rate", None))
    return FaultSpec(fault_type, args.target,
                     dwell=getattr(args, "dwell", None))


def cmd_validate(args):
    config = MachineConfig(
        num_nodes=args.nodes_count, mem_per_node=args.mem_kb << 10,
        l2_size=args.l2_kb << 10, seed=args.seed)
    result = run_validation_experiment(
        _fault_from_args(args), config=config, seed=args.seed)
    print(result)
    for problem in result.problems:
        print("  !", problem)
    report = result.recovery_report
    if report is None:
        # A transient fault can heal before any detector fires.
        print("recovery: never triggered (fault healed undetected)")
    else:
        print("recovery: %.2f ms, survivors %s, %d lines marked incoherent"
              % (report.total_duration / 1e6,
                 sorted(report.available_nodes), report.marked_incoherent))
    return 0 if result.passed else 1


def cmd_endtoend(args):
    from repro.hive.endtoend import run_end_to_end_experiment
    from repro.hive.os import HiveConfig
    config = HiveConfig(
        cells=args.nodes_count, seed=args.seed,
        mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10,
        os_incoherent_bug_rate=args.bug_rate)
    result = run_end_to_end_experiment(
        _fault_from_args(args), hive_config=config)
    print(format_table(
        "End-to-end run: %s" % _fault_from_args(args),
        ["metric", "value"],
        [
            ("hardware recovered", result.recovered),
            ("OS recovered", result.os_recovered),
            ("compiles expected to survive", result.compiles_expected),
            ("compiles correct", result.compiles_correct),
            ("run failed", result.failed),
            ("failure reason", result.failure_reason or "-"),
            ("HW recovery [ms]", "%.2f" % (result.hw_recovery_ns / 1e6)),
            ("OS recovery [ms]", "%.2f" % (result.os_recovery_ns / 1e6)),
        ]))
    return 0 if not result.failed else 1


def cmd_scale(args):
    rows = []
    for num_nodes in args.nodes:
        report = run_recovery_scalability(
            num_nodes, topology=args.topology,
            mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10,
            seed=args.seed)
        rows.append((
            num_nodes,
            "%.2f" % (report.phase_duration_from_trigger("P1") / 1e6),
            "%.2f" % (report.phase_duration_from_trigger("P2") / 1e6),
            "%.2f" % (report.phase_duration_from_trigger("P3") / 1e6),
            "%.2f" % (report.total_duration / 1e6),
        ))
        print("  %d nodes done" % num_nodes, file=sys.stderr)
    print(format_series(
        "Hardware recovery scaling (%s)" % args.topology,
        "nodes", ["P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]"],
        rows))
    return 0


def cmd_campaign(args):
    from repro.campaign import (
        SCHEDULE_GENERATORS,
        CampaignRunner,
        FaultSchedule,
        repro_command,
        shrink_schedule,
    )
    from repro.campaign.records import RunStatus
    from repro.campaign.runner import run_schedule_isolated

    fixed_schedule = None
    if args.replay:
        try:
            fixed_schedule = FaultSchedule.from_dict(json.loads(args.replay))
        except (ValueError, KeyError, TypeError) as exc:
            raise SystemExit("bad --replay JSON: %s" % exc)
    elif args.schedule not in SCHEDULE_GENERATORS:
        raise SystemExit(
            "unknown schedule %r (have: %s)"
            % (args.schedule, ", ".join(sorted(SCHEDULE_GENERATORS))))
    out_path = args.out
    if out_path is None:
        label = "replay" if fixed_schedule is not None else args.schedule
        out_path = "campaign_%s_seed%d.jsonl" % (label, args.seed)

    def progress(record):
        line = "  run %3d [%s] seed=%d" % (
            record.run_index, record.status.value, record.seed)
        if record.status is RunStatus.FAIL:
            line += " problems=%d" % len(record.problems)
        elif record.status.is_abort:
            line += " %s" % record.error.strip().splitlines()[-1]
        print(line, file=sys.stderr)

    runner = CampaignRunner(
        kind=args.schedule, runs=args.runs, campaign_seed=args.seed,
        num_nodes=args.nodes_count, topology=args.topology,
        schedule=fixed_schedule, out_path=out_path,
        timeout_s=args.timeout, jobs=args.jobs,
        mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10,
        progress=progress, telemetry_mode=args.telemetry)
    summary = runner.run()
    forensics_path = None
    failing_forensics = [
        {"run_index": record.run_index, "seed": record.seed,
         "schedule": record.schedule, "problems": record.problems,
         "forensics": record.forensics}
        for record in summary.records
        if record.status is RunStatus.FAIL and record.forensics]
    if failing_forensics:
        forensics_path = out_path + ".forensics.json"
        with open(forensics_path, "w", encoding="utf-8") as handle:
            json.dump(failing_forensics, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("forensic report (%d failing run(s)): %s"
              % (len(failing_forensics), forensics_path), file=sys.stderr)
    flight_dumps = sum(1 for record in summary.records if record.flight)
    if flight_dumps:
        print("flight recorder: %d run(s) carry a dumped tail window in "
              "%s (replay via repro.telemetry.flight.events_from_dump)"
              % (flight_dumps, out_path), file=sys.stderr)
    if args.summary_json:
        print(json.dumps({
            "total": summary.total,
            "passed": summary.passed,
            "failed": summary.failed,
            "crashed": summary.crashed,
            "hung": summary.hung,
            "ok": summary.ok,
            "records": out_path,
            "forensics": forensics_path,
        }, sort_keys=True))
    else:
        print(summary)
        print("records: %s" % out_path)

    failures = summary.failures()
    for record in (() if args.summary_json else failures):
        print("  %s run %d (seed %d): %s" % (
            record.status.value, record.run_index, record.seed,
            record.problems[:3] if record.problems
            else record.error.strip().splitlines()[-1:]))
        print("    repro: %s" % repro_command(
            FaultSchedule.from_dict(record.schedule), record.seed))

    if args.shrink and failures:
        record = failures[0]
        schedule = FaultSchedule.from_dict(record.schedule)
        print("shrinking %s run %d ..." % (record.status.value,
                                           record.run_index))

        def still_fails(candidate):
            result = run_schedule_isolated(
                candidate, record.seed, timeout_s=args.timeout,
                mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10)
            return result.status is not RunStatus.PASS

        shrunk = shrink_schedule(schedule, still_fails)
        print(shrunk)
        for step in shrunk.steps:
            print("  -", step)
        print("minimal repro: %s" % repro_command(shrunk.schedule,
                                                  record.seed))

    # Exit status reflects batch health: FAIL verdicts are findings the
    # records carry; CRASHED/HUNG means the campaign machinery itself
    # could not finish a run.
    return 0 if summary.ok else 1


def cmd_fuzz(args):
    from repro.campaign.records import RunStatus
    from repro.campaign.runner import run_schedule_isolated
    from repro.fuzz.engine import FuzzEngine, format_report
    from repro.fuzz.mutate import derive_mutant_seed, rebuild_from_lineage

    if args.replay:
        try:
            schedule = rebuild_from_lineage(
                args.seed, args.replay, num_nodes=args.nodes_count,
                topology=args.topology)
        except ValueError as exc:
            raise SystemExit("bad --replay lineage: %s" % exc)
        seed = derive_mutant_seed(args.seed, args.replay)
        record = run_schedule_isolated(
            schedule, seed, timeout_s=args.timeout,
            mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10)
        if args.summary_json:
            print(json.dumps(record.to_dict(), sort_keys=True))
        else:
            print("replay %s" % args.replay)
            print("  schedule: %s" % schedule)
            print("  machine seed: %d" % seed)
            print("  -> [%s] problems=%d" % (record.status.value,
                                             len(record.problems)))
            for problem in record.problems:
                print("     !", problem)
            if record.error:
                print("     %s" % record.error.strip().splitlines()[-1])
        return 0 if record.status is RunStatus.PASS else 1

    out_dir = args.out or "fuzz_seed%d" % args.seed
    import os
    have_records = os.path.exists(os.path.join(out_dir, "records.jsonl"))
    if have_records and not args.resume:
        raise SystemExit(
            "%s already holds a fuzz session; pass --resume to continue "
            "it (or --out for a fresh directory)" % out_dir)

    def progress(record):
        new = len(record.get("new_features", ()))
        line = "  run %3d [%s] %s" % (record["run_index"],
                                      record["status"], record["op"])
        if new:
            line += " +%d coverage" % new
        if record["status"] not in ("pass",):
            line += " <-- %s" % record["lineage"]
        print(line, file=sys.stderr)

    engine = FuzzEngine(
        campaign_seed=args.seed, num_nodes=args.nodes_count,
        topology=args.topology, runs=args.runs,
        wall_clock_s=args.wall_clock, jobs=args.jobs,
        timeout_s=args.timeout, mem_per_node=args.mem_kb << 10,
        l2_size=args.l2_kb << 10, out_dir=out_dir,
        strategy=args.strategy, max_shrinks=args.max_shrinks,
        progress=progress)
    if args.resume:
        done = engine.resume()
        print("resumed: %d run(s) already recorded, %d coverage "
              "feature(s), corpus %d"
              % (done, len(engine.coverage), len(engine.corpus)),
              file=sys.stderr)
    report = engine.run()
    if args.summary_json:
        payload = dict(report)
        payload["out_dir"] = out_dir
        print(json.dumps(payload, sort_keys=True))
    else:
        print(format_report(report))
        print("artifacts: %s" % out_dir)
    return 0


def cmd_trace(args):
    from repro.telemetry import Telemetry, build_timelines, write_chrome_trace
    from repro.telemetry.timeline import format_timeline

    telemetry = Telemetry(max_events=args.max_events)
    config = MachineConfig(
        num_nodes=args.nodes_count, mem_per_node=args.mem_kb << 10,
        l2_size=args.l2_kb << 10, seed=args.seed)
    result = run_validation_experiment(
        _fault_from_args(args), config=config, seed=args.seed,
        telemetry=telemetry)
    print(result)
    recorder = telemetry.recorder
    events = recorder.events
    timelines = build_timelines(events)
    if args.episode is not None:
        if not 0 <= args.episode < len(timelines):
            raise SystemExit("--episode %d out of range (trace has %d "
                             "episode(s))" % (args.episode, len(timelines)))
        timeline = timelines[args.episode]
        end = (timeline.end_time if timeline.end_time is not None
               else float("inf"))
        events = [event for event in events
                  if timeline.trigger_time <= event.time <= end]
        timelines = [timeline]
    write_chrome_trace(
        events, args.out,
        label="repro %d nodes, %s" % (args.nodes_count, args.fault),
        dropped_events=recorder.dropped_events)
    for timeline in timelines:
        print(format_timeline(timeline))
    print("%d events (%d dropped) -> %s"
          % (len(events), recorder.dropped_events, args.out))
    if recorder.dropped_events:
        print("WARNING: trace truncated — %d event(s) past the "
              "--max-events cap were dropped; timelines and the Chrome "
              "export miss the run's tail" % recorder.dropped_events,
              file=sys.stderr)
    return 0 if result.passed else 1


def cmd_forensics(args):
    from repro.telemetry import Telemetry
    from repro.telemetry.forensics import analyze, format_forensics

    telemetry = Telemetry(max_events=args.max_events)
    config = MachineConfig(
        num_nodes=args.nodes_count, mem_per_node=args.mem_kb << 10,
        l2_size=args.l2_kb << 10, seed=args.seed,
        firewall_enabled=not args.no_firewall)
    result = run_validation_experiment(
        _fault_from_args(args), config=config, seed=args.seed,
        telemetry=telemetry)
    report = analyze(telemetry.recorder)
    if args.format == "json":
        payload = report.to_dict()
        payload["run_passed"] = result.passed
        payload["problems"] = list(result.problems)
        print(json.dumps(payload, sort_keys=True))
    else:
        print(result)
        for problem in result.problems:
            print("  !", problem)
        print(format_forensics(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("forensic report: %s" % args.out, file=sys.stderr)
    return 0 if result.passed and report.verdict != "escape" else 1


def cmd_bench(args):
    from repro.telemetry.scalability import (
        append_bench_history,
        run_scalability_sweep,
        scalability_table,
        sweep_ok,
        write_bench_json,
    )

    if args.micro:
        return _cmd_bench_micro(args)

    sizes = args.sizes
    if sizes is None:
        sizes = [n for n in DEFAULT_SIZES if n <= args.max_nodes]
    if not sizes:
        raise SystemExit("no sweep sizes (check --max-nodes/--sizes)")

    def progress(result):
        recovery = result.get("recovery") or {}
        print("  %3d nodes %-22s total=%s ms wall=%.1fs"
              % (result["nodes"], result["fault"],
                 recovery.get("total_ms", "-"),
                 result["sim"]["wall_s"]), file=sys.stderr)

    out = args.out or "BENCH_scalability.json"
    payload = run_scalability_sweep(
        sizes=sizes, fault_classes=args.faults, topology=args.topology,
        mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10,
        seed=args.seed, progress=progress)
    write_bench_json(payload, out)
    if args.history:
        append_bench_history(payload, args.history)
    print(scalability_table(payload))
    print("wrote %s" % out)
    return 0 if sweep_ok(payload) else 1


def _cmd_bench_micro(args):
    from repro.telemetry.microbench import (
        baseline_from_payload,
        check_against_baseline,
        load_baseline,
        micro_table,
        run_flight_overhead,
        run_micro_suite,
        run_profiled_suite,
    )
    from repro.telemetry.profiler import profile_table
    from repro.telemetry.scalability import (
        append_bench_history,
        write_bench_json,
    )

    def progress(result):
        print("  %-18s %8s events/s (heap<=%d, %d compactions)"
              % (result["name"], result["events_per_sec"],
                 result["max_heap"], result["compactions"]), file=sys.stderr)

    out = args.out or "BENCH_simcore.json"
    payload = run_micro_suite(seed=args.seed, repeats=args.repeats,
                              progress=progress)

    if args.update_baseline:
        write_bench_json(payload, out)
        if args.baseline is None:
            raise SystemExit("--update-baseline needs --baseline PATH")
        baseline = baseline_from_payload(payload)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline: wrote %s (margin %.2f)"
              % (args.baseline, baseline["margin"]), file=sys.stderr)
        return 0

    overhead = None
    if args.flight_overhead:
        print("  measuring flight-recorder overhead (paired 8-node "
              "recovery runs) ...", file=sys.stderr)
        overhead = run_flight_overhead(seed=args.seed,
                                       repeats=args.repeats)
        payload["flight_overhead"] = overhead
    write_bench_json(payload, out)
    if args.history:
        append_bench_history(payload, args.history)

    failures = []
    if args.baseline is not None:
        failures = check_against_baseline(
            payload, load_baseline(args.baseline),
            max_regression=args.max_regression)
    if overhead is not None and overhead["overhead"] is not None \
            and overhead["overhead"] > args.max_flight_overhead:
        failures.append(
            "flight recorder costs %.1f%% of machine throughput "
            "(budget %.0f%%): %d ev/s off -> %d ev/s flight"
            % (100.0 * overhead["overhead"],
               100.0 * args.max_flight_overhead,
               overhead["events_per_sec_off"],
               overhead["events_per_sec_flight"]))

    # The profiled pass runs on its own simulators: timing every dispatch
    # is real overhead, so it must never touch the gated throughput run.
    profiler = None
    if not args.no_profile:
        profiler = run_profiled_suite(seed=args.seed)
        if args.folded_out:
            with open(args.folded_out, "w", encoding="utf-8") as handle:
                handle.write(profiler.folded())

    if args.summary_json:
        print(json.dumps({
            "benchmark": payload["benchmark"],
            "events_per_sec": payload["events_per_sec"],
            "out": out,
            "baseline": args.baseline,
            "max_regression": (args.max_regression
                               if args.baseline is not None else None),
            "flight_overhead": overhead,
            "regressions": failures,
            "ok": not failures,
        }, sort_keys=True))
    else:
        print(micro_table(payload))
        if profiler is not None:
            print(profile_table(profiler))
            if args.folded_out:
                print("folded stacks: %s" % args.folded_out)
        if overhead is not None:
            print("flight overhead: %.2f%% (%d ev/s off -> %d ev/s "
                  "flight, budget %.0f%%)"
                  % (100.0 * (overhead["overhead"] or 0.0),
                     overhead["events_per_sec_off"],
                     overhead["events_per_sec_flight"],
                     100.0 * args.max_flight_overhead))
        print("wrote %s" % out)
    for failure in failures:
        print("PERF REGRESSION: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


def cmd_status(args):
    import time

    from repro.telemetry.status import (
        format_status,
        read_status,
        status_sidecar_path,
    )

    sidecar = status_sidecar_path(args.path)
    while True:
        payload = read_status(sidecar)
        if payload is None:
            raise SystemExit("no status sidecar at %s (is the sweep "
                             "running with an output path?)" % sidecar)
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            print(format_status(payload))
        if args.watch is None or payload.get("finished"):
            return 0
        time.sleep(args.watch)


def cmd_report(args):
    from repro.telemetry.report import aggregate, collect_sources, render_html

    agg = aggregate(collect_sources(args.paths))
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(render_html(agg, title=args.title))
    if args.json:
        payload = dict(agg)
        payload["out"] = args.out
        print(json.dumps(payload, sort_keys=True))
    else:
        print("report: %d run(s) from %d source(s) -> %s"
              % (agg["runs"], len(agg["sources"]), args.out))
        containment = agg["containment_ms"]
        if containment["count"]:
            print("  containment: %d episode(s)  p50=%s p95=%s p99=%s ms"
                  % (containment["count"], containment["p50"],
                     containment["p95"], containment["p99"]))
        avail = agg["availability"]
        if avail.get("runs"):
            mttr = avail.get("mttr_ms") or {}
            print("  availability: mean=%s min=%s  MTTR p50=%s p95=%s ms"
                  % (avail.get("availability_mean"),
                     avail.get("availability_min"),
                     mttr.get("p50"), mttr.get("p95")))
    if not agg["runs"]:
        print("report: no records found in: %s" % " ".join(args.paths),
              file=sys.stderr)
        return 1
    return 0


def _format_github(findings):
    """GitHub Actions workflow-command annotations, one per finding."""
    lines = []
    for finding in findings:
        level = ("error" if finding.severity.value == "error"
                 else "warning")
        message = "[%s] %s" % (finding.rule, finding.message)
        # Workflow commands eat newlines/percent unless URL-escaped.
        message = (message.replace("%", "%25").replace("\r", "%0D")
                   .replace("\n", "%0A"))
        lines.append("::%s file=%s,line=%d::%s"
                     % (level, finding.path, finding.line, message))
    lines.append("%d finding(s)" % len(findings))
    return "\n".join(lines)


def cmd_lint(args):
    from repro.lint import (all_rules, format_json, format_text, run_lint,
                            write_baseline)

    if args.update_baseline:
        if args.baseline is None:
            raise SystemExit("--update-baseline needs --baseline PATH")
        # Regenerate from the UNFILTERED run: writing the post-baseline
        # view would silently drop grandfathered findings that still
        # exist, so each regeneration would shrink the baseline while
        # the findings live on.
        findings, _ = run_lint(paths=args.paths or None, baseline_path=None)
        write_baseline(args.baseline, findings)
        print("baseline: wrote %d finding(s) to %s"
              % (len(findings), args.baseline), file=sys.stderr)
        return 0
    findings, suppressed = run_lint(paths=args.paths or None,
                                    baseline_path=args.baseline)
    if args.rule:
        registry = all_rules()
        unknown = sorted(set(args.rule) - set(registry) - {"syntax-error"})
        if unknown:
            raise SystemExit(
                "unknown rule(s): %s (known: %s)"
                % (", ".join(unknown), ", ".join(sorted(registry))))
        wanted = set(args.rule)
        findings = [f for f in findings if f.rule in wanted]
    if args.format == "json":
        print(format_json(findings, suppressed))
    elif args.format == "github":
        print(_format_github(findings))
    else:
        print(format_text(findings, suppressed))
    return 1 if findings else 0


def cmd_verify_protocol(args):
    import ast
    import os

    from repro.lint.extract import (ExtractionError, extract_protocol,
                                    load_spec, spec_diff, write_spec)
    from repro.verify import verify_spec

    import repro.coherence.protocol as protocol_module

    source_path = protocol_module.__file__
    spec_path = os.path.join(os.path.dirname(source_path),
                             "protocol.spec.json")
    with open(source_path) as handle:
        source = handle.read()
    try:
        model = extract_protocol(ast.parse(source), strict=True)
    except ExtractionError as exc:
        print("verify-protocol: extraction failed: %s" % exc,
              file=sys.stderr)
        return 2

    if args.update_spec:
        write_spec(spec_path, model)
        print("verify-protocol: wrote golden spec to %s" % spec_path,
              file=sys.stderr)
        return 0

    spec = model.to_spec()
    drift = []
    if os.path.exists(spec_path):
        drift = spec_diff(load_spec(spec_path), spec)
    else:
        print("verify-protocol: no golden spec at %s (run with "
              "--update-spec to bless the current AST)" % spec_path,
              file=sys.stderr)

    report = verify_spec(spec, max_states=args.max_states)
    payload = report.to_dict()
    payload["drift"] = drift
    payload["spec"] = spec
    ok = report.ok and not drift

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.format == "json":
        del payload["spec"]
        payload["ok"] = ok
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if ok else 1

    kinds = len({t["kind"] for t in spec["transitions"]})
    print("model: %d message kinds, %d transition paths"
          % (kinds, len(spec["transitions"])))
    for scenario in report.scenarios:
        print("  %-26s %6d states %7d transitions %3d violation(s)"
              % (scenario.name, scenario.states, scenario.transitions,
                 len(scenario.violations)))
    for violation in report.violations():
        print("VIOLATION [%s] in %s: %s"
              % (violation.invariant, violation.scenario,
                 violation.description))
        for step in violation.trace:
            print("    %s" % step)
    if drift:
        print("DRIFT against %s (rerun with --update-spec after "
              "reviewing):" % spec_path)
        for line in drift:
            print("    %s" % line)
    print("verify-protocol: %s (%d states, %d transitions explored)"
          % ("OK" if ok else "FAILED",
             report.total_states, report.total_transitions))
    return 0 if ok else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLASH fault-containment experiments (ISCA 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--mem-kb", type=int, default=64,
                       help="memory per node in KB")
        p.add_argument("--l2-kb", type=int, default=8,
                       help="L2 cache size in KB")

    p_validate = sub.add_parser(
        "validate", help="one Table 5.3-style validation run")
    add_common(p_validate)
    p_validate.add_argument("--nodes-count", type=int, default=8)
    p_validate.add_argument(
        "--fault", default="node_failure",
        choices=[t.value for t in FaultType])
    p_validate.add_argument("--target", type=int, default=7)
    p_validate.add_argument("--target2", type=int, default=None)
    p_validate.add_argument("--dwell", type=float, default=None,
                            help="heal/manifestation delay in ns "
                                 "(transient link, delayed wedge)")
    p_validate.add_argument("--drop-rate", type=float, default=None,
                            help="per-packet drop probability "
                                 "(intermittent link)")
    p_validate.set_defaults(func=cmd_validate)

    p_e2e = sub.add_parser(
        "endtoend", help="one Table 5.4-style Hive parallel-make run")
    add_common(p_e2e)
    p_e2e.add_argument("--nodes-count", type=int, default=8,
                       help="number of Hive cells (1 node each)")
    p_e2e.add_argument(
        "--fault", default="node_failure",
        choices=[t.value for t in FaultType])
    p_e2e.add_argument("--target", type=int, default=3)
    p_e2e.add_argument("--target2", type=int, default=None)
    p_e2e.add_argument("--bug-rate", type=float, default=0.0,
                       help="Hive incoherent-line bug emulation rate")
    p_e2e.set_defaults(func=cmd_endtoend)

    p_scale = sub.add_parser(
        "scale", help="Figure 5.5-style recovery-time sweep")
    add_common(p_scale)
    p_scale.add_argument("--nodes", type=int, nargs="+",
                         default=[2, 8, 16, 32])
    p_scale.add_argument("--topology", default="mesh",
                         choices=["mesh", "hypercube"])
    p_scale.set_defaults(func=cmd_scale)

    p_camp = sub.add_parser(
        "campaign",
        help="multi-fault campaign: crash-isolated runs, JSONL records")
    add_common(p_camp)
    p_camp.add_argument("--runs", type=int, default=50)
    p_camp.add_argument("--schedule", default="random-multi",
                        help="schedule generator name (see "
                             "repro.campaign.SCHEDULE_GENERATORS)")
    p_camp.add_argument("--replay", default=None, metavar="JSON",
                        help="replay one exact schedule (JSON, as printed "
                             "by a failure's repro command)")
    p_camp.add_argument("--nodes-count", type=int, default=8)
    p_camp.add_argument("--topology", default="mesh",
                        choices=["mesh", "hypercube"])
    p_camp.add_argument("--out", default=None,
                        help="JSONL results file (default: "
                             "campaign_<schedule>_seed<N>.jsonl); "
                             "re-running resumes, skipping recorded runs")
    p_camp.add_argument("--timeout", type=float, default=300.0,
                        help="per-run wall-clock watchdog in seconds")
    p_camp.add_argument("--jobs", type=int, default=1,
                        help="concurrent crash-isolated workers")
    p_camp.add_argument("--shrink", action="store_true",
                        help="minimize the first failing schedule and "
                             "print its repro command")
    p_camp.add_argument("--summary-json", action="store_true",
                        help="print one machine-readable JSON summary "
                             "line instead of the human report")
    p_camp.add_argument("--telemetry", default="trace",
                        choices=["trace", "flight"],
                        help="'flight': tracing off, an always-on "
                             "last-N flight ring per run, dumped into "
                             "the record on failures and stray-message "
                             "storms (the cheap mode for large sweeps)")
    p_camp.set_defaults(func=cmd_campaign)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided schedule fuzzing: mutate fault schedules "
             "against a live coverage map, shrink and replay findings")
    add_common(p_fuzz)
    p_fuzz.add_argument("--runs", type=int, default=200,
                        help="run budget (ignored with --wall-clock)")
    p_fuzz.add_argument("--wall-clock", type=float, default=None,
                        metavar="SECONDS",
                        help="budget by wall clock instead of run count")
    p_fuzz.add_argument("--nodes-count", type=int, default=8)
    p_fuzz.add_argument("--topology", default="mesh",
                        choices=["mesh", "hypercube"])
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="persistent crash-isolated batch workers")
    p_fuzz.add_argument("--timeout", type=float, default=120.0,
                        help="per-run wall-clock watchdog in seconds")
    p_fuzz.add_argument("--out", default=None, metavar="DIR",
                        help="session directory (default: fuzz_seed<N>); "
                             "holds records.jsonl, corpus.jsonl, "
                             "failures.jsonl")
    p_fuzz.add_argument("--resume", action="store_true",
                        help="continue the session already in --out")
    p_fuzz.add_argument("--replay", default=None, metavar="LINEAGE",
                        help="rebuild one schedule from its lineage and "
                             "run it once, bit-identically")
    p_fuzz.add_argument("--strategy", default="coverage",
                        choices=["coverage", "random"],
                        help="'random' disables mutation (generator-only "
                             "baseline for coverage comparisons)")
    p_fuzz.add_argument("--max-shrinks", type=int, default=3,
                        help="distinct failures to minimize at session end")
    p_fuzz.add_argument("--summary-json", action="store_true",
                        help="print one machine-readable JSON report line")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_trace = sub.add_parser(
        "trace",
        help="run one validation experiment with event tracing; write a "
             "Chrome trace (chrome://tracing / Perfetto) and print the "
             "per-phase recovery timeline")
    add_common(p_trace)
    p_trace.add_argument("--nodes-count", type=int, default=8)
    p_trace.add_argument(
        "--fault", default="node_failure",
        choices=[t.value for t in FaultType])
    p_trace.add_argument("--target", type=int, default=7)
    p_trace.add_argument("--target2", type=int, default=None)
    p_trace.add_argument("--dwell", type=float, default=None)
    p_trace.add_argument("--drop-rate", type=float, default=None)
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace_event JSON output path")
    p_trace.add_argument("--max-events", type=int, default=None,
                         help="cap on recorded events (memory bound)")
    p_trace.add_argument("--episode", type=int, default=None, metavar="N",
                         help="export only recovery episode N's events "
                              "(0-based; uses the episode timeline window)")
    p_trace.set_defaults(func=cmd_trace)

    p_forensics = sub.add_parser(
        "forensics",
        help="run one traced validation experiment, reconstruct the causal "
             "DAG and print the blast-radius / containment-audit report")
    add_common(p_forensics)
    p_forensics.add_argument("--nodes-count", type=int, default=8)
    p_forensics.add_argument(
        "--fault", default="node_failure",
        choices=[t.value for t in FaultType])
    p_forensics.add_argument("--target", type=int, default=7)
    p_forensics.add_argument("--target2", type=int, default=None)
    p_forensics.add_argument("--dwell", type=float, default=None)
    p_forensics.add_argument("--drop-rate", type=float, default=None)
    p_forensics.add_argument("--max-events", type=int, default=None,
                             help="cap on recorded events (memory bound)")
    p_forensics.add_argument("--no-firewall", action="store_true",
                             help="disable the §3.3 firewall: the audit "
                                  "should then observe the escape the "
                                  "oracle detects")
    p_forensics.add_argument("--format", choices=["text", "json"],
                             default="text")
    p_forensics.add_argument("--out", default=None,
                             help="also write the full JSON report here")
    p_forensics.set_defaults(func=cmd_forensics)

    p_bench = sub.add_parser(
        "bench",
        help="scalability benchmark sweep (nodes x fault classes, writes "
             "BENCH_scalability.json), or --micro for the sim-core "
             "micro-benchmarks (writes BENCH_simcore.json)")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--sizes", type=int, nargs="+", default=None,
                         help="explicit machine sizes (default: %s)"
                              % (DEFAULT_SIZES,))
    p_bench.add_argument("--max-nodes", type=int, default=128,
                         help="largest default size to include")
    p_bench.add_argument("--faults", nargs="+", default=["node_failure"],
                         choices=[t.value for t in FaultType],
                         help="fault classes to sweep")
    p_bench.add_argument("--topology", default="mesh",
                         choices=["mesh", "hypercube"])
    p_bench.add_argument("--mem-kb", type=int, default=64)
    p_bench.add_argument("--l2-kb", type=int, default=8)
    p_bench.add_argument("--out", default=None,
                         help="output JSON (default: BENCH_scalability.json"
                              ", or BENCH_simcore.json with --micro)")
    p_bench.add_argument("--micro", action="store_true",
                         help="run the sim-core micro-benchmark suite "
                              "(timeout-heavy stream, router saturation, "
                              "barrier storm) instead of the sweep")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="micro: runs per bench, best throughput wins")
    p_bench.add_argument("--baseline", default=None,
                         help="micro: committed baseline JSON to gate "
                              "against (benchmarks/baseline_simcore.json "
                              "in CI)")
    p_bench.add_argument("--max-regression", type=float, default=0.30,
                         help="micro: fail when events/sec drops more than "
                              "this fraction below the baseline")
    p_bench.add_argument("--update-baseline", action="store_true",
                         help="micro: rewrite --baseline from this run "
                              "instead of gating")
    p_bench.add_argument("--summary-json", action="store_true",
                         help="micro: one machine-readable summary line")
    p_bench.add_argument("--no-profile", action="store_true",
                         help="micro: skip the separate profiled pass "
                              "(per-handler wall-time attribution)")
    p_bench.add_argument("--folded-out", default=None, metavar="PATH",
                         help="micro: write the profiled pass as folded "
                              "stacks (flamegraph.pl / speedscope input)")
    p_bench.add_argument("--flight-overhead", action="store_true",
                         help="micro: also measure the always-on flight "
                              "recorder's cost on paired 8-node recovery "
                              "runs and gate it")
    p_bench.add_argument("--max-flight-overhead", type=float, default=0.05,
                         help="fail when the flight recorder costs more "
                              "than this fraction of machine throughput")
    p_bench.add_argument("--history", default=None, metavar="PATH",
                         help="append this run's headline figures as one "
                              "JSONL line (BENCH_history.jsonl)")
    p_bench.set_defaults(func=cmd_bench)

    p_status = sub.add_parser(
        "status",
        help="read the live status sidecar of a running (or finished) "
             "campaign/fuzz sweep")
    p_status.add_argument("path",
                          help="campaign records path, fuzz session "
                               "directory, or the status.json itself")
    p_status.add_argument("--json", action="store_true",
                          help="print the raw status document")
    p_status.add_argument("--watch", type=float, default=None,
                          metavar="SECONDS",
                          help="re-read every SECONDS until the sweep "
                               "reports finished")
    p_status.set_defaults(func=cmd_status)

    p_report = sub.add_parser(
        "report",
        help="aggregate campaign records and fuzz sessions into one "
             "self-contained HTML fleet report (outcome mix, containment "
             "and availability/MTTR percentiles, blast radius, coverage "
             "growth)")
    p_report.add_argument("paths", nargs="+",
                          help="campaign JSONL file(s) and/or fuzz "
                               "session directorie(s)")
    p_report.add_argument("--out", default="report.html",
                          help="HTML output path")
    p_report.add_argument("--title",
                          default="Fault-containment fleet report")
    p_report.add_argument("--json", action="store_true",
                          help="also print the aggregate as JSON")
    p_report.set_defaults(func=cmd_report)

    p_lint = sub.add_parser(
        "lint",
        help="AST invariant linter: determinism, protocol exhaustiveness, "
             "telemetry zero-cost guards, sim-process hygiene")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--format", choices=["text", "json", "github"],
                        default="text",
                        help="github emits workflow error annotations")
    p_lint.add_argument("--baseline", default=None,
                        help="JSON baseline of grandfathered findings; "
                             "only findings not in it are reported")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline with the current "
                             "findings instead of reporting them")
    p_lint.add_argument("--rule", action="append", default=None,
                        metavar="RULE",
                        help="only report findings from this rule "
                             "(repeatable)")
    p_lint.set_defaults(func=cmd_lint)

    p_verify = sub.add_parser(
        "verify-protocol",
        help="extract the coherence transition system from the AST and "
             "exhaustively model-check the paper invariants")
    p_verify.add_argument("--format", choices=["text", "json"],
                          default="text")
    p_verify.add_argument("--out", default=None,
                          help="also write the full JSON report (model, "
                               "scenarios, violations) to this path")
    p_verify.add_argument("--update-spec", action="store_true",
                          help="rewrite the committed golden spec from "
                               "the current AST instead of checking "
                               "for drift")
    p_verify.add_argument("--max-states", type=int, default=500000,
                          help="abort a scenario beyond this many "
                               "explored configurations")
    p_verify.set_defaults(func=cmd_verify_protocol)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
