"""Command-line interface: run paper experiments without writing code.

Usage::

    python -m repro.cli validate --fault node_failure --target 3
    python -m repro.cli endtoend --fault infinite_loop --target 5
    python -m repro.cli scale --nodes 2 8 16 32 --topology mesh
"""

import argparse
import sys

from repro.analysis.tables import format_series, format_table
from repro.core.config import MachineConfig
from repro.core.experiment import (
    run_recovery_scalability,
    run_validation_experiment,
)
from repro.faults.models import FaultSpec, FaultType


def _fault_from_args(args):
    fault_type = FaultType(args.fault)
    if fault_type == FaultType.LINK_FAILURE:
        if args.target2 is None:
            raise SystemExit("link_failure needs --target and --target2")
        return FaultSpec.link_failure(args.target, args.target2)
    return FaultSpec(fault_type, args.target)


def cmd_validate(args):
    config = MachineConfig(
        num_nodes=args.nodes_count, mem_per_node=args.mem_kb << 10,
        l2_size=args.l2_kb << 10, seed=args.seed)
    result = run_validation_experiment(
        _fault_from_args(args), config=config, seed=args.seed)
    print(result)
    for problem in result.problems:
        print("  !", problem)
    report = result.recovery_report
    print("recovery: %.2f ms, survivors %s, %d lines marked incoherent"
          % (report.total_duration / 1e6,
             sorted(report.available_nodes), report.marked_incoherent))
    return 0 if result.passed else 1


def cmd_endtoend(args):
    from repro.hive.endtoend import run_end_to_end_experiment
    from repro.hive.os import HiveConfig
    config = HiveConfig(
        cells=args.nodes_count, seed=args.seed,
        mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10,
        os_incoherent_bug_rate=args.bug_rate)
    result = run_end_to_end_experiment(
        _fault_from_args(args), hive_config=config)
    print(format_table(
        "End-to-end run: %s" % _fault_from_args(args),
        ["metric", "value"],
        [
            ("hardware recovered", result.recovered),
            ("OS recovered", result.os_recovered),
            ("compiles expected to survive", result.compiles_expected),
            ("compiles correct", result.compiles_correct),
            ("run failed", result.failed),
            ("failure reason", result.failure_reason or "-"),
            ("HW recovery [ms]", "%.2f" % (result.hw_recovery_ns / 1e6)),
            ("OS recovery [ms]", "%.2f" % (result.os_recovery_ns / 1e6)),
        ]))
    return 0 if not result.failed else 1


def cmd_scale(args):
    rows = []
    for num_nodes in args.nodes:
        report = run_recovery_scalability(
            num_nodes, topology=args.topology,
            mem_per_node=args.mem_kb << 10, l2_size=args.l2_kb << 10,
            seed=args.seed)
        rows.append((
            num_nodes,
            "%.2f" % (report.phase_duration_from_trigger("P1") / 1e6),
            "%.2f" % (report.phase_duration_from_trigger("P2") / 1e6),
            "%.2f" % (report.phase_duration_from_trigger("P3") / 1e6),
            "%.2f" % (report.total_duration / 1e6),
        ))
        print("  %d nodes done" % num_nodes, file=sys.stderr)
    print(format_series(
        "Hardware recovery scaling (%s)" % args.topology,
        "nodes", ["P1 [ms]", "P1,2 [ms]", "P1,2,3 [ms]", "total [ms]"],
        rows))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLASH fault-containment experiments (ISCA 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--mem-kb", type=int, default=64,
                       help="memory per node in KB")
        p.add_argument("--l2-kb", type=int, default=8,
                       help="L2 cache size in KB")

    p_validate = sub.add_parser(
        "validate", help="one Table 5.3-style validation run")
    add_common(p_validate)
    p_validate.add_argument("--nodes-count", type=int, default=8)
    p_validate.add_argument(
        "--fault", default="node_failure",
        choices=[t.value for t in FaultType])
    p_validate.add_argument("--target", type=int, default=7)
    p_validate.add_argument("--target2", type=int, default=None)
    p_validate.set_defaults(func=cmd_validate)

    p_e2e = sub.add_parser(
        "endtoend", help="one Table 5.4-style Hive parallel-make run")
    add_common(p_e2e)
    p_e2e.add_argument("--nodes-count", type=int, default=8,
                       help="number of Hive cells (1 node each)")
    p_e2e.add_argument(
        "--fault", default="node_failure",
        choices=[t.value for t in FaultType])
    p_e2e.add_argument("--target", type=int, default=3)
    p_e2e.add_argument("--target2", type=int, default=None)
    p_e2e.add_argument("--bug-rate", type=float, default=0.0,
                       help="Hive incoherent-line bug emulation rate")
    p_e2e.set_defaults(func=cmd_endtoend)

    p_scale = sub.add_parser(
        "scale", help="Figure 5.5-style recovery-time sweep")
    add_common(p_scale)
    p_scale.add_argument("--nodes", type=int, nargs="+",
                         default=[2, 8, 16, 32])
    p_scale.add_argument("--topology", default="mesh",
                         choices=["mesh", "hypercube"])
    p_scale.set_defaults(func=cmd_scale)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
