"""Fault-injection experiment harnesses (paper §5).

Four experiment families:

* :func:`run_validation_experiment` — the §5.2 methodology behind
  Table 5.3: fill caches with a random sharing pattern, inject a fault,
  recover, then read all of memory and verify every line is either correct
  or properly marked, with no over-marking.
* :func:`run_schedule_experiment` — the same methodology for a whole
  :class:`~repro.campaign.schedule.FaultSchedule` of overlapping faults
  (the campaign engine's workhorse): the oracle accumulates the union of
  allowed-incoherent sets across every injection.
* :func:`run_end_to_end_experiment` — thin wrapper over the Hive harness
  behind Table 5.4 (defined in :mod:`repro.hive.endtoend`).
* :func:`run_recovery_scalability` — phase-resolved recovery timing behind
  Figures 5.5-5.7.
"""

import dataclasses

from repro.common.types import BusErrorKind
from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.faults.models import FaultSpec, FaultType
from repro.workloads.standalone import (
    cache_fill_program,
    memory_check_program,
    partition_lines,
)


@dataclasses.dataclass
class ValidationResult:
    """Outcome of one §5.2 validation run."""

    fault: FaultSpec
    passed: bool
    problems: list
    lines_checked: int
    lines_marked_incoherent: int
    lines_allowed_incoherent: int
    recovery_report: object

    def __str__(self):
        verdict = "PASS" if self.passed else "FAIL"
        return ("[%s] %s checked=%d marked=%d allowed=%d problems=%d"
                % (verdict, self.fault, self.lines_checked,
                   self.lines_marked_incoherent,
                   self.lines_allowed_incoherent, len(self.problems)))


def expected_failed_nodes(machine, fault):
    """Nodes whose state the fault destroys (ground truth for the oracle).

    A wedged (infinite-loop) node is included: the recovery algorithm stops
    it, so its cache contents are lost — a delayed wedge the same, just
    later.  A router failure strands its node, which the split-brain rule
    then shuts down.  Transient/intermittent link faults destroy no node
    state (only in-flight messages, which the snapshot logic covers).
    """
    fault_type = fault.fault_type
    if fault_type in (FaultType.NODE_FAILURE, FaultType.ROUTER_FAILURE,
                      FaultType.INFINITE_LOOP, FaultType.DELAYED_WEDGE):
        return {fault.target}
    return set()


def run_validation_experiment(fault, config=None, fill_fraction=0.6,
                              seed=0, run_limit=30_000_000_000,
                              telemetry=None):
    """One complete §5.2 validation run; returns a ValidationResult.

    ``fault`` may also be a :class:`~repro.campaign.schedule.FaultSchedule`,
    in which case the multi-fault harness runs instead and a
    :class:`ScheduleResult` is returned.
    """
    from repro.campaign.schedule import FaultSchedule
    if isinstance(fault, FaultSchedule):
        return run_schedule_experiment(
            fault, config=config, fill_fraction=fill_fraction, seed=seed,
            run_limit=max(run_limit, 60_000_000_000), telemetry=telemetry)
    config = config or MachineConfig(seed=seed)
    machine = FlashMachine(config, telemetry=telemetry).start()
    oracle = machine.oracle

    # Phase 1: fill caches with a random shared/exclusive pattern.
    fill_lines = max(1, int(config.l2_lines * fill_fraction))
    machine.run_programs(
        [(node_id, cache_fill_program(machine, node_id, fill_lines, seed))
         for node_id in range(config.num_nodes)],
        limit=run_limit)
    machine.quiesce()

    # Phase 2: inject, snapshotting ground truth at the same instant, and
    # again when the first agent reaches P4 (after the drain, when no more
    # protocol transitions can happen).
    failed_nodes = expected_failed_nodes(machine, fault)
    oracle.snapshot_at_injection(machine, failed_nodes)
    machine.recovery_manager.phase4_hook = (
        lambda: oracle.snapshot_at_injection(machine, failed_nodes))
    machine.injector.inject(fault)

    # Phase 3: detection.  One prober issues a read aimed at the failed
    # region; its timeout (or NAK overflow / truncated packet) triggers
    # recovery (§4.2).  A false alarm needs no prober.
    prober_proc = None
    if fault.fault_type != FaultType.FALSE_ALARM:
        prober_proc = _start_prober(machine, fault)
    if fault.fault_type in _MAYBE_UNDETECTED:
        # A transient/intermittent link may heal (or never drop the probe)
        # before any detector fires: wait for the prober, settle whatever
        # recovery it did trigger, and accept a fault-free outcome.
        machine.run_until(lambda: not prober_proc.alive, limit=run_limit)
        while machine.recovery_manager.in_progress:
            machine.run_until_recovered(limit=run_limit)
        machine.quiesce()
        reports = machine.recovery_manager.reports
        report = reports[-1] if reports else None
    else:
        report = machine.run_until_recovered(limit=run_limit)
        if prober_proc is not None:
            # Let the prober finish its (reissued) post-recovery read.
            machine.run_until(lambda: not prober_proc.alive, limit=run_limit)

    # Phase 4: upon completion of recovery, the processors read all of the
    # system's memory and check every line (§5.2).
    available = (set(report.available_nodes) if report is not None
                 else set(machine.alive_nodes()))
    checkers = sorted(available)
    assignment = partition_lines(machine, checkers) if checkers else {}
    observations = {node_id: [] for node_id in checkers}
    procs = {
        node_id: machine.nodes[node_id].processor.run_program(
            memory_check_program(assignment[node_id],
                                 observations[node_id]))
        for node_id in checkers
    }
    manager = machine.recovery_manager

    def finished():
        return all(not proc.alive for proc in procs.values())

    machine.run_until(finished, limit=run_limit)
    if manager.reports:
        report = manager.reports[-1]
        available = set(report.available_nodes)

    # Phase 4: verdict.
    problems = []
    lines_checked = 0
    for node_id in checkers:
        if node_id not in available:
            continue
        for line, kind, detail in observations[node_id]:
            lines_checked += 1
            problems.extend(
                _judge_observation(machine, oracle, available,
                                   line, kind, detail))

    overmarked = oracle.overmarked_lines()
    if overmarked:
        problems.append(
            "over-marked %d lines (e.g. 0x%x)"
            % (len(overmarked), min(overmarked)))
    if lines_checked == 0:
        problems.append("no surviving checker completed: recovery lost the"
                        " whole machine (available=%s)" % sorted(available))

    return ValidationResult(
        fault=fault,
        passed=not problems,
        problems=problems,
        lines_checked=lines_checked,
        lines_marked_incoherent=len(oracle.marked_incoherent),
        lines_allowed_incoherent=len(oracle.may_be_incoherent or ()),
        recovery_report=report,
    )


_MAYBE_UNDETECTED = (FaultType.TRANSIENT_LINK_FAILURE,
                     FaultType.INTERMITTENT_LINK)


def _start_prober(machine, fault):
    """Issue one read aimed into the faulted region to trigger detection."""
    if fault.is_link_fault:
        prober, victim = fault.target
    else:
        victim = fault.target
        prober = 0 if victim != 0 else 1
    if fault.fault_type == FaultType.DELAYED_WEDGE:
        # The wedge manifests only after the dwell time; probing earlier
        # would find a healthy node and detect nothing.
        return machine.nodes[prober].processor.run_program(
            _delayed_probe(machine, victim,
                           (fault.dwell or 2_000_000.0) + 50_000.0),
            name="prober%d" % prober)
    return machine.nodes[prober].processor.run_program(
        _probe_program(machine, victim), name="prober%d" % prober)


def _delayed_probe(machine, victim, delay):
    from repro.node.processor import Compute
    yield Compute(delay)
    yield from _probe_program(machine, victim)


def _judge_observation(machine, oracle, available, line, kind, detail):
    """Check one post-recovery read against the oracle's allowed outcomes."""
    home = machine.address_map.home_of(line)
    home_unavailable = home not in available

    if kind == "bus_error":
        if detail == BusErrorKind.INACCESSIBLE_NODE:
            if home_unavailable:
                return []
            return ["line 0x%x: spurious inaccessible-node error" % line]
        if detail == BusErrorKind.INCOHERENT_LINE:
            if line in (oracle.may_be_incoherent or ()):
                return []
            return ["line 0x%x: marked incoherent but was stable" % line]
        return ["line 0x%x: unexpected bus error %s" % (line, detail)]

    # The read returned data.
    if home_unavailable:
        return ["line 0x%x: read data from an unavailable home" % line]
    expected = oracle.committed_value(line)
    if detail != expected:
        return ["line 0x%x: stale/wrong data %r (expected %r)"
                % (line, detail, expected)]
    return []


# ----------------------------------------------------------------- schedules

@dataclasses.dataclass
class ScheduleResult:
    """Outcome of one multi-fault schedule run (campaign engine)."""

    schedule: object
    passed: bool
    problems: list
    lines_checked: int
    lines_marked_incoherent: int
    lines_allowed_incoherent: int
    reports: list                 # RecoveryReports of every episode
    restarts: int                 # §4.1 restarts summed over episodes
    episodes: int
    skipped_injections: int       # faults that hit already-failed targets
    #: compact machine-readable metrics (telemetry.summarize_run) —
    #: populated only when the run asked for it (collect_metrics=True)
    metrics: dict = None

    def __str__(self):
        verdict = "PASS" if self.passed else "FAIL"
        return ("[%s] %s checked=%d marked=%d allowed=%d episodes=%d "
                "restarts=%d problems=%d"
                % (verdict, self.schedule, self.lines_checked,
                   self.lines_marked_incoherent,
                   self.lines_allowed_incoherent, self.episodes,
                   self.restarts, len(self.problems)))


def run_schedule_experiment(schedule, config=None, fill_fraction=0.6,
                            seed=0, run_limit=60_000_000_000,
                            settle_time=2_000_000.0, telemetry=None,
                            collect_metrics=False, machine=None):
    """One §5.2-style validation run of a whole fault schedule.

    The same methodology as :func:`run_validation_experiment`, generalized
    to overlapping faults: the oracle snapshots at *every* injection with
    the cumulative ground-truth failed set (the union of allowed-incoherent
    sets keeps growing), recovery episodes — including §4.1 restarts — are
    allowed to cascade, and the final full-memory check judges every line
    against the accumulated oracle state.

    ``machine`` may be a not-yet-started :class:`FlashMachine` (e.g. from
    a :class:`~repro.core.machine.MachineFactory`); the caller keeps the
    reference, which is how the fuzz worker extracts coverage afterwards.
    """
    if machine is None:
        config = config or MachineConfig(
            num_nodes=schedule.num_nodes, topology=schedule.topology,
            seed=seed)
        machine = FlashMachine(config, telemetry=telemetry)
    else:
        config = machine.config
    machine.start()
    manager = machine.recovery_manager
    oracle = machine.oracle

    # Phase 1: fill caches with a random shared/exclusive pattern.
    fill_lines = max(1, int(config.l2_lines * fill_fraction))
    machine.run_programs(
        [(node_id, cache_fill_program(machine, node_id, fill_lines, seed))
         for node_id in range(config.num_nodes)],
        limit=run_limit)
    machine.quiesce()

    # Phase 2: arm the whole schedule.  Ground truth is snapshotted at the
    # instant each fault actually fires (and again at each episode's P4
    # entry), always against the union of nodes lost so far.
    def on_inject(spec):
        failed = oracle.note_failed_nodes(
            expected_failed_nodes(machine, spec))
        oracle.snapshot_at_injection(machine, failed)

    machine.injector.pre_inject_hook = on_inject
    manager.phase4_hook = lambda: oracle.snapshot_at_injection(
        machine, oracle.known_failed_nodes)

    start = machine.sim.now
    machine.injector.inject_schedule(schedule, base_time=start)

    # Phase 3: detection.  Every *timed* detectable fault gets a prober
    # (phase-triggered faults strike mid-recovery, which detects them
    # itself via the §4.1 restart rule).
    prober_procs = []
    horizon = 0.0
    for entry in schedule.entries:
        if entry.phase is not None:
            continue
        spec = entry.spec
        delay = entry.time + 10.0
        if spec.fault_type == FaultType.DELAYED_WEDGE:
            delay += (spec.dwell or 2_000_000.0) + 50_000.0
        horizon = max(horizon, delay, entry.time + (spec.dwell or 0.0))
        if spec.fault_type == FaultType.FALSE_ALARM:
            continue
        machine.sim.schedule_at(
            start + delay, _start_schedule_prober, machine, spec,
            prober_procs)

    # Let every timed injection (and delayed manifestation) fire, then
    # settle all recovery activity.  Episodes may cascade — e.g. a healed
    # link re-detected, or a delayed wedge striking after a first recovery
    # completed — so loop until the machine is quiet.
    machine.run(until=start + horizon + 10.0)
    for _ in range(64):
        if manager.in_progress:
            machine.run_until_recovered(limit=run_limit)
        machine.quiesce(settle_time)
        if not manager.in_progress:
            break
    else:
        raise RuntimeError("recovery episodes never settled: %s" % schedule)
    machine.run_until(
        lambda: all(not proc.alive for proc in prober_procs),
        limit=run_limit)

    # Phase 4: the survivors read all of memory and check every line.
    reports = list(manager.reports)
    available = (set(reports[-1].available_nodes) if reports
                 else set(machine.alive_nodes()))
    checkers = sorted(available)
    assignment = partition_lines(machine, checkers) if checkers else {}
    observations = {node_id: [] for node_id in checkers}
    procs = {
        node_id: machine.nodes[node_id].processor.run_program(
            memory_check_program(assignment[node_id],
                                 observations[node_id]))
        for node_id in checkers
    }
    machine.run_until(
        lambda: all(not proc.alive for proc in procs.values()),
        limit=run_limit)
    if manager.reports:
        # The check itself may have tripped further episodes (e.g. reads
        # into a region a late fault took down).
        reports = list(manager.reports)
        available = set(reports[-1].available_nodes)

    problems = []
    lines_checked = 0
    for node_id in checkers:
        if node_id not in available:
            continue
        for line, kind, detail in observations[node_id]:
            lines_checked += 1
            problems.extend(
                _judge_observation(machine, oracle, available,
                                   line, kind, detail))

    overmarked = oracle.overmarked_lines()
    if overmarked:
        problems.append(
            "over-marked %d lines (e.g. 0x%x)"
            % (len(overmarked), min(overmarked)))
    if lines_checked == 0:
        problems.append("no surviving checker completed: recovery lost the"
                        " whole machine (available=%s)" % sorted(available))

    metrics = None
    if collect_metrics:
        from repro.telemetry.metrics import summarize_run
        metrics = summarize_run(machine)

    return ScheduleResult(
        schedule=schedule,
        passed=not problems,
        problems=problems,
        lines_checked=lines_checked,
        lines_marked_incoherent=len(oracle.marked_incoherent),
        lines_allowed_incoherent=len(oracle.may_be_incoherent or ()),
        reports=reports,
        restarts=sum(report.restarts for report in reports),
        episodes=len(reports),
        skipped_injections=len(machine.injector.skipped),
        metrics=metrics,
    )


def _start_schedule_prober(machine, spec, procs, retries=100):
    """Fire a detection probe for one schedule entry (at its own time)."""
    if spec.is_link_fault:
        prober, victim = spec.target
    else:
        victim = spec.target
        prober = None
    candidates = [node_id for node_id in machine.alive_nodes()
                  if node_id != victim
                  and not machine.nodes[node_id].processor.busy]
    if not candidates:
        # Every survivor is still running an earlier probe; probes are
        # short (bounded by the memory-op timeout) so retry shortly.
        if retries > 0:
            machine.sim.schedule(100_000.0, _start_schedule_prober,
                                 machine, spec, procs, retries - 1)
        return
    if prober is None or prober not in candidates:
        prober = candidates[0]
    proc = machine.nodes[prober].processor.run_program(
        _probe_program(machine, victim), name="prober%d" % prober)
    procs.append(proc)


# --------------------------------------------------------------------- table 5.4

def run_end_to_end_experiment(*args, **kwargs):
    """Table 5.4 end-to-end (Hive + parallel make) experiment."""
    from repro.hive.endtoend import run_end_to_end_experiment as run
    return run(*args, **kwargs)


@dataclasses.dataclass
class EndToEndResult:
    """Outcome of one Table 5.4 run (defined here for the public API; the
    Hive harness populates it)."""

    fault: FaultSpec
    recovered: bool
    os_recovered: bool
    compiles_expected: int
    compiles_correct: int
    failed: bool                       # run counts in the "failed" column
    failure_reason: str
    hw_recovery_ns: float
    os_recovery_ns: float


# ------------------------------------------------------------------ figures 5.5-5.7

def run_recovery_scalability(num_nodes, topology="mesh",
                             mem_per_node=1 << 20, l2_size=1 << 20,
                             fault=None, seed=0, fill_fraction=0.25,
                             config_overrides=None,
                             run_limit=200_000_000_000, telemetry=None):
    """Measure phase-resolved hardware recovery time (Figures 5.5/5.6).

    Returns the :class:`~repro.recovery.manager.RecoveryReport` of a
    recovery triggered by ``fault`` (default: failure of the highest-id
    node) on a machine that has a light cached working set.
    """
    overrides = dict(config_overrides or {})
    config = MachineConfig(
        num_nodes=num_nodes, topology=topology,
        mem_per_node=mem_per_node, l2_size=l2_size, seed=seed, **overrides)
    machine = FlashMachine(config, telemetry=telemetry).start()

    fill_lines = max(1, int(config.l2_lines * fill_fraction))
    machine.run_programs(
        [(node_id, cache_fill_program(machine, node_id, fill_lines, seed))
         for node_id in range(num_nodes)],
        limit=run_limit)
    machine.quiesce()

    if fault is None:
        fault = FaultSpec.node_failure(num_nodes - 1)
    machine.injector.inject(fault)
    if fault.fault_type != FaultType.FALSE_ALARM:
        # Detection: one read aimed into the failed region times out.
        victim = fault.target if isinstance(fault.target, int) else fault.target[0]
        prober = 0 if victim != 0 else 1
        machine.nodes[prober].processor.run_program(
            _probe_program(machine, victim))
    report = machine.run_until_recovered(limit=run_limit)
    return report


def _probe_program(machine, victim_node):
    """Detection probe: an *uncached* read into the victim's memory, so a
    warm cache cannot satisfy it locally — it must cross the fabric and
    trip the memory-operation timeout (§4.2)."""
    from repro.common.errors import BusError
    from repro.node.processor import UncachedLoad
    try:
        yield UncachedLoad(machine.line_homed_at(victim_node))
    except BusError:
        pass
