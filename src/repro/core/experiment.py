"""Fault-injection experiment harnesses (paper §5).

Three experiment families:

* :func:`run_validation_experiment` — the §5.2 methodology behind
  Table 5.3: fill caches with a random sharing pattern, inject a fault,
  recover, then read all of memory and verify every line is either correct
  or properly marked, with no over-marking.
* :func:`run_end_to_end_experiment` — thin wrapper over the Hive harness
  behind Table 5.4 (defined in :mod:`repro.hive.endtoend`).
* :func:`run_recovery_scalability` — phase-resolved recovery timing behind
  Figures 5.5-5.7.
"""

import dataclasses

from repro.common.types import BusErrorKind
from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.faults.models import FaultSpec, FaultType
from repro.workloads.standalone import (
    cache_fill_program,
    memory_check_program,
    partition_lines,
)


@dataclasses.dataclass
class ValidationResult:
    """Outcome of one §5.2 validation run."""

    fault: FaultSpec
    passed: bool
    problems: list
    lines_checked: int
    lines_marked_incoherent: int
    lines_allowed_incoherent: int
    recovery_report: object

    def __str__(self):
        verdict = "PASS" if self.passed else "FAIL"
        return ("[%s] %s checked=%d marked=%d allowed=%d problems=%d"
                % (verdict, self.fault, self.lines_checked,
                   self.lines_marked_incoherent,
                   self.lines_allowed_incoherent, len(self.problems)))


def expected_failed_nodes(machine, fault):
    """Nodes whose state the fault destroys (ground truth for the oracle).

    A wedged (infinite-loop) node is included: the recovery algorithm stops
    it, so its cache contents are lost.  A router failure strands its node,
    which the split-brain rule then shuts down.
    """
    fault_type = fault.fault_type
    if fault_type in (FaultType.NODE_FAILURE, FaultType.ROUTER_FAILURE,
                      FaultType.INFINITE_LOOP):
        return {fault.target}
    return set()


def run_validation_experiment(fault, config=None, fill_fraction=0.6,
                              seed=0, run_limit=30_000_000_000):
    """One complete §5.2 validation run; returns a ValidationResult."""
    config = config or MachineConfig(seed=seed)
    machine = FlashMachine(config).start()
    oracle = machine.oracle

    # Phase 1: fill caches with a random shared/exclusive pattern.
    fill_lines = max(1, int(config.l2_lines * fill_fraction))
    machine.run_programs(
        [(node_id, cache_fill_program(machine, node_id, fill_lines, seed))
         for node_id in range(config.num_nodes)],
        limit=run_limit)
    machine.quiesce()

    # Phase 2: inject, snapshotting ground truth at the same instant, and
    # again when the first agent reaches P4 (after the drain, when no more
    # protocol transitions can happen).
    failed_nodes = expected_failed_nodes(machine, fault)
    oracle.snapshot_at_injection(machine, failed_nodes)
    machine.recovery_manager.phase4_hook = (
        lambda: oracle.snapshot_at_injection(machine, failed_nodes))
    machine.injector.inject(fault)

    # Phase 3: detection.  One prober issues a read aimed at the failed
    # region; its timeout (or NAK overflow / truncated packet) triggers
    # recovery (§4.2).  A false alarm needs no prober.
    prober_proc = None
    if fault.fault_type != FaultType.FALSE_ALARM:
        prober_proc = _start_prober(machine, fault)
    report = machine.run_until_recovered(limit=run_limit)
    if prober_proc is not None:
        # Let the prober finish its (reissued) post-recovery read.
        machine.run_until(lambda: not prober_proc.alive, limit=run_limit)

    # Phase 4: upon completion of recovery, the processors read all of the
    # system's memory and check every line (§5.2).
    checkers = sorted(report.available_nodes)
    assignment = partition_lines(machine, checkers) if checkers else {}
    observations = {node_id: [] for node_id in checkers}
    procs = {
        node_id: machine.nodes[node_id].processor.run_program(
            memory_check_program(assignment[node_id],
                                 observations[node_id]))
        for node_id in checkers
    }
    manager = machine.recovery_manager

    def finished():
        return all(not proc.alive for proc in procs.values())

    machine.run_until(finished, limit=run_limit)
    if manager.reports:
        report = manager.reports[-1]

    # Phase 4: verdict.
    problems = []
    available = report.available_nodes
    lines_checked = 0
    for node_id in checkers:
        if node_id not in available:
            continue
        for line, kind, detail in observations[node_id]:
            lines_checked += 1
            problems.extend(
                _judge_observation(machine, oracle, line, kind, detail))

    overmarked = oracle.overmarked_lines()
    if overmarked:
        problems.append(
            "over-marked %d lines (e.g. 0x%x)"
            % (len(overmarked), min(overmarked)))
    if lines_checked == 0:
        problems.append("no surviving checker completed: recovery lost the"
                        " whole machine (available=%s)" % sorted(available))

    return ValidationResult(
        fault=fault,
        passed=not problems,
        problems=problems,
        lines_checked=lines_checked,
        lines_marked_incoherent=len(oracle.marked_incoherent),
        lines_allowed_incoherent=len(oracle.may_be_incoherent or ()),
        recovery_report=report,
    )


def _start_prober(machine, fault):
    """Issue one read aimed into the faulted region to trigger detection."""
    if fault.fault_type == FaultType.LINK_FAILURE:
        prober, victim = fault.target
    else:
        victim = fault.target
        prober = 0 if victim != 0 else 1
    return machine.nodes[prober].processor.run_program(
        _probe_program(machine, victim), name="prober%d" % prober)


def _judge_observation(machine, oracle, line, kind, detail):
    """Check one post-recovery read against the oracle's allowed outcomes."""
    home = machine.address_map.home_of(line)
    home_unavailable = home not in machine.recovery_manager.reports[-1].available_nodes

    if kind == "bus_error":
        if detail == BusErrorKind.INACCESSIBLE_NODE:
            if home_unavailable:
                return []
            return ["line 0x%x: spurious inaccessible-node error" % line]
        if detail == BusErrorKind.INCOHERENT_LINE:
            if line in (oracle.may_be_incoherent or ()):
                return []
            return ["line 0x%x: marked incoherent but was stable" % line]
        return ["line 0x%x: unexpected bus error %s" % (line, detail)]

    # The read returned data.
    if home_unavailable:
        return ["line 0x%x: read data from an unavailable home" % line]
    expected = oracle.committed_value(line)
    if detail != expected:
        return ["line 0x%x: stale/wrong data %r (expected %r)"
                % (line, detail, expected)]
    return []


# --------------------------------------------------------------------- table 5.4

def run_end_to_end_experiment(*args, **kwargs):
    """Table 5.4 end-to-end (Hive + parallel make) experiment."""
    from repro.hive.endtoend import run_end_to_end_experiment as run
    return run(*args, **kwargs)


@dataclasses.dataclass
class EndToEndResult:
    """Outcome of one Table 5.4 run (defined here for the public API; the
    Hive harness populates it)."""

    fault: FaultSpec
    recovered: bool
    os_recovered: bool
    compiles_expected: int
    compiles_correct: int
    failed: bool                       # run counts in the "failed" column
    failure_reason: str
    hw_recovery_ns: float
    os_recovery_ns: float


# ------------------------------------------------------------------ figures 5.5-5.7

def run_recovery_scalability(num_nodes, topology="mesh",
                             mem_per_node=1 << 20, l2_size=1 << 20,
                             fault=None, seed=0, fill_fraction=0.25,
                             config_overrides=None,
                             run_limit=200_000_000_000):
    """Measure phase-resolved hardware recovery time (Figures 5.5/5.6).

    Returns the :class:`~repro.recovery.manager.RecoveryReport` of a
    recovery triggered by ``fault`` (default: failure of the highest-id
    node) on a machine that has a light cached working set.
    """
    overrides = dict(config_overrides or {})
    config = MachineConfig(
        num_nodes=num_nodes, topology=topology,
        mem_per_node=mem_per_node, l2_size=l2_size, seed=seed, **overrides)
    machine = FlashMachine(config).start()

    fill_lines = max(1, int(config.l2_lines * fill_fraction))
    machine.run_programs(
        [(node_id, cache_fill_program(machine, node_id, fill_lines, seed))
         for node_id in range(num_nodes)],
        limit=run_limit)
    machine.quiesce()

    if fault is None:
        fault = FaultSpec.node_failure(num_nodes - 1)
    machine.injector.inject(fault)
    if fault.fault_type != FaultType.FALSE_ALARM:
        # Detection: one read aimed into the failed region times out.
        victim = fault.target if isinstance(fault.target, int) else fault.target[0]
        prober = 0 if victim != 0 else 1
        machine.nodes[prober].processor.run_program(
            _probe_program(machine, victim))
    report = machine.run_until_recovered(limit=run_limit)
    return report


def _probe_program(machine, victim_node):
    """Detection probe: an *uncached* read into the victim's memory, so a
    warm cache cannot satisfy it locally — it must cross the fabric and
    trip the memory-operation timeout (§4.2)."""
    from repro.common.errors import BusError
    from repro.node.processor import UncachedLoad
    try:
        yield UncachedLoad(machine.line_homed_at(victim_node))
    except BusError:
        pass
