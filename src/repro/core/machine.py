"""The assembled machine: network + nodes + recovery manager + injector.

This is the main entry point of the library::

    from repro import FlashMachine, MachineConfig, FaultSpec

    machine = FlashMachine(MachineConfig(num_nodes=8))
    machine.start()
    ... run workloads ...
    machine.injector.inject(FaultSpec.node_failure(3))
    report = machine.run_until_recovered()
"""

from repro.core.config import MachineConfig
from repro.faults.injector import FaultInjector
from repro.faults.oracle import Oracle
from repro.interconnect.network import Network
from repro.interconnect.topology import make_topology
from repro.node.memory import AddressMap
from repro.node.node import Node
from repro.recovery.manager import RecoveryManager
from repro.sim import Simulator


class FlashMachine:
    """A simulated FLASH multiprocessor with fault containment."""

    def __init__(self, config=None, hooks=None, os_recovery_callback=None,
                 telemetry=None, topology=None):
        self.config = config or MachineConfig()
        self.params = self.config.params
        self.sim = Simulator(seed=self.config.seed)
        # A prebuilt topology may be shared across machines (it is pure
        # shape: adjacency and routing ports, no run state) — the batch
        # worker pool reuses one per (kind, num_nodes) to amortize
        # construction over many small campaign runs.
        self.topology = topology if topology is not None else make_topology(
            self.config.topology, self.config.num_nodes)
        self.network = Network(self.sim, self.params, self.topology)
        self.address_map = AddressMap(
            self.config.num_nodes, self.config.mem_per_node,
            line_size=self.params.line_size,
            page_size=self.params.page_size)
        self.oracle = hooks if hooks is not None else Oracle()
        self.nodes = [
            Node(self.sim, self.params, node_id, self.address_map,
                 self.network, l2_capacity_lines=self.config.l2_lines,
                 hooks=self.oracle,
                 firewall_enabled=self.config.firewall_enabled,
                 speculation_rate=self.config.speculation_rate)
            for node_id in range(self.config.num_nodes)
        ]
        self.recovery_manager = RecoveryManager(
            self.sim, self.params, self.topology, self.nodes,
            failure_units=self.config.resolved_failure_units(),
            speculative_pings=self.config.speculative_pings,
            bft_hints=self.config.bft_hints,
            os_recovery_callback=os_recovery_callback,
            p4_skip_flush=self.config.reliable_interconnect_p4)
        self.injector = FaultInjector(self)
        self._started = False
        #: telemetry bundle (or None) — tracing is disabled unless one is
        #: attached; the per-component ``trace`` attributes stay None and
        #: every emission site reduces to a single attribute check.
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind(self.sim)
            self.attach_recorder(telemetry.recorder)
            self.attach_metrics(telemetry.metrics)

    def attach_recorder(self, recorder):
        """Point every instrumented component at ``recorder``."""
        for router in self.network.routers:
            router.trace = recorder
        for interface in self.network.interfaces:
            interface.trace = recorder
        for node in self.nodes:
            node.magic.trace = recorder
        self.recovery_manager.trace = recorder
        self.injector.trace = recorder
        return recorder

    def attach_metrics(self, registry):
        """Point live-instrumented components at a metrics registry.

        Unlike post-run harvesting this feeds counters *during* the run
        (e.g. ``protocol.stray_messages``); components guard every access
        with the same ``is not None`` idiom as tracing.
        """
        for node in self.nodes:
            node.magic.metrics = registry
        return registry

    # ------------------------------------------------------------------ running

    def start(self):
        """Spawn all hardware processes; idempotent."""
        if self._started:
            return self
        self.network.start()
        for node in self.nodes:
            node.start()
        self._started = True
        return self

    def node(self, node_id):
        return self.nodes[node_id]

    def run(self, until=None):
        return self.sim.run(until=until)

    def run_until(self, predicate, limit=None):
        return self.sim.run_until(predicate, limit=limit)

    def run_programs(self, programs, limit=2_000_000_000):
        """Run (node_id, program) pairs until all their processors halt."""
        procs = [self.nodes[node_id].processor.run_program(program)
                 for node_id, program in programs]
        self.sim.run_until(lambda: all(not p.alive for p in procs),
                           limit=limit)
        return procs

    def run_until_recovered(self, limit=10_000_000_000):
        """Run until a recovery episode that is in progress — or about to be
        triggered — completes.  Returns its RecoveryReport.

        Episodes that completed before this call do not count: the caller
        wants the recovery of the fault it just injected.
        """
        manager = self.recovery_manager
        baseline = len(manager.reports)
        if manager.in_progress:
            baseline -= 1   # the current episode is the one awaited

        def done():
            return (not manager.in_progress
                    and len(manager.reports) > baseline)

        self.sim.run_until(done, limit=limit)
        return manager.reports[-1]

    # --------------------------------------------------------------- conveniences

    def alive_nodes(self):
        return [n.node_id for n in self.nodes
                if not n.failed and not n.magic.failed]

    def line_homed_at(self, node_id, index=0):
        """The ``index``-th usable line address homed at ``node_id``."""
        start, end = self.address_map.usable_range(node_id)
        address = start + index * self.params.line_size
        if address >= end:
            raise IndexError("line index %d beyond node %d memory"
                             % (index, node_id))
        return address

    def usable_lines(self, node_id):
        return list(self.address_map.usable_lines(node_id))

    def all_usable_lines(self):
        """Every general-purpose coherent line in the machine (cached —
        the list is large for big memory configurations)."""
        if not hasattr(self, "_all_lines_cache"):
            lines = []
            for node_id in range(self.config.num_nodes):
                lines.extend(self.address_map.usable_lines(node_id))
            self._all_lines_cache = lines
        return self._all_lines_cache

    def quiesce(self, settle_time=1_000_000.0):
        """Let in-flight traffic finish (no new programs are running)."""
        self.sim.run(until=self.sim.now + settle_time)


class MachineFactory:
    """Builds machines, reusing seed-independent artifacts across builds.

    A campaign worker that executes many small schedules back to back
    (the fuzz loop's typical burst) pays ``FlashMachine`` construction per
    run.  The only construction input that is both shareable and
    immutable is the topology — pure shape, no run state — so the factory
    memoizes one per ``(kind, num_nodes)`` and threads it into every
    build whose parameters match.  A directed test proves a reused-vs-
    fresh machine produces bit-identical run records.
    """

    def __init__(self):
        self._topologies = {}

    def build(self, config, telemetry=None, hooks=None):
        key = (config.topology, config.num_nodes)
        topology = self._topologies.get(key)
        if topology is None:
            topology = make_topology(config.topology, config.num_nodes)
            self._topologies[key] = topology
        return FlashMachine(config, hooks=hooks, telemetry=telemetry,
                            topology=topology)
