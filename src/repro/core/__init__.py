"""Top-level public API: machine configuration, assembly and experiments."""

from repro.core.config import MachineConfig
from repro.core.machine import FlashMachine
from repro.core.experiment import (
    EndToEndResult,
    ValidationResult,
    run_end_to_end_experiment,
    run_recovery_scalability,
    run_validation_experiment,
)

__all__ = [
    "EndToEndResult",
    "FlashMachine",
    "MachineConfig",
    "ValidationResult",
    "run_end_to_end_experiment",
    "run_recovery_scalability",
    "run_validation_experiment",
]
