"""Machine configuration.

Defaults follow the paper's experimental setup (Table 5.1): 8 nodes, 200 MHz
processors, 100 MHz MAGIC, 1 MB L2, 1-16 MB of memory per node, 128-byte
lines, a 2D mesh.  Everything is overridable; the figure benches sweep node
count, L2 size and memory size.
"""

import dataclasses

from repro.common.errors import ConfigurationError
from repro.common.params import TimingParams


@dataclasses.dataclass
class MachineConfig:
    """Configuration for one simulated FLASH machine."""

    num_nodes: int = 8
    topology: str = "mesh"              # "mesh" or "hypercube"
    mem_per_node: int = 1 << 20         # bytes of main memory per node
    l2_size: int = 1 << 20              # bytes of second-level cache
    seed: int = 0
    params: TimingParams = dataclasses.field(default_factory=TimingParams)

    #: failure units (Hive cells' hardware); default: one unit per node
    failure_units: tuple = ()

    firewall_enabled: bool = True
    speculation_rate: float = 0.0       # R4000 model: no speculation (§5.1)

    # recovery-algorithm options (ablations, §4.2/§4.3/§6.3)
    speculative_pings: bool = True
    bft_hints: bool = True
    #: model a machine with hardware end-to-end reliable coherence
    #: transport (§6.3, HAL): P4 skips the cache flush and only scans the
    #: directories.  Only meaningful when no coherence message can be lost
    #: before recovery (e.g. quiesced node-failure experiments).
    reliable_interconnect_p4: bool = False

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.l2_size % self.params.line_size:
            raise ConfigurationError("L2 size must be line-aligned")
        if self.mem_per_node % self.params.line_size:
            raise ConfigurationError("memory size must be line-aligned")

    @property
    def l2_lines(self):
        return self.l2_size // self.params.line_size

    def resolved_failure_units(self):
        if not self.failure_units:
            return [frozenset({n}) for n in range(self.num_nodes)]
        units = [frozenset(unit) for unit in self.failure_units]
        covered = set()
        for unit in units:
            if covered & unit:
                raise ConfigurationError("failure units overlap")
            covered |= unit
        missing = set(range(self.num_nodes)) - covered
        units.extend(frozenset({n}) for n in sorted(missing))
        return units
