"""Lint driver: build a project, run every checker, report findings.

``run_lint()`` with no arguments lints the installed ``repro`` package —
what ``repro.cli lint`` and the CI gate do.  Tests build synthetic
:class:`~repro.lint.core.Project` objects (one "bad module" per rule) and
call :func:`lint_project` directly.
"""

import json
import os

from repro.lint.core import (
    Finding,
    Module,
    Project,
    Severity,
    apply_baseline,
    load_baseline,
)
from repro.lint.determinism import DeterminismChecker
from repro.lint.hygiene import HygieneChecker
from repro.lint.protocol import ProtocolChecker
from repro.lint.telemetry import TelemetryCauseChecker, TelemetryGuardChecker
from repro.lint.verifyrules import VerifyChecker


def golden_spec_path():
    """The blessed transition-system spec shipped with the package, or
    None when absent (synthetic fixture projects)."""
    path = os.path.join(package_root(), "coherence", "protocol.spec.json")
    return path if os.path.exists(path) else None


def default_checkers():
    """Checkers safe on any project, including synthetic fixtures."""
    return [DeterminismChecker(), ProtocolChecker(),
            TelemetryGuardChecker(), TelemetryCauseChecker(),
            HygieneChecker()]


def repo_checkers():
    """Checkers for the real package: the defaults plus the extracted
    transition-system rules diffed against the blessed golden spec."""
    return default_checkers() + [
        VerifyChecker(spec_path=golden_spec_path())]


def all_rules(checkers=None):
    """rule name -> severity across the given (or repo) checkers."""
    rules = {}
    for checker in checkers or repo_checkers():
        rules.update(checker.rules)
    return rules


def package_root():
    """Directory of the installed ``repro`` package."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def _display_path(path):
    relative = os.path.relpath(path, os.getcwd())
    return relative.replace(os.sep, "/") if not relative.startswith("..") \
        else path.replace(os.sep, "/")


def iter_source_files(root):
    for directory, subdirs, files in sorted(os.walk(root)):
        subdirs[:] = sorted(d for d in subdirs if d != "__pycache__")
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(directory, name)


def build_project(root=None, paths=None):
    """Parse sources into a Project; syntax errors become findings.

    Returns ``(project, findings)``: the findings are parse failures,
    which no checker can suppress.
    """
    root = root or package_root()
    if paths:
        files = []
        for path in paths:
            if os.path.isdir(path):
                files.extend(iter_source_files(path))
            else:
                files.append(path)
    else:
        files = list(iter_source_files(root))
    modules, findings = [], []
    for path in files:
        rel = os.path.relpath(os.path.abspath(path), root)
        rel = rel.replace(os.sep, "/")
        with open(path) as handle:
            source = handle.read()
        try:
            modules.append(Module(rel, source, path=_display_path(path)))
        except SyntaxError as error:
            findings.append(Finding(
                rule="syntax-error", severity=Severity.ERROR,
                path=_display_path(path), line=error.lineno or 0,
                message="file does not parse: %s" % error.msg))
    return Project(modules), findings


def lint_project(project, checkers=None):
    """Run checkers over a project; suppressions applied, sorted output."""
    checkers = checkers if checkers is not None else default_checkers()
    findings = []
    for module in project.modules:
        for checker in checkers:
            for finding in checker.check_module(module):
                if not module.suppresses(finding):
                    findings.append(finding)
    by_path = {module.path: module for module in project.modules}
    for checker in checkers:
        for finding in checker.check_project(project):
            module = by_path.get(finding.path)
            if module is None or not module.suppresses(finding):
                findings.append(finding)
    return sorted(findings, key=lambda finding: finding.sort_key())


def run_lint(root=None, paths=None, baseline_path=None, checkers=None):
    """Lint the package (or explicit paths) against an optional baseline.

    Returns ``(findings, suppressed_by_baseline)``.
    """
    project, findings = build_project(root=root, paths=paths)
    if checkers is None:
        checkers = repo_checkers()
    findings = findings + lint_project(project, checkers=checkers)
    suppressed = 0
    if baseline_path and os.path.exists(baseline_path):
        baseline = load_baseline(baseline_path)
        kept = apply_baseline(findings, baseline)
        suppressed = len(findings) - len(kept)
        findings = kept
    return findings, suppressed


# ---------------------------------------------------------------- reporting

def format_text(findings, suppressed=0):
    lines = []
    for finding in findings:
        lines.append("%s: %s [%s] %s" % (
            finding.location, finding.severity.value, finding.rule,
            finding.message))
    counts = {}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    summary = ("%d finding(s): %d error(s), %d warning(s)"
               % (len(findings), counts.get(Severity.ERROR, 0),
                  counts.get(Severity.WARNING, 0)))
    if suppressed:
        summary += ", %d grandfathered by baseline" % suppressed
    lines.append(summary)
    return "\n".join(lines)


def format_json(findings, suppressed=0):
    return json.dumps({
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
        "errors": sum(1 for finding in findings
                      if finding.severity is Severity.ERROR),
        "warnings": sum(1 for finding in findings
                        if finding.severity is Severity.WARNING),
        "baseline_suppressed": suppressed,
    }, indent=2, sort_keys=True)
