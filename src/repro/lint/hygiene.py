"""Sim-process hygiene: the event loop stays virtual-time and total.

Three rules keep the simulated hardware honest:

* ``sim-blocking`` — code that runs under the event scheduler (the sim
  kernel and the hardware models it drives) must never block on the real
  world: no ``time.sleep``, file/socket/subprocess I/O, or console input.
  A blocking call freezes virtual time for every node at once — a failure
  mode the paper's hardware cannot exhibit;
* ``handler-cost`` — every protocol/dispatch handler returns its cost in
  nanoseconds (the dispatch loop ``yield``\\ s it back to the scheduler);
  a bare ``return`` or a fall-through ``None`` would make MAGIC occupancy
  silently vanish from the timing model;
* ``broad-except`` — ``except Exception``/``BaseException``/bare
  ``except`` may exist only at crash-isolation boundaries (the campaign
  worker, the Hive process shell), where a simulator bug must become
  *data*.  Anywhere else it converts a model bug into silent control
  flow; catch the specific expected types instead.
"""

import ast

from repro.lint.core import Checker, ImportMap, Severity, function_defs
from repro.lint.protocol import handler_table

#: prefixes whose code executes under the event scheduler
SIM_ZONES = ("sim/", "coherence/", "interconnect/", "recovery/", "node/")

#: modules whose dispatch handlers must return a cost
HANDLER_MODULES = {
    "coherence/protocol.py": ("ProtocolEngine", "_HANDLERS", ("handle",)),
    "node/magic.py": ("Magic", None, ()),
}

_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.popen", "socket.socket",
    "socket.create_connection", "input",
})

_BLOCKING_PREFIXES = ("subprocess.", "requests.", "urllib.", "http.")


class HygieneChecker(Checker):

    rules = {
        "sim-blocking": Severity.ERROR,
        "handler-cost": Severity.ERROR,
        "broad-except": Severity.ERROR,
    }

    sim_zones = SIM_ZONES
    handler_modules = HANDLER_MODULES

    def check_module(self, module):
        yield from self._check_broad_except(module)
        if module.in_zone(self.sim_zones):
            yield from self._check_blocking(module)
        spec = self.handler_modules.get(module.rel)
        if spec is not None:
            yield from self._check_handler_costs(module, *spec)

    # ------------------------------------------------------------- blocking

    def _check_blocking(self, module):
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "open" and isinstance(node.func, ast.Name):
                blocking = True
            else:
                blocking = (resolved in _BLOCKING_CALLS
                            or resolved.startswith(_BLOCKING_PREFIXES))
            if blocking:
                yield self.finding(
                    "sim-blocking", module, node.lineno,
                    "%s() blocks on the real world inside simulator-driven "
                    "code; sim processes may only wait on virtual time "
                    "(yield a delay) or events" % resolved)

    # --------------------------------------------------------- handler cost

    def _check_handler_costs(self, module, class_name, table_name,
                             extra_handlers):
        methods = function_defs(module.tree, class_name)
        names = set(extra_handlers)
        if table_name is not None:
            table = handler_table(module.tree, table_name) or {}
            names |= {method for method, _ in table.values()
                      if method is not None}
        else:
            names |= {name for name in methods
                      if name.startswith("_handle_")}
        for name in sorted(names):
            function = methods.get(name)
            if function is None:
                continue
            yield from self._check_one_handler(module, function)

    def _check_one_handler(self, module, function):
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and (
                    node.value is None
                    or (isinstance(node.value, ast.Constant)
                        and node.value.value is None)):
                yield self.finding(
                    "handler-cost", module, node.lineno,
                    "handler %s returns no cost here; every dispatch "
                    "handler must return its occupancy in ns for the "
                    "dispatch loop to yield" % function.name)
        if not _terminates(function.body):
            yield self.finding(
                "handler-cost", module, function.lineno,
                "handler %s can fall off the end without returning a "
                "cost; end every path in an explicit 'return <cost>'"
                % function.name)

    # --------------------------------------------------------- broad except

    def _check_broad_except(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _exception_names(node.type)
            broad = sorted(set(names) & {"Exception", "BaseException"})
            if node.type is None:
                broad = ["<bare>"]
            if not broad:
                continue
            yield self.finding(
                "broad-except", module, node.lineno,
                "except %s swallows model bugs; outside a crash-isolation "
                "boundary, catch the specific expected exception types "
                "(suppress with a justification at real boundaries)"
                % ", ".join(broad))


def _exception_names(node):
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _terminates(statements):
    """Does every path through this statement list return/raise?"""
    if not statements:
        return False
    last = statements[-1]
    if isinstance(last, (ast.Return, ast.Raise)):
        return True
    if isinstance(last, ast.If):
        return (bool(last.orelse) and _terminates(last.body)
                and _terminates(last.orelse))
    if isinstance(last, ast.Try):
        closed = _terminates(last.body) and all(
            _terminates(handler.body) for handler in last.handlers)
        return closed or _terminates(last.finalbody)
    if isinstance(last, (ast.While,)) and (
            isinstance(last.test, ast.Constant) and last.test.value):
        return True   # while True loops exit only via return/raise
    return False
