"""Per-handler control-flow graphs over the protocol AST.

The extraction pass (:mod:`repro.lint.extract`) needs to reason about
*paths* through a handler — which guards were taken, in what order the
directory entry was mutated, which messages left before the return.  This
module turns one ``ast.FunctionDef`` into a small explicit CFG and
enumerates its acyclic entry→return paths:

* a :class:`Block` is a run of straight-line statements;
* edges carry an optional guard ``(test-expr, polarity)`` — the branch of
  an ``if`` taken when the test evaluates to ``polarity``;
* a ``for`` loop is folded to its fan-out form: the body executes once,
  inside a :class:`FanoutScope`, which is exactly the multiplicity the
  protocol uses (``for sharer in sorted(others): send(...)`` — zero
  iterations is the degenerate empty fan-out, so no skip edge is needed);
* constant tests (which appear after helper inlining substitutes literal
  arguments, e.g. ``is_read=True``) are folded so dead branches never
  produce phantom transitions.

The builder is deliberately restricted to the statement forms the
protocol handlers use.  Anything outside that dialect — ``while``,
``try``, ``with``, ``match`` — raises :class:`UnsupportedFlow`, which the
callers surface as an extraction finding instead of guessing.
"""

import ast


class UnsupportedFlow(Exception):
    """The function uses control flow the protocol dialect excludes."""

    def __init__(self, message, lineno=0):
        super().__init__(message)
        self.lineno = lineno


class PathExplosion(Exception):
    """Path enumeration exceeded the caller's budget."""


class Guard:
    """One branch decision: ``test`` evaluated to ``polarity``."""

    __slots__ = ("test", "polarity", "lineno")

    def __init__(self, test, polarity, lineno):
        self.test = test
        self.polarity = polarity
        self.lineno = lineno

    def __repr__(self):
        return "<Guard %s=%s @%d>" % (
            ast.unparse(self.test), self.polarity, self.lineno)


class FanoutScope:
    """Marks statements executing once per element of a loop iterable."""

    __slots__ = ("target", "iterable", "body", "lineno")

    def __init__(self, target, iterable, body, lineno):
        self.target = target          # loop variable name
        self.iterable = iterable      # iterable expression (AST)
        self.body = body              # list of path steps
        self.lineno = lineno

    def __repr__(self):
        return "<Fanout %s in %s>" % (self.target,
                                      ast.unparse(self.iterable))


class Terminal:
    """Path end: the handler returned ``value`` (an AST expr or None)."""

    __slots__ = ("value", "lineno", "implicit")

    def __init__(self, value, lineno, implicit=False):
        self.value = value
        self.lineno = lineno
        self.implicit = implicit

    def __repr__(self):
        return "<Return %s @%d>" % (
            "None" if self.value is None else ast.unparse(self.value),
            self.lineno)


class Block:
    """A basic block: straight-line statements plus guarded successors."""

    __slots__ = ("index", "statements", "edges", "terminal")

    def __init__(self, index):
        self.index = index
        self.statements = []          # plain ast.stmt nodes
        self.edges = []               # (Guard | None, Block)
        self.terminal = None          # Terminal, when the block returns

    def __repr__(self):
        return "<Block %d stmts=%d edges=%d%s>" % (
            self.index, len(self.statements), len(self.edges),
            " ret" if self.terminal else "")


class ControlFlowGraph:
    """CFG of one function in the protocol dialect."""

    def __init__(self, function):
        self.function = function
        self.blocks = []
        entry = self._new_block()
        self.entry = entry
        tail = self._build(function.body, entry)
        if tail is not None and tail.terminal is None:
            # Falling off the end is an implicit ``return None`` — kept
            # explicit so the hygiene/extraction layers can flag it.
            tail.terminal = Terminal(None, _last_lineno(function),
                                     implicit=True)

    # ------------------------------------------------------------ building

    def _new_block(self):
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _build(self, statements, current):
        """Append ``statements`` after ``current``; return the open tail
        block (or None when every path already returned)."""
        for statement in statements:
            if current is None:
                # Unreachable code after a return: ignore, as CPython does.
                return None
            if isinstance(statement, ast.Return):
                current.terminal = Terminal(statement.value,
                                            statement.lineno)
                current = None
            elif isinstance(statement, ast.If):
                current = self._build_if(statement, current)
            elif isinstance(statement, ast.For):
                current = self._build_for(statement, current)
            elif isinstance(statement, (ast.While, ast.Try, ast.With,
                                        ast.AsyncFor, ast.AsyncWith)):
                raise UnsupportedFlow(
                    "%s is outside the protocol-handler dialect"
                    % type(statement).__name__, statement.lineno)
            elif isinstance(statement, ast.Raise):
                # A raising path never produces a transition.
                current.statements.append(statement)
                current.terminal = Terminal(None, statement.lineno,
                                            implicit=True)
                current = None
            else:
                current.statements.append(statement)
        return current

    def _build_if(self, statement, current):
        folded = fold_constant_test(statement.test)
        if folded is not None:
            branch = statement.body if folded else statement.orelse
            return self._build(branch, current)
        then_block = self._new_block()
        current.edges.append(
            (Guard(statement.test, True, statement.lineno), then_block))
        then_tail = self._build(statement.body, then_block)
        else_block = self._new_block()
        current.edges.append(
            (Guard(statement.test, False, statement.lineno), else_block))
        else_tail = self._build(statement.orelse, else_block)
        if then_tail is None and else_tail is None:
            return None
        join = self._new_block()
        for tail in (then_tail, else_tail):
            if tail is not None:
                tail.edges.append((None, join))
        return join

    def _build_for(self, statement, current):
        if statement.orelse:
            raise UnsupportedFlow("for/else is outside the handler dialect",
                                  statement.lineno)
        if not isinstance(statement.target, ast.Name):
            raise UnsupportedFlow(
                "destructuring loop targets are outside the handler "
                "dialect", statement.lineno)
        for node in ast.walk(statement):
            if isinstance(node, (ast.Break, ast.Continue, ast.Return)):
                raise UnsupportedFlow(
                    "%s inside a fan-out loop is outside the handler "
                    "dialect" % type(node).__name__, node.lineno)
        # The loop body becomes one fan-out step on the current block:
        # the body's own branching is enumerated as sub-paths.
        body_cfg = _SubBody(statement.body)
        current.statements.append(_FanoutMarker(statement, body_cfg))
        return current

    # ---------------------------------------------------------- enumeration

    def paths(self, max_paths=512):
        """All entry→terminal step sequences.

        Each path is a list of ``ast.stmt`` / :class:`Guard` /
        :class:`FanoutScope` steps ending in a :class:`Terminal`.
        """
        results = []
        self._walk(self.entry, [], results, max_paths)
        return results

    def _walk(self, block, prefix, results, max_paths):
        steps = list(prefix)
        for statement in block.statements:
            if isinstance(statement, _FanoutMarker):
                steps.extend(statement.expand(max_paths))
            else:
                steps.append(statement)
        if block.terminal is not None:
            results.append(steps + [block.terminal])
            if len(results) > max_paths:
                raise PathExplosion(
                    "more than %d paths through %s"
                    % (max_paths, self.function.name))
            return
        if not block.edges:
            # A dangling join with no successors: treat as implicit return.
            results.append(steps + [Terminal(None, 0, implicit=True)])
            return
        for guard, successor in block.edges:
            next_prefix = steps + ([guard] if guard is not None else [])
            self._walk(successor, next_prefix, results, max_paths)


class _SubBody:
    """Lazy CFG over a loop body (built per expansion)."""

    def __init__(self, statements):
        self.statements = statements


class _FanoutMarker:
    """Placeholder statement standing for a whole ``for`` loop."""

    def __init__(self, statement, body):
        self.statement = statement
        self.body = body
        self.lineno = statement.lineno

    def expand(self, max_paths):
        # Template-parse the shell so the node carries whatever fields
        # this Python version's FunctionDef requires.
        function = ast.parse("def __fanout__():\n    pass").body[0]
        function.body = list(self.body.statements)
        ast.copy_location(function, self.statement)
        ast.fix_missing_locations(function)
        cfg = ControlFlowGraph(function)
        paths = cfg.paths(max_paths=max_paths)
        if len(paths) != 1:
            raise UnsupportedFlow(
                "branching inside a fan-out loop is outside the handler "
                "dialect", self.statement.lineno)
        body_steps = [step for step in paths[0]
                      if not isinstance(step, Terminal)]
        return [FanoutScope(self.statement.target.id, self.statement.iter,
                            body_steps, self.statement.lineno)]


def _last_lineno(function):
    last = function.body[-1]
    return getattr(last, "end_lineno", None) or last.lineno


def fold_constant_test(test):
    """True/False when ``test`` is statically decidable, else None.

    Handles the constants produced by helper inlining: literal arguments
    (``is_read=True``), their negations, and `X if True else Y` folds.
    """
    if isinstance(test, ast.Constant):
        return bool(test.value)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = fold_constant_test(test.operand)
        return None if inner is None else (not inner)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, right = test.left, test.comparators[0]
        if isinstance(left, ast.Constant) and isinstance(right, ast.Constant):
            op = test.ops[0]
            if isinstance(op, ast.Eq):
                return left.value == right.value
            if isinstance(op, ast.NotEq):
                return left.value != right.value
    return None


def build_cfg(function):
    """Build the CFG of one handler function."""
    return ControlFlowGraph(function)
