"""Protocol exhaustiveness: the static analogue of firmware assertions.

The paper's MAGIC firmware asserts protocol invariants at dispatch time
(§4.2); a message kind with no handler, or a directory state a home
handler forgot, surfaces dynamically as a stray message or a wedged line.
This checker proves both absent at lint time:

* ``protocol-exhaustive`` — every :class:`MessageKind` member must be
  dispatched somewhere: a ``_HANDLERS`` entry in
  ``coherence/protocol.py``, one of MAGIC's kind sets
  (``_REPLY_KINDS`` / ``_RECOVERY_KINDS`` / ``_ROUTER_REPLY_KINDS``), or
  an explicit kind comparison in ``node/magic.py``'s dispatch;
  conversely every ``_HANDLERS`` key and every ``MessageKind.X`` /
  ``DirState.X`` reference must name a real enum member;
* every home-side handler that branches on ``entry.state`` must either
  cover all :class:`DirState` members or end in a fallthrough default
  (code after its last state test — the stray/NAK path).
"""

import ast

from repro.lint.core import Checker, Severity, attr_chain, enum_members

MESSAGES_MODULE = "coherence/messages.py"
PROTOCOL_MODULE = "coherence/protocol.py"
DISPATCH_MODULE = "node/magic.py"
TYPES_MODULE = "common/types.py"


def _attr_members(node, enum_name):
    """All ``<enum_name>.X`` attribute references inside ``node``."""
    found = []
    for child in ast.walk(node):
        if (isinstance(child, ast.Attribute)
                and isinstance(child.value, ast.Name)
                and child.value.id == enum_name):
            found.append((child.attr, child.lineno))
    return found


def handler_table(tree, table_name="_HANDLERS"):
    """The module-level handler dict: kind member -> (method name, line)."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [target.id for target in node.targets
                   if isinstance(target, ast.Name)]
        if table_name in targets and isinstance(node.value, ast.Dict):
            table = {}
            for key, value in zip(node.value.keys, node.value.values):
                chain = attr_chain(key)
                if chain is None or not chain.startswith("MessageKind."):
                    continue
                method = None
                if isinstance(value, ast.Attribute):
                    method = value.attr
                elif isinstance(value, ast.Name):
                    method = value.id
                table[chain.split(".", 1)[1]] = (method, key.lineno)
            return table
    return None


def _dispatched_kinds(tree):
    """Kind members magic's dispatch covers outside the handler table."""
    covered = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            names = [target.id for target in node.targets
                     if isinstance(target, ast.Name)]
            if any(name.endswith("_KINDS") for name in names):
                covered |= {member for member, _ in
                            _attr_members(node.value, "MessageKind")}
        elif isinstance(node, ast.Compare):
            covered |= {member for member, _ in
                        _attr_members(node, "MessageKind")}
    return covered


def _state_handler_coverage(function):
    """(states compared, has fallthrough default) for one handler.

    A handler "branches on the directory state" when an ``if`` test
    compares ``<x>.state`` against ``DirState.X``.  The default exists
    when top-level statements follow the last such ``if`` (the handler
    falls through to stray/NAK handling or the remaining-state path).
    """
    compared = set()
    last_state_if = None
    for index, statement in enumerate(function.body):
        if not isinstance(statement, ast.If):
            continue
        test_states = set()
        touches_state = False
        for node in ast.walk(statement.test):
            if isinstance(node, ast.Compare):
                exprs = [node.left] + list(node.comparators)
                members = set()
                for expr in exprs:
                    chain = attr_chain(expr)
                    if chain is not None and chain.startswith("DirState."):
                        members.add(chain.split(".", 1)[1])
                if members and any(
                        isinstance(expr, ast.Attribute)
                        and expr.attr == "state" for expr in exprs):
                    touches_state = True
                    test_states |= members
        if touches_state:
            compared |= test_states
            last_state_if = index
    if last_state_if is None:
        return None
    has_default = (last_state_if < len(function.body) - 1
                   or bool(function.body[last_state_if].orelse))
    return compared, has_default


class ProtocolChecker(Checker):

    rules = {"protocol-exhaustive": Severity.ERROR}

    messages_module = MESSAGES_MODULE
    protocol_module = PROTOCOL_MODULE
    dispatch_module = DISPATCH_MODULE
    types_module = TYPES_MODULE

    def check_project(self, project):
        messages = project.module(self.messages_module)
        protocol = project.module(self.protocol_module)
        if messages is None or protocol is None:
            return
        kinds = enum_members(messages.tree, "MessageKind")
        if kinds is None:
            yield self.finding(
                "protocol-exhaustive", messages, 1,
                "MessageKind enum not found; the handler table cannot be "
                "cross-checked")
            return
        table = handler_table(protocol.tree)
        if table is None:
            yield self.finding(
                "protocol-exhaustive", protocol, 1,
                "_HANDLERS table not found; message dispatch cannot be "
                "cross-checked")
            return

        # Unknown members referenced anywhere in the protocol/dispatch.
        modules = [protocol]
        dispatch = project.module(self.dispatch_module)
        if dispatch is not None:
            modules.append(dispatch)
        for module in modules:
            for member, line in _attr_members(module.tree, "MessageKind"):
                if member not in kinds:
                    yield self.finding(
                        "protocol-exhaustive", module, line,
                        "MessageKind.%s is not a member of the MessageKind "
                        "enum" % member)

        # Every enum member needs a dispatch path.
        covered = set(table)
        if dispatch is not None:
            covered |= _dispatched_kinds(dispatch.tree)
        for member in sorted(set(kinds) - covered):
            yield self.finding(
                "protocol-exhaustive", messages, kinds[member],
                "MessageKind.%s has no _HANDLERS entry and no dispatch "
                "path in %s — it would count as a stray message at "
                "runtime" % (member, self.dispatch_module))

        yield from self._check_dir_states(project, protocol, table)

    def _check_dir_states(self, project, protocol, table):
        types = project.module(self.types_module)
        states = (enum_members(types.tree, "DirState")
                  if types is not None else None)
        if states is None:
            return
        for member, line in _attr_members(protocol.tree, "DirState"):
            if member not in states:
                yield self.finding(
                    "protocol-exhaustive", protocol, line,
                    "DirState.%s is not a member of the DirState enum"
                    % member)
        handler_names = {method for method, _ in table.values()
                         if method is not None}
        for node in ast.walk(protocol.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.FunctionDef):
                    continue
                coverage = _state_handler_coverage(statement)
                if coverage is None:
                    continue
                compared, has_default = coverage
                if has_default:
                    continue
                missing = sorted(set(states) - compared)
                if not missing:
                    continue
                where = ("handler %s" % statement.name
                         if statement.name in handler_names
                         else statement.name)
                yield self.finding(
                    "protocol-exhaustive", protocol, statement.lineno,
                    "%s branches on entry.state but covers only {%s} with "
                    "no fallthrough default; missing DirState members: %s"
                    % (where, ", ".join(sorted(compared)),
                       ", ".join(missing)))
