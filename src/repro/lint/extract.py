"""Lift the coherence transition system out of the protocol AST.

:mod:`repro.coherence.protocol` *is* a transition table — each handler
is a pile of ``if entry.state == DirState.X`` branches ending in entry
writes, ``lock``/``unlock`` calls and ``send_message`` fan-outs — but it
is written as Python, so nothing can enumerate it.  This pass recovers
the explicit table:

    (MessageKind, guards...) -> (binds, writes, lock/unlock, sends,
                                 occupancy class)

purely from the AST, with no import of the protocol module:

1. helper calls (``_reply_data``, ``_grant_exclusive``,
   ``_complete_pending_from_memory``, ``_home_uncached``, ...) are
   inlined with their arguments substituted, so each handler becomes one
   self-contained function.  Argument expressions that read mutable
   directory-entry state are hoisted into temporaries first — Python
   evaluates call arguments *before* the body runs, and the inlined body
   may mutate the entry (``_grant_exclusive`` unlocks before it writes
   ``owner``), so textual substitution alone would change semantics;
2. the CFG layer (:mod:`repro.lint.cfg`) enumerates every acyclic path;
3. a symbolic interpreter walks each path, canonicalising expressions
   into a small closed vocabulary — guard atoms (``["state", "SHARED"]``,
   ``["firewall_allows"]``), entry writes, lock/unlock, sends, fan-outs
   and binds — that the model explorer (:mod:`repro.verify.model`) can
   execute against abstract configurations.

Reads of mutable entry fields into locals become explicit ``bind`` steps
(slots named ``$x``), preserving evaluation order: e.g.
``_home_sharing_wb`` reads ``entry.pending_requester`` *before*
``unlock()`` clears it, and the extracted path keeps that ordering.

Two modes: ``strict=True`` (the ``verify-protocol`` gate) raises
:class:`ExtractionError` on anything it cannot canonicalise — an opaque
guard means the model would silently under-approximate; ``strict=False``
(lint rules running over arbitrary fixture projects) records issues and
keeps the transitions it could lift.
"""

import ast
import copy
import json

from repro.lint.cfg import (FanoutScope, Guard, PathExplosion, Terminal,
                            UnsupportedFlow, build_cfg, fold_constant_test)
from repro.lint.core import function_defs
from repro.lint.protocol import handler_table

#: DirectoryEntry fields the handlers mutate; reading one into a local
#: must become a bind step, and writing one is a ``write`` step.
MUTABLE_ENTRY_FIELDS = frozenset({
    "state", "sharers", "owner", "memory_valid",
    "pending_kind", "pending_requester", "awaiting_acks", "awaiting_put",
})

#: packet payload key -> canonical model name ("value" is renamed so a
#: payload-carried value cannot be confused with a memory read).
PAYLOAD_FIELDS = {
    "line": "line", "requester": "requester", "value": "value_in",
    "home": "home", "address": "address", "page": "page",
    "uc_key": "uc_key", "scrub_key": "scrub_key",
}

ENGINE_CLASS = "ProtocolEngine"

_ENUM_BASES = ("MessageKind", "DirState", "BusErrorKind", "CacheState")

_INLINE_DEPTH_LIMIT = 8


class ExtractionError(Exception):
    """Strict extraction failed; ``issues`` lists every problem."""

    def __init__(self, issues):
        self.issues = list(issues)
        super().__init__("%d extraction issue(s): %s" % (
            len(self.issues),
            "; ".join(str(issue) for issue in self.issues[:5])))


class Issue:
    """One construct the extractor could not canonicalise."""

    __slots__ = ("handler", "lineno", "message")

    def __init__(self, handler, lineno, message):
        self.handler = handler
        self.lineno = lineno
        self.message = message

    def __str__(self):
        return "%s:%d: %s" % (self.handler, self.lineno, self.message)


class Transition:
    """One guarded path through one handler.

    ``items`` is the ordered list of path items, each a plain JSON-able
    list whose first element is a tag:

    ``["guard", atom, polarity]``
        Branch decision; ``atom`` is a recursive guard tree (see the
        module docstring of :mod:`repro.verify.model`).
    ``["bind", "$slot", source]``
        Capture mutable entry state (``entry.owner``,
        ``entry.pending_requester``, ``entry.pending_kind``,
        ``other_sharers``) into a path-local slot at this point.
    ``["write", field, value]`` / ``["sharers_add", value]`` /
    ``["acks_dec"]``
        Directory-entry mutation.
    ``["lock", kind, requester]`` / ``["unlock", state]``
        Entry lock bookkeeping.
    ``["send", dst, kind, payload, delay]``
        One outgoing message.
    ``["fanout", var, iterable, [items...]]``
        Items executed once per element of ``iterable``.
    ``["mem_write", value]`` · ``["cache", op]`` · ``["io", op]`` ·
    ``["scrub"]`` · ``["assert", atom]`` · ``["stray", reason]`` ·
    ``["stat", name]`` · ``["hook", name]``
        Side effects the model tracks or merely records.
    """

    __slots__ = ("kind", "handler", "index", "items", "occupancy",
                 "lineno")

    def __init__(self, kind, handler, index, items, occupancy, lineno=0):
        self.kind = kind
        self.handler = handler
        self.index = index
        self.items = items
        self.occupancy = occupancy
        self.lineno = lineno

    def guards(self):
        return [item for item in self.items if item[0] == "guard"]

    def to_dict(self):
        return {"kind": self.kind, "handler": self.handler,
                "path": self.index, "items": self.items,
                "occupancy": self.occupancy}

    @classmethod
    def from_dict(cls, data):
        return cls(kind=data["kind"], handler=data["handler"],
                   index=data["path"], items=data["items"],
                   occupancy=data["occupancy"])

    def __repr__(self):
        return "<Transition %s/%d %s>" % (self.kind, self.index,
                                          self.handler)


class ProtocolModel:
    """The extracted transition system for one protocol module."""

    def __init__(self, transitions, handlers, issues=()):
        self.transitions = list(transitions)
        self.handlers = dict(handlers)
        self.issues = list(issues)

    def by_kind(self):
        grouped = {}
        for transition in self.transitions:
            grouped.setdefault(transition.kind, []).append(transition)
        return grouped

    def to_spec(self):
        return {
            "version": 1,
            "handlers": {kind: self.handlers[kind]
                         for kind in sorted(self.handlers)},
            "transitions": [transition.to_dict()
                            for transition in self.transitions],
        }

    @classmethod
    def from_spec(cls, data):
        transitions = [Transition.from_dict(entry)
                       for entry in data.get("transitions", ())]
        return cls(transitions, data.get("handlers", {}))


def extract_protocol(tree, strict=True, max_paths=256):
    """Extract the transition table from a parsed protocol module.

    Returns a :class:`ProtocolModel`; in strict mode raises
    :class:`ExtractionError` when any path resisted canonicalisation.
    """
    extractor = _Extractor(tree, max_paths=max_paths)
    model = extractor.run()
    if strict and model.issues:
        raise ExtractionError(model.issues)
    return model


def extract_from_source(source, strict=True):
    return extract_protocol(ast.parse(source), strict=strict)


# ----------------------------------------------------------------- spec I/O

def load_spec(path):
    with open(path) as handle:
        return json.load(handle)


def write_spec(path, model):
    with open(path, "w") as handle:
        json.dump(model.to_spec(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def spec_diff(old, new):
    """Human-readable drift between two spec dicts (empty = identical)."""
    lines = []
    old_handlers = old.get("handlers", {})
    new_handlers = new.get("handlers", {})
    for kind in sorted(set(old_handlers) | set(new_handlers)):
        before = old_handlers.get(kind)
        after = new_handlers.get(kind)
        if before != after:
            lines.append("handler for %s: %s -> %s"
                         % (kind, before, after))

    def _grouped(spec):
        grouped = {}
        for entry in spec.get("transitions", ()):
            grouped.setdefault(entry["kind"], []).append(entry)
        return grouped

    old_kinds = _grouped(old)
    new_kinds = _grouped(new)
    for kind in sorted(set(old_kinds) | set(new_kinds)):
        before = old_kinds.get(kind, [])
        after = new_kinds.get(kind, [])
        if len(before) != len(after):
            lines.append("%s: %d path(s) -> %d path(s)"
                         % (kind, len(before), len(after)))
        for index in range(min(len(before), len(after))):
            b, a = before[index], after[index]
            if (b["items"], b["occupancy"]) != (a["items"], a["occupancy"]):
                lines.append("%s path %d changed" % (kind, index))
    return lines


def _simplify(atom):
    """Collapse double negations produced by ``is not None`` rewrites."""
    if atom[0] == "not" and atom[1][0] == "not":
        return _simplify(atom[1][1])
    return atom


# ------------------------------------------------------------------ inlining

class _Substitute(ast.NodeTransformer):
    """Replace parameter names with (copies of) caller argument ASTs."""

    def __init__(self, mapping):
        self.mapping = mapping

    def visit_Name(self, node):
        if isinstance(node.ctx, ast.Load) and node.id in self.mapping:
            return copy.deepcopy(self.mapping[node.id])
        return node


class _FoldIfExp(ast.NodeTransformer):
    """Fold ``A if <constant> else B`` after literal substitution."""

    def visit_IfExp(self, node):
        self.generic_visit(node)
        folded = fold_constant_test(node.test)
        if folded is None:
            return node
        return node.body if folded else node.orelse


class _Inliner:
    """Expand ``self._helper(...)`` calls into the caller's body."""

    def __init__(self, functions, issues):
        self.functions = functions
        self.issues = issues
        self._temp = 0

    def inline(self, function, handler, depth=0):
        if depth > _INLINE_DEPTH_LIMIT:
            raise UnsupportedFlow("helper inlining exceeded depth %d"
                                  % _INLINE_DEPTH_LIMIT, function.lineno)
        return self._inline_body(function.body, handler, depth)

    def _inline_body(self, body, handler, depth):
        result = []
        for statement in body:
            call = self._helper_call(statement)
            if call is not None:
                result.extend(self._expand(statement, call, handler,
                                           depth))
            elif isinstance(statement, ast.If):
                new = copy.copy(statement)
                new.body = self._inline_body(statement.body, handler,
                                             depth)
                new.orelse = self._inline_body(statement.orelse, handler,
                                               depth)
                result.append(new)
            elif isinstance(statement, ast.For):
                new = copy.copy(statement)
                new.body = self._inline_body(statement.body, handler,
                                             depth)
                result.append(new)
            else:
                result.append(statement)
        return result

    def _helper_call(self, statement):
        """The inlinable ``self._x(...)`` call of a statement, if any."""
        if isinstance(statement, (ast.Expr, ast.Return)):
            value = statement.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id == "self"
                    and value.func.attr in self.functions
                    and value.func.attr != "_note_stray"
                    and not value.func.attr.startswith("_note_")):
                return value
        return None

    def _expand(self, statement, call, handler, depth):
        name = call.func.attr
        helper = self.functions[name]
        mapping, hoisted = self._bind_arguments(helper, call, handler)
        substituted = []
        transformer = _Substitute(mapping)
        folder = _FoldIfExp()
        for inner in helper.body:
            inner = transformer.visit(copy.deepcopy(inner))
            inner = folder.visit(inner)
            ast.fix_missing_locations(inner)
            substituted.append(inner)
        if isinstance(statement, ast.Expr):
            for inner in substituted:
                if isinstance(inner, ast.Return):
                    self.issues.append(Issue(
                        handler, statement.lineno,
                        "helper %s returns a value but its result is "
                        "discarded; cannot inline" % name))
                    return [statement]
        expanded = self._inline_body(substituted, handler, depth + 1)
        return hoisted + expanded

    def _bind_arguments(self, helper, call, handler):
        """Parameter -> argument AST map, hoisting impure arguments.

        Returns ``(mapping, hoisted_assignments)``.  Impure arguments
        (calls, mutable-entry reads) are evaluated at the call site in
        source order via temporaries, matching Python's call-by-value
        timing.
        """
        params = [arg.arg for arg in helper.args.args if arg.arg != "self"]
        defaults = dict(zip(params[len(params) - len(helper.args.defaults):],
                            helper.args.defaults))
        supplied = dict(zip(params, call.args))
        for keyword in call.keywords:
            supplied[keyword.arg] = keyword.value
        mapping = {}
        hoisted = []
        for param in params:
            arg = supplied.get(param, defaults.get(param))
            if arg is None:
                self.issues.append(Issue(
                    handler, call.lineno,
                    "cannot resolve argument %r of inlined helper" % param))
                arg = ast.Constant(value=None)
            if self._needs_hoist(arg):
                self._temp += 1
                temp = "__arg_%s_%d" % (param, self._temp)
                assign = ast.Assign(
                    targets=[ast.Name(id=temp, ctx=ast.Store())],
                    value=copy.deepcopy(arg))
                ast.copy_location(assign, call)
                ast.fix_missing_locations(assign)
                hoisted.append(assign)
                arg = ast.Name(id=temp, ctx=ast.Load())
            mapping[param] = arg
        return mapping, hoisted

    @staticmethod
    def _needs_hoist(arg):
        if isinstance(arg, ast.Call):
            return True
        if isinstance(arg, ast.Attribute):
            return arg.attr in MUTABLE_ENTRY_FIELDS
        return False


# --------------------------------------------------------------- extraction

class _Opaque(Exception):
    """An expression outside the canonical vocabulary."""

    def __init__(self, node, why):
        self.node = node
        self.why = why
        try:
            text = ast.unparse(node)
        except (ValueError, AttributeError, RecursionError):
            text = repr(node)
        super().__init__("%s (%s)" % (why, text))


class _Extractor:

    def __init__(self, tree, max_paths=256):
        self.tree = tree
        self.max_paths = max_paths
        self.issues = []

    def run(self):
        functions = function_defs(self.tree, ENGINE_CLASS)
        table = handler_table(self.tree)
        if not functions or table is None:
            self.issues.append(Issue(
                "<module>", 1,
                "no %s class or _HANDLERS table found" % ENGINE_CLASS))
            return ProtocolModel([], {}, self.issues)
        transitions = []
        handlers = {}
        for kind in sorted(table):
            method, lineno = table[kind]
            function = functions.get(method)
            if function is None:
                self.issues.append(Issue(
                    kind, lineno,
                    "_HANDLERS maps %s to missing method %s"
                    % (kind, method)))
                continue
            handlers[kind] = method
            transitions.extend(
                self._extract_handler(kind, method, function, functions))
        return ProtocolModel(transitions, handlers, self.issues)

    def _extract_handler(self, kind, method, function, functions):
        inliner = _Inliner(functions, self.issues)
        try:
            body = inliner.inline(function, method)
        except UnsupportedFlow as exc:
            self.issues.append(Issue(method, exc.lineno, str(exc)))
            return []
        flat = copy.copy(function)
        flat.body = body
        try:
            cfg = build_cfg(flat)
            paths = cfg.paths(max_paths=self.max_paths)
        except (UnsupportedFlow, PathExplosion) as exc:
            self.issues.append(Issue(
                method, getattr(exc, "lineno", function.lineno), str(exc)))
            return []
        transitions = []
        for index, path in enumerate(paths):
            interp = _PathInterpreter(function, method, self.issues)
            items, occupancy = interp.run(path)
            transitions.append(Transition(
                kind=kind, handler=method, index=index, items=items,
                occupancy=occupancy, lineno=function.lineno))
        return transitions


class _PathInterpreter:
    """Symbolically execute one enumerated path into canonical items."""

    def __init__(self, function, handler, issues):
        self.handler = handler
        self.issues = issues
        self.items = []
        self.occupancy = None
        # Static environment: local name -> canonical string or an
        # ``@``-prefixed structural marker (engine/magic/payload/...).
        self.env = {"self": "@engine"}
        for name in _ENUM_BASES:
            self.env[name] = "@enum:" + name
        self.env["page_of"] = "@fn:page_of"
        params = [arg.arg for arg in function.args.args
                  if arg.arg != "self"]
        if params:
            self.env[params[0]] = "@packet"
        # Numeric environment for the occupancy accumulator locals.
        self.numeric = {}
        self._slots = set()

    # ------------------------------------------------------------- driving

    def run(self, path):
        for step in path:
            try:
                self._step(step)
            except _Opaque as exc:
                lineno = getattr(exc.node, "lineno", 0)
                self.issues.append(Issue(self.handler, lineno, str(exc)))
                self.items.append(["opaque", str(exc)])
        return self.items, self.occupancy or "0"

    def _step(self, step):
        if isinstance(step, Guard):
            self.items.append(
                ["guard", self._atom(step.test), bool(step.polarity)])
        elif isinstance(step, FanoutScope):
            self._fanout(step)
        elif isinstance(step, Terminal):
            self._terminal(step)
        elif isinstance(step, ast.Assign):
            self._assign(step)
        elif isinstance(step, ast.AugAssign):
            self._augassign(step)
        elif isinstance(step, ast.Expr):
            self._expr(step.value)
        elif isinstance(step, (ast.Pass, ast.Raise)):
            pass
        else:
            raise _Opaque(step, "statement outside the handler dialect")

    def _fanout(self, scope):
        iterable = self._canon(scope.iterable)
        saved_items = self.items
        self.items = []
        self.env[scope.target] = scope.target
        for inner in scope.body:
            self._step(inner)
        body_items = self.items
        self.items = saved_items
        del self.env[scope.target]
        self.items.append(["fanout", scope.target, iterable, body_items])

    def _terminal(self, terminal):
        value = terminal.value
        if value is None:
            if not terminal.implicit:
                self.occupancy = "0"
            else:
                raise _Opaque(
                    ast.Constant(value=None),
                    "handler path falls off the end without a return")
            return
        self.occupancy = self._occupancy(value)

    def _occupancy(self, node):
        canonical = self._canon(node)
        if canonical == "0":
            return "0"
        parts = canonical.split("+")
        if all(part.startswith("params.") for part in parts):
            return "+".join(part[len("params."):] for part in parts)
        raise _Opaque(node, "return value is not an occupancy class")

    # ---------------------------------------------------------- statements

    def _assign(self, statement):
        if len(statement.targets) != 1:
            raise _Opaque(statement, "multiple assignment targets")
        target = statement.targets[0]
        if isinstance(target, ast.Name):
            self._assign_name(target.id, statement.value)
        elif isinstance(target, ast.Attribute):
            self._assign_attribute(target, statement.value)
        else:
            raise _Opaque(statement, "unsupported assignment target")

    def _assign_name(self, name, value):
        # Structural aliases first.
        marker = self._structural(value)
        if marker is not None:
            self.env[name] = marker
            return
        # Occupancy accumulators: params.* reads and numeric literals.
        canonical, impure = self._rhs(name, value)
        if canonical.startswith("params."):
            self.numeric[name] = [canonical[len("params."):]]
            self.env[name] = "@numeric:" + name
            return
        if canonical == "0":
            self.numeric[name] = []
            self.env[name] = "@numeric:" + name
            return
        self.env[name] = canonical
        if impure:
            self.items.append(["bind", canonical, impure])

    def _structural(self, value):
        """Marker when the rhs is a structural alias, else None."""
        try:
            canonical = self._canon(value, structural=True)
        except _Opaque:
            return None
        if canonical in ("@magic", "@payload", "@entry", "@params"):
            return canonical
        return None

    def _rhs(self, name, value):
        """Canonical for an rhs; returns ``(canonical, bind_source)``.

        ``bind_source`` is non-None when the read captures mutable entry
        state and must become an explicit bind step; the canonical is
        then the fresh ``$slot`` name.
        """
        source = self._mutable_read(value)
        if source is not None:
            if name.startswith("__arg_"):
                # Hoisted helper argument: slot after the parameter name.
                slot = "$" + name[len("__arg_"):].rsplit("_", 1)[0]
            else:
                slot = "$" + name
            base = slot
            index = 2
            while slot in self._slots:
                slot = "%s%d" % (base, index)
                index += 1
            self._slots.add(slot)
            return slot, source
        # Effectful reads bind fresh result names without entry state.
        effect = self._effect_read(value)
        if effect is not None:
            return effect, None
        return self._canon(value), None

    def _mutable_read(self, value):
        """Canonical bind source when rhs reads mutable entry state."""
        if isinstance(value, ast.Attribute):
            try:
                base = self._canon(value.value, structural=True)
            except _Opaque:
                return None
            if base == "@entry" and value.attr in MUTABLE_ENTRY_FIELDS:
                return "entry." + value.attr
            return None
        if (isinstance(value, ast.BinOp)
                and isinstance(value.op, ast.Sub)):
            left = self._mutable_read(value.left)
            if (left == "entry.sharers"
                    and isinstance(value.right, ast.Set)
                    and len(value.right.elts) == 1
                    and self._canon(value.right.elts[0]) == "requester"):
                return "other_sharers"
        return None

    def _effect_read(self, value):
        """Canonical result name for effectful rhs calls, emitting the
        side-effect item; None when the rhs is pure."""
        if isinstance(value, ast.IfExp):
            # ``cache.op(line) if magic.cache else None`` — the model
            # assumes caches exist, so take the cache branch.
            test_atom = self._atom(value.test)
            if test_atom == ["has_cache"]:
                return self._effect_read(value.body)
            raise _Opaque(value, "conditional expression with a "
                                 "non-cache test")
        if not isinstance(value, ast.Call):
            return None
        callee = self._callee(value)
        if callee in ("cache.downgrade", "cache.invalidate"):
            self.items.append(["cache", callee.split(".")[1]])
            return "cache_value"
        if callee == "cache.state_of":
            return "cache_state"
        if callee == "magic.scrub_page":
            self.items.append(["scrub"])
            return "scrub_result"
        if callee == "io_device.read":
            self.items.append(["io", "read"])
            return "io_value"
        return None

    def _assign_attribute(self, target, value):
        base = self._canon(target.value, structural=True)
        if base != "@entry":
            raise _Opaque(target, "attribute write outside the directory "
                                  "entry")
        if target.attr not in MUTABLE_ENTRY_FIELDS:
            raise _Opaque(target, "write to unknown entry field")
        self.items.append(["write", target.attr, self._value(value)])

    def _augassign(self, statement):
        target = statement.target
        if isinstance(target, ast.Attribute):
            base = self._canon(target.value, structural=True)
            if (base == "@entry" and target.attr == "awaiting_acks"
                    and isinstance(statement.op, ast.Sub)
                    and isinstance(statement.value, ast.Constant)
                    and statement.value.value == 1):
                self.items.append(["acks_dec"])
                return
            if base == "@magic.stats" and isinstance(statement.op, ast.Add):
                self.items.append(["stat", target.attr])
                return
            raise _Opaque(statement, "unsupported augmented assignment")
        if isinstance(target, ast.Name) and isinstance(statement.op,
                                                       ast.Add):
            terms = self.numeric.get(target.id)
            if terms is None:
                raise _Opaque(statement, "augmented add on a non-"
                                         "accumulator local")
            canonical = self._canon(statement.value)
            if canonical.startswith("params."):
                terms.append(canonical[len("params."):])
            elif canonical != "0":
                terms.extend(part for part in canonical.split("+") if part)
            return
        raise _Opaque(statement, "unsupported augmented assignment")

    def _expr(self, value):
        if not isinstance(value, ast.Call):
            if isinstance(value, ast.Constant):
                return  # docstring
            raise _Opaque(value, "expression statement outside the "
                                 "handler dialect")
        callee = self._callee(value)
        if callee == "entry.lock":
            self.items.append(["lock",
                               self._enum_member(value.args[0],
                                                 "MessageKind"),
                               self._value(value.args[1])])
        elif callee == "entry.unlock":
            self.items.append(["unlock",
                               self._enum_member(value.args[0],
                                                 "DirState")])
        elif callee == "entry.sharers.add":
            self.items.append(["sharers_add", self._value(value.args[0])])
        elif callee == "magic.send_message":
            self._send(value)
        elif callee == "memory.write_line":
            self.items.append(["mem_write", self._value(value.args[1])])
        elif callee == "magic.firmware_assert":
            self.items.append(["assert", self._atom(value.args[0])])
        elif callee in ("cache.invalidate", "cache.downgrade"):
            self.items.append(["cache", callee.split(".")[1]])
        elif callee == "io_device.write":
            self.items.append(["io", "write"])
        elif callee == "engine._note_stray":
            reason = value.args[1]
            self.items.append(
                ["stray", reason.value if isinstance(reason, ast.Constant)
                 else self._value(reason)])
        elif callee.startswith("hooks."):
            self.items.append(["hook", callee.split(".", 1)[1]])
        else:
            raise _Opaque(value, "call outside the handler dialect")

    def _send(self, call):
        dst = self._value(call.args[0])
        kind = self._enum_member(call.args[1], "MessageKind")
        payload = {}
        if len(call.args) > 2:
            node = call.args[2]
            if not isinstance(node, ast.Dict):
                raise _Opaque(node, "send payload is not a literal dict")
            for key, value in zip(node.keys, node.values):
                if not isinstance(key, ast.Constant):
                    raise _Opaque(node, "non-constant payload key")
                payload[key.value] = self._value(value)
        delay = "0"
        for keyword in call.keywords:
            if keyword.arg == "delay":
                delay = self._value(keyword.value)
            else:
                raise _Opaque(call, "unknown send_message keyword %r"
                              % keyword.arg)
        self.items.append(["send", dst, kind, payload, delay])

    # -------------------------------------------------------------- atoms

    def _atom(self, test):
        return _simplify(self._atom_raw(test))

    def _atom_raw(self, test):
        """Canonical guard tree for a branch test."""
        if isinstance(test, ast.BoolOp):
            tag = "and" if isinstance(test.op, ast.And) else "or"
            return [tag, [self._atom(value) for value in test.values]]
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return ["not", self._atom(test.operand)]
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return self._compare_atom(test)
        if isinstance(test, ast.Call):
            return self._call_atom(test)
        if isinstance(test, (ast.Name, ast.Attribute)):
            canonical = self._canon(test, structural=True)
            if canonical == "@magic.firewall_enabled":
                return ["firewall_enabled"]
            if canonical == "@magic.cache":
                return ["has_cache"]
            if canonical.startswith("entry."):
                field = canonical[len("entry."):]
                if field in ("awaiting_put", "memory_valid"):
                    return ["entry_flag", field]
            if canonical.startswith("$"):
                return ["bind_truthy", canonical]
        raise _Opaque(test, "guard outside the canonical vocabulary")

    def _compare_atom(self, test):
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        negate = isinstance(op, (ast.NotEq, ast.IsNot, ast.NotIn))
        atom = self._compare_core(op, left, right)
        return ["not", atom] if negate else atom

    def _compare_core(self, op, left, right):
        lc = self._canon_soft(left, structural=True)
        rc = self._canon_soft(right, structural=True)
        if isinstance(op, (ast.Eq, ast.NotEq)):
            if lc == "entry.state" and rc and rc.startswith("DirState."):
                return ["state", rc.split(".", 1)[1]]
            if (lc == "entry.pending_kind"
                    and rc and rc.startswith("MessageKind.")):
                return ["pending_kind", rc.split(".", 1)[1]]
            if lc == "entry.owner":
                return ["owner_is", self._value(right)]
            if rc == "self":
                return ["is_home", self._value(left)]
            if (lc and lc.startswith("$")
                    and rc and rc.startswith("MessageKind.")):
                return ["bind_is", lc, rc]
            if lc == "cache_state" and rc and rc.startswith("CacheState."):
                return ["cache_state", rc.split(".", 1)[1]]
        if isinstance(op, (ast.Is, ast.IsNot)) and rc == "None":
            if lc == "@entry":
                return ["entry_missing"]
            if lc == "cache_value":
                return ["cache_miss"]
            if lc == "@magic.cache":
                return ["not", ["has_cache"]]
        if isinstance(op, (ast.In, ast.NotIn)):
            if rc == "@magic.failure_unit":
                return ["in_failure_unit", self._value(left)]
        if (isinstance(op, ast.Gt) and lc == "entry.awaiting_acks"
                and rc == "0"):
            return ["acks_remaining"]
        raise _Opaque(ast.Compare(left=left, ops=[op], comparators=[right]),
                      "comparison outside the canonical vocabulary")

    def _call_atom(self, call):
        callee = self._callee(call)
        if callee == "magic.firmware_assert":
            return ["fw_assert", self._atom(call.args[0])]
        if callee == "magic.firewall_allows":
            return ["firewall_allows"]
        if callee == "address_map.is_magic_region":
            return ["magic_region", self._value(call.args[0])]
        if callee == "address_map.is_io_region":
            return ["io_region", self._value(call.args[0])]
        if callee == "directory.owns":
            return ["owns", self._value(call.args[0])]
        raise _Opaque(call, "call guard outside the canonical vocabulary")

    # ------------------------------------------------------- canonical names

    def _callee(self, call):
        """Short canonical for a call's function, e.g. ``entry.lock``."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            name = func.id if isinstance(func, ast.Name) else None
            resolved = self.env.get(name, name)
            if resolved and resolved.startswith("@fn:"):
                return resolved[len("@fn:"):]
            if name in ("sorted", "len", "set"):
                return name
            raise _Opaque(call, "call to an unknown function")
        base = self._canon_soft(func.value, structural=True)
        mapping = {
            "@entry": "entry", "@magic": "magic",
            "@magic.directory": "directory", "@magic.memory": "memory",
            "@magic.cache": "cache", "@magic.address_map": "address_map",
            "@magic.hooks": "hooks", "@magic.io_device": "io_device",
            "@payload": "payload", "@engine": "engine",
        }
        if base in mapping:
            return mapping[base] + "." + func.attr
        if base == "entry.sharers":
            return "entry.sharers." + func.attr
        raise _Opaque(call, "call on an unknown receiver")

    def _enum_member(self, node, enum_name):
        canonical = self._canon(node)
        prefix = enum_name + "."
        if canonical.startswith(prefix):
            return canonical[len(prefix):]
        raise _Opaque(node, "expected a %s member" % enum_name)

    def _value(self, node):
        """Canonical for a value position (send payload, write rhs)."""
        canonical = self._canon(node)
        for prefix in ("DirState.", "BusErrorKind.", "CacheState."):
            if canonical.startswith(prefix):
                return canonical
        return canonical

    def _canon_soft(self, node, structural=False):
        try:
            return self._canon(node, structural=structural)
        except _Opaque:
            return None

    def _canon(self, node, structural=False):
        """Canonical string for an expression.

        With ``structural=True`` the ``@``-markers (``@entry`` etc.) are
        returned as-is; otherwise a bare structural marker is opaque.
        """
        result = self._canon_inner(node)
        if not structural and result.startswith("@"):
            if result.startswith("@numeric:"):
                name = result[len("@numeric:"):]
                terms = self.numeric.get(name, [])
                return "+".join("params." + term for term in terms) or "0"
            raise _Opaque(node, "structural value in a data position")
        if structural and result.startswith("@numeric:"):
            return result
        return result

    def _canon_inner(self, node):
        if isinstance(node, ast.Constant):
            value = node.value
            if value is None:
                return "None"
            if value is True:
                return "True"
            if value is False:
                return "False"
            if isinstance(value, str):
                return "'%s'" % value
            if isinstance(value, (int, float)):
                return "0" if not value else repr(value)
            raise _Opaque(node, "unsupported constant")
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            raise _Opaque(node, "unknown local name")
        if isinstance(node, ast.Attribute):
            return self._canon_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._canon_subscript(node)
        if isinstance(node, ast.Call):
            return self._canon_call(node)
        if isinstance(node, ast.Set):
            return "{%s}" % ", ".join(self._value(elt)
                                      for elt in node.elts)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
            return "(%s - %s)" % (self._canon(node.left),
                                  self._canon(node.right))
        raise _Opaque(node, "expression outside the canonical vocabulary")

    def _canon_attribute(self, node):
        base = self._canon_inner(node.value)
        attr = node.attr
        if base == "@engine":
            if attr == "magic":
                return "@magic"
            if attr == "params":
                return "@params"
            raise _Opaque(node, "unknown engine attribute")
        if base == "@packet":
            if attr == "src":
                return "src"
            if attr == "payload":
                return "@payload"
            if attr == "kind":
                return "@packet.kind"
            raise _Opaque(node, "unknown packet attribute")
        if base == "@magic":
            if attr == "node_id":
                return "self"
            return "@magic." + attr
        if base == "@params":
            return "params." + attr
        if base == "@entry":
            return "entry." + attr
        if base.startswith("@enum:"):
            return "%s.%s" % (base[len("@enum:"):], attr)
        if base.startswith("@magic."):
            return base + "." + attr
        raise _Opaque(node, "attribute outside the canonical vocabulary")

    def _canon_subscript(self, node):
        base = self._canon_inner(node.value)
        if base != "@payload":
            raise _Opaque(node, "subscript outside the packet payload")
        key = node.slice
        if isinstance(key, ast.Constant) and key.value in PAYLOAD_FIELDS:
            return PAYLOAD_FIELDS[key.value]
        raise _Opaque(node, "unknown payload field")

    def _canon_call(self, node):
        callee = self._callee(node)
        if callee == "memory.read_line":
            return "memory[%s]" % self._canon(node.args[0])
        if callee == "page_of":
            return "page"
        if callee == "sorted":
            return self._canon(node.args[0])
        if callee == "len":
            return "len(%s)" % self._canon(node.args[0])
        if callee == "set":
            if node.args:
                raise _Opaque(node, "set() with arguments")
            return "{}"
        if callee == "payload.get":
            key = node.args[0]
            if (isinstance(key, ast.Constant)
                    and key.value in PAYLOAD_FIELDS):
                return PAYLOAD_FIELDS[key.value]
            raise _Opaque(node, "unknown payload field")
        if callee == "address_map.line_address":
            return "line_of(%s)" % self._canon(node.args[0])
        if callee == "address_map.io_region_start":
            return "io_base"
        if callee in ("directory.entry", "directory.peek"):
            return "@entry"
        raise _Opaque(node, "call outside the canonical vocabulary")
