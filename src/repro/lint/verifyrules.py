"""Lint rules over the extracted protocol transition system.

These are the shallow, always-on companions of ``repro.cli
verify-protocol``: where the model checker explores the state space, the
rules here inspect the extracted paths *shape-wise*, so a broken
handler fails `lint` even before the explorer runs.

=============  =========================================================
rule           invariant guarded
=============  =========================================================
lock-leak      a path never double-locks a directory entry, never locks
               after unlocking, and every pending kind some handler
               records has at least one compatible release path
escape-send    every exclusive (write) grant in a home request handler
               is dominated by a firewall consultation — the paper §4.1
               containment boundary cannot be compiled out silently
model-drift    the transition system extracted from the AST still
               matches the committed golden spec
               (``coherence/protocol.spec.json``); any behavioural edit
               to the protocol must re-bless the spec
=============  =========================================================
"""

from repro.lint.core import Checker, Severity
from repro.lint.extract import extract_protocol, load_spec, spec_diff
from repro.lint.protocol import PROTOCOL_MODULE

#: message kinds whose send constitutes a write grant (§4.1: these carry
#: ownership across the firewall).
GRANT_SENDS = ("DATA_EXCL",)

#: handlers that arbitrate requests at home and must consult the ACL
#: before granting.  Remote handlers (FWD_*) forward on the home's
#: authority and are exempt.
FIREWALLED_KINDS = ("GETX",)

_MAX_DRIFT_FINDINGS = 12


def _atom_mentions(atom, names):
    if not isinstance(atom, (list, tuple)) or not atom:
        return False
    if atom[0] in names:
        return True
    if atom[0] in ("and", "or"):
        return any(_atom_mentions(part, names) for part in atom[1])
    if atom[0] in ("not", "fw_assert"):
        return _atom_mentions(atom[1], names)
    return False


def _iter_items(items):
    for item in items:
        yield item
        if item[0] == "fanout":
            for inner in item[3]:
                yield inner


class VerifyChecker(Checker):
    """Transition-system rules; see the module table."""

    rules = {
        "lock-leak": Severity.ERROR,
        "escape-send": Severity.ERROR,
        "model-drift": Severity.ERROR,
    }

    protocol_module = PROTOCOL_MODULE

    def __init__(self, spec_path=None):
        #: golden spec to diff against; None disables the drift rule
        #: (synthetic lint fixtures have no blessed spec).
        self.spec_path = spec_path

    def check_project(self, project):
        module = project.module(self.protocol_module)
        if module is None:
            return
        model = extract_protocol(module.tree, strict=False)
        for issue in model.issues:
            yield self.finding(
                "model-drift", module, issue.lineno,
                "%s: %s — this construct is outside the extractable "
                "dialect, so the model checker cannot see it"
                % (issue.handler, issue.message))
        yield from self._check_locks(module, model)
        yield from self._check_grants(module, model)
        if self.spec_path:
            yield from self._check_drift(module, model)

    # ------------------------------------------------------------ lock-leak

    def _check_locks(self, module, model):
        locked_kinds = {}
        released_kinds = set()
        for transition in model.transitions:
            locks = [item for item in _iter_items(transition.items)
                     if item[0] == "lock"]
            unlock_at = next(
                (index for index, item in enumerate(transition.items)
                 if item[0] == "unlock"), None)
            if len(locks) > 1:
                yield self.finding(
                    "lock-leak", module, transition.lineno,
                    "%s path %d locks the directory entry %d times"
                    % (transition.handler, transition.index, len(locks)))
            if locks and unlock_at is not None:
                lock_at = next(
                    index for index, item in enumerate(transition.items)
                    if item[0] == "lock")
                if lock_at > unlock_at:
                    yield self.finding(
                        "lock-leak", module, transition.lineno,
                        "%s path %d re-locks the entry after releasing "
                        "it" % (transition.handler, transition.index))
            for item in locks:
                locked_kinds.setdefault(_pending_kind(item[1]),
                                        transition)
            if unlock_at is not None:
                released_kinds |= self._release_covers(transition)
        for kind, transition in sorted(locked_kinds.items()):
            if kind not in released_kinds:
                yield self.finding(
                    "lock-leak", module, transition.lineno,
                    "%s records pending %s but no handler path releases "
                    "a %s lock — lines would wedge LOCKED forever"
                    % (transition.handler, kind, kind))

    def _release_covers(self, transition):
        """Pending kinds an unlocking path can complete: the kinds its
        pending-kind guards pin, or every kind when it never looks."""
        pinned = set()
        for item in transition.items:
            if item[0] != "guard":
                continue
            atom, polarity = item[1], item[2]
            if atom[0] == "pending_kind" and polarity:
                pinned.add(_pending_kind(atom[1]))
            elif (atom[0] == "bind_is" and polarity
                    and atom[2].startswith("MessageKind.")):
                pinned.add(_pending_kind(atom[2]))
        return pinned or {"GET", "GETX"}

    # ---------------------------------------------------------- escape-send

    def _check_grants(self, module, model):
        for transition in model.transitions:
            if transition.kind not in FIREWALLED_KINDS:
                continue
            grants = [item for item in _iter_items(transition.items)
                      if item[0] == "send" and item[2] in GRANT_SENDS]
            if not grants:
                continue
            consulted = any(
                _atom_mentions(item[1],
                               ("firewall_enabled", "firewall_allows"))
                for item in transition.items if item[0] == "guard")
            if not consulted:
                yield self.finding(
                    "escape-send", module, transition.lineno,
                    "%s path %d grants %s without consulting the "
                    "firewall — a failed cell could be handed ownership "
                    "(§4.1)" % (transition.handler, transition.index,
                                grants[0][2]))

    # ---------------------------------------------------------- model-drift

    def _check_drift(self, module, model):
        try:
            blessed = load_spec(self.spec_path)
        except (OSError, ValueError) as error:
            yield self.finding(
                "model-drift", module, 1,
                "golden spec %s is unreadable: %s"
                % (self.spec_path, error))
            return
        differences = spec_diff(blessed, model.to_spec())
        for difference in differences[:_MAX_DRIFT_FINDINGS]:
            yield self.finding(
                "model-drift", module, 1,
                "extracted model differs from the golden spec: %s "
                "(re-bless with `repro.cli verify-protocol "
                "--update-spec` after reviewing)" % difference)
        if len(differences) > _MAX_DRIFT_FINDINGS:
            yield self.finding(
                "model-drift", module, 1,
                "... and %d further spec difference(s)"
                % (len(differences) - _MAX_DRIFT_FINDINGS))


def _pending_kind(value):
    return value.rsplit(".", 1)[-1]
