"""Determinism checker: no nondeterminism can reach the event scheduler.

Campaign shrinking, ``--replay`` repro commands and the bit-identical
traced/untraced test all assume that a (schedule, seed) pair names exactly
one simulation.  Three rules protect that contract inside the zones whose
code runs under the scheduler:

* ``wall-clock`` — no ``time.time()`` / ``datetime.now()``-style reads:
  simulation time is :attr:`Simulator.now`, wall time belongs to the
  crash-isolation harness only;
* ``unseeded-random`` — no module-level ``random.*`` draws: all
  randomness must flow through a seeded :class:`random.Random` (the
  simulator-owned ``sim.rng`` or a seed-derived instance);
* ``unordered-iter`` — no iteration directly over a set (or a dict
  ``.keys()`` view) where the visit order could decide event order;
  iterate ``sorted(...)`` instead, as the protocol handlers do.
"""

import ast

from repro.lint.core import Checker, ImportMap, Severity

#: package-relative prefixes whose code runs under the event scheduler
DETERMINISM_ZONES = ("sim/", "coherence/", "interconnect/", "recovery/",
                     "campaign/", "fuzz/")

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: random-module callables that are *not* nondeterministic module state
_SEEDED_FACTORIES = frozenset({"random.Random", "random.SystemRandom"})


def _is_unordered(node, imports):
    """Is this expression syntactically an unordered collection?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = imports.resolve(node.func)
        if resolved in ("set", "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "keys" and not node.args):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return (_is_unordered(node.left, imports)
                or _is_unordered(node.right, imports))
    return False


class DeterminismChecker(Checker):

    rules = {
        "wall-clock": Severity.ERROR,
        "unseeded-random": Severity.ERROR,
        "unordered-iter": Severity.WARNING,
    }

    zones = DETERMINISM_ZONES

    def check_module(self, module):
        if not module.in_zone(self.zones):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, imports, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(module, imports, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iter(module, imports,
                                                generator.iter)

    def _check_call(self, module, imports, node):
        resolved = imports.resolve(node.func)
        if resolved is None:
            return
        if resolved in _WALL_CLOCK:
            yield self.finding(
                "wall-clock", module, node.lineno,
                "%s() reads the wall clock; simulation code must use the "
                "simulator's virtual clock (sim.now)" % resolved)
        elif (resolved.startswith("random.")
                and resolved.count(".") == 1
                and resolved not in _SEEDED_FACTORIES
                and imports.imports_module("random")):
            yield self.finding(
                "unseeded-random", module, node.lineno,
                "%s() draws from the process-global random state; route "
                "randomness through a seeded random.Random (e.g. sim.rng)"
                % resolved)

    def _check_iter(self, module, imports, iter_node):
        if _is_unordered(iter_node, imports):
            yield self.finding(
                "unordered-iter", module, iter_node.lineno,
                "iteration order over a set/dict-view is not a simulation "
                "invariant; iterate sorted(...) so event order is "
                "deterministic")
