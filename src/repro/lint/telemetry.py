"""Telemetry zero-cost checker: emission sites must be identity-guarded.

The §6.2 claim our bench defends — telemetry costs nothing when disabled —
rests on one source idiom (DESIGN.md §9)::

    tr = self.trace
    if tr is not None:
        tr.emit("pkt", "drop", node=self.router_id, reason="link")

so a disabled run pays one attribute load and one identity test per site.
A directed test asserts traced and untraced runs are bit-identical; this
rule makes the guard itself unforgeable: every ``<x>.emit(...)`` call,
every instrument fetch on a nullable ``metrics`` handle
(``metrics.counter(...)`` etc.), and every profiler hook
(``prof.dispatch(...)`` in the event loop) must sit inside an
``if <x> is not None`` branch over the very same receiver expression.

The ``telemetry/`` package itself is exempt: it *implements* the recorder
and harvests metrics post-run, where the registry is never None.
"""

import ast

from repro.lint.core import Checker, Severity, attr_chain

EXEMPT_ZONES = ("telemetry/", "lint/")

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

_BODY_FIELDS = ("body", "orelse", "finalbody")


def _guard_targets(test):
    """Receiver chains proven non-None by this ``if`` test."""
    targets = set()
    nodes = [test]
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        nodes = list(test.values)
    for node in nodes:
        if not isinstance(node, ast.Compare):
            continue
        if len(node.ops) != 1 or not isinstance(node.ops[0], ast.IsNot):
            continue
        comparator = node.comparators[0]
        if not (isinstance(comparator, ast.Constant)
                and comparator.value is None):
            continue
        chain = attr_chain(node.left)
        if chain is not None:
            targets.add(chain)
    return targets


def _receiver(call):
    """(chain, kind) for calls this rule covers, else (None, None)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None, None
    chain = attr_chain(func.value)
    if chain is None:
        return None, None
    if func.attr == "emit":
        return chain, "trace"
    if func.attr == "dispatch":
        base = chain.rsplit(".", 1)[-1]
        if base in ("prof", "profiler") or base.endswith("_profiler"):
            return chain, "profiler"
    if func.attr in _METRIC_FACTORIES:
        base = chain.rsplit(".", 1)[-1]
        if base == "metrics" or base.endswith("_metrics"):
            return chain, "metrics"
    return None, None


class TelemetryGuardChecker(Checker):

    rules = {"telemetry-guard": Severity.ERROR}

    zones_exempt = EXEMPT_ZONES

    def check_module(self, module):
        if module.in_zone(self.zones_exempt):
            return ()
        findings = []
        self._walk(module, module.tree.body, frozenset(), findings)
        return findings

    def _walk(self, module, statements, guards, findings):
        """Check one statement list, tracking ``is not None`` guards."""
        for statement in statements:
            if isinstance(statement, ast.If):
                self._check_calls(module, statement.test, guards, findings)
                inner = guards | _guard_targets(statement.test)
                self._walk(module, statement.body, inner, findings)
                self._walk(module, statement.orelse, guards, findings)
                continue
            for field, value in ast.iter_fields(statement):
                if (field in _BODY_FIELDS and isinstance(value, list)
                        and value and isinstance(value[0], ast.stmt)):
                    self._walk(module, value, guards, findings)
                elif field == "handlers":
                    for handler in value:
                        self._walk(module, handler.body, guards, findings)
                else:
                    nodes = value if isinstance(value, list) else [value]
                    for node in nodes:
                        if isinstance(node, ast.AST):
                            self._check_calls(module, node, guards,
                                              findings)

    def _check_calls(self, module, node, guards, findings):
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            chain, kind = _receiver(child)
            if chain is None or chain in guards:
                continue
            findings.append(self.finding(
                "telemetry-guard", module, child.lineno,
                "%s call on %r is not guarded by 'if %s is not None': "
                "with telemetry disabled this site must cost one identity "
                "check, nothing more (DESIGN.md §9)"
                % ({"trace": "trace emission",
                    "profiler": "profiler dispatch",
                    "metrics": "metrics instrument"}[kind],
                   chain, chain)))


#: packet-handling zones whose emissions must carry causal provenance
CAUSE_ZONES = ("interconnect/", "coherence/", "node/magic.py")


class TelemetryCauseChecker(Checker):
    """Causal-provenance rule (DESIGN.md §11): packet-handling emissions
    must pass ``cause=``.

    Forensics reconstructs the blast-radius DAG from ``cause`` edges.  An
    emission without one in the interconnect, the coherence protocol or the
    MAGIC handler code is an invisible hop: the DAG silently loses the
    propagation path through it, and a containment audit can then report
    "contained" on a trace that merely went dark.  ``cause=None`` is fine —
    it states "this event has no causal parent" explicitly; *omitting* the
    keyword is what the rule rejects.
    """

    rules = {"telemetry-cause": Severity.ERROR}

    zones = CAUSE_ZONES

    def check_module(self, module):
        if not module.in_zone(self.zones):
            return ()
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain, kind = _receiver(node)
            if kind != "trace":
                continue
            if any(keyword.arg == "cause" for keyword in node.keywords):
                continue
            findings.append(self.finding(
                "telemetry-cause", module, node.lineno,
                "trace emission on %r in packet-handling code does not "
                "pass 'cause=': the forensic DAG (DESIGN.md §11) loses the "
                "causal path through this hop" % chain))
        return findings
