"""``repro.lint`` — AST-based invariant linter for the reproduction.

The static counterpart of the paper's firmware assertions (§4.2): four
checker families prove classes of simulator bugs absent at lint time
rather than catching them as flaky campaign failures.

=====================  ====================================================
rule                   invariant guarded
=====================  ====================================================
wall-clock             deterministic replay: no real-clock reads in
                       scheduler-driven code
unseeded-random        deterministic replay: all randomness is seeded
unordered-iter         deterministic replay: no set-order-dependent event
                       scheduling
protocol-exhaustive    firmware-assertion analogue: every MessageKind is
                       dispatched, every home handler covers DirState
telemetry-guard        §6.2 zero-overhead claim: emission sites reduce to
                       one identity check when disabled
sim-blocking           virtual time: sim processes never block on the
                       real world
handler-cost           timing model: every dispatch handler returns its
                       occupancy
broad-except           fault containment of the *tooling*: model bugs
                       escalate except at crash-isolation boundaries
=====================  ====================================================

Run it as ``python -m repro.cli lint``; suppress a deliberate exception
with ``# repro-lint: disable=<rule> — <justification>``.
"""

from repro.lint.core import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    all_rules,
    build_project,
    default_checkers,
    format_json,
    format_text,
    lint_project,
    package_root,
    run_lint,
)

__all__ = [
    "Checker", "Finding", "Module", "Project", "Severity",
    "apply_baseline", "load_baseline", "write_baseline",
    "all_rules", "build_project", "default_checkers", "format_json",
    "format_text", "lint_project", "package_root", "run_lint",
]
