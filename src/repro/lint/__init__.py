"""``repro.lint`` — AST-based invariant linter for the reproduction.

The static counterpart of the paper's firmware assertions (§4.2): four
checker families prove classes of simulator bugs absent at lint time
rather than catching them as flaky campaign failures.

=====================  ====================================================
rule                   invariant guarded
=====================  ====================================================
wall-clock             deterministic replay: no real-clock reads in
                       scheduler-driven code
unseeded-random        deterministic replay: all randomness is seeded
unordered-iter         deterministic replay: no set-order-dependent event
                       scheduling
protocol-exhaustive    firmware-assertion analogue: every MessageKind is
                       dispatched, every home handler covers DirState
telemetry-guard        §6.2 zero-overhead claim: emission sites reduce to
                       one identity check when disabled
sim-blocking           virtual time: sim processes never block on the
                       real world
handler-cost           timing model: every dispatch handler returns its
                       occupancy
broad-except           fault containment of the *tooling*: model bugs
                       escalate except at crash-isolation boundaries
lock-leak              extracted transition system: directory locks are
                       never doubled and every pending kind has a release
escape-send            §4.1 firewall: write grants are dominated by an
                       ACL consultation
model-drift            the AST-extracted transition system matches the
                       blessed ``coherence/protocol.spec.json``
=====================  ====================================================

Run it as ``python -m repro.cli lint``; suppress a deliberate exception
with ``# repro-lint: disable=<rule> — <justification>``.
"""

from repro.lint.core import (
    Checker,
    Finding,
    Module,
    Project,
    Severity,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    all_rules,
    build_project,
    default_checkers,
    format_json,
    format_text,
    golden_spec_path,
    lint_project,
    package_root,
    repo_checkers,
    run_lint,
)
from repro.lint.extract import (
    ExtractionError,
    ProtocolModel,
    extract_protocol,
    load_spec,
    spec_diff,
    write_spec,
)

__all__ = [
    "Checker", "ExtractionError", "Finding", "Module", "Project",
    "ProtocolModel", "Severity",
    "apply_baseline", "load_baseline", "write_baseline",
    "all_rules", "build_project", "default_checkers", "extract_protocol",
    "format_json", "format_text", "golden_spec_path", "lint_project",
    "load_spec", "package_root", "repo_checkers", "run_lint",
    "spec_diff", "write_spec",
]
