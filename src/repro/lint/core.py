"""Checker framework: findings, modules, suppressions and the baseline.

The linter is the static half of the paper's firmware assertions (§4.2):
instead of catching an invariant violation at dispatch time, each checker
proves a class of violation absent from the source before the simulator
ever runs.  The framework is deliberately small:

* a :class:`Finding` is one violation at ``path:line`` with a rule name
  and severity;
* a :class:`Module` is one parsed source file; a :class:`Project` is the
  set of modules a cross-file checker (protocol exhaustiveness) needs;
* ``# repro-lint: disable=<rule>[,<rule>...]`` on the offending line
  suppresses findings on that line, and
  ``# repro-lint: disable-file=<rule>`` anywhere in a file suppresses the
  rule for the whole file — both are meant to carry a justification in
  the rest of the comment;
* a baseline file grandfathers pre-existing findings so CI only fails on
  *new* ones (this repo ships an empty baseline: the tree lints clean).
"""

import ast
import collections
import enum
import json
import re


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("rule", "severity", "path", "line", "message")

    def __init__(self, rule, severity, path, line, message):
        self.rule = rule
        self.severity = severity
        self.path = path
        self.line = line
        self.message = message

    @property
    def location(self):
        return "%s:%d" % (self.path, self.line)

    def fingerprint(self):
        """Baseline identity: stable across unrelated line-number drift."""
        return (self.rule, self.path, self.message)

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self):
        return {"rule": self.rule, "severity": self.severity.value,
                "path": self.path, "line": self.line,
                "message": self.message}

    @classmethod
    def from_dict(cls, data):
        return cls(rule=data["rule"],
                   severity=Severity(data.get("severity", "error")),
                   path=data["path"], line=data.get("line", 0),
                   message=data["message"])

    def __eq__(self, other):
        return (isinstance(other, Finding)
                and self.to_dict() == other.to_dict())

    def __repr__(self):
        return "<Finding %s %s %s>" % (self.rule, self.location,
                                       self.message)


_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)=([A-Za-z0-9_,-]+)")


class Module:
    """One parsed source file.

    ``rel`` is the package-relative posix path (``coherence/protocol.py``)
    that zone matching and the cross-file checkers key on; ``path`` is the
    path findings display (repo-relative for real runs).
    """

    def __init__(self, rel, source, path=None):
        self.rel = rel
        self.path = path or rel
        self.source = source
        self.tree = ast.parse(source)
        self.line_disables = {}    # line number -> set of rule names
        self.file_disables = set()
        for number, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            rules = {rule.strip() for rule in match.group(2).split(",")
                     if rule.strip()}
            if match.group(1) == "disable-file":
                self.file_disables |= rules
            else:
                self.line_disables.setdefault(number, set()).update(rules)

    def in_zone(self, zones):
        return any(self.rel.startswith(zone) for zone in zones)

    def suppresses(self, finding):
        if {"all", finding.rule} & self.file_disables:
            return True
        rules = self.line_disables.get(finding.line, ())
        return "all" in rules or finding.rule in rules


class Project:
    """The modules under lint, addressable by package-relative path."""

    def __init__(self, modules):
        self.modules = sorted(modules, key=lambda module: module.rel)
        self._by_rel = {module.rel: module for module in self.modules}

    def module(self, rel):
        return self._by_rel.get(rel)


class Checker:
    """Base class: per-module and/or whole-project checks.

    ``rules`` maps each rule name the checker may report to its severity;
    subclasses build findings through :meth:`finding` so severities stay
    consistent with the registry the CLI prints.
    """

    rules = {}

    def finding(self, rule, module, line, message):
        return Finding(rule=rule, severity=self.rules[rule],
                       path=module.path, line=line, message=message)

    def check_module(self, module):
        return ()

    def check_project(self, project):
        return ()


# ---------------------------------------------------------------- baseline

def load_baseline(path):
    """Baseline file -> multiset of finding fingerprints."""
    with open(path) as handle:
        data = json.load(handle)
    counts = collections.Counter()
    for entry in data.get("findings", ()):
        finding = Finding.from_dict(entry)
        counts[finding.fingerprint()] += 1
    return counts


def write_baseline(path, findings):
    with open(path, "w") as handle:
        json.dump({"version": 1,
                   "findings": [finding.to_dict() for finding in findings]},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(findings, baseline):
    """Drop findings covered by the baseline multiset (one entry each)."""
    remaining = collections.Counter(baseline)
    kept = []
    for finding in findings:
        key = finding.fingerprint()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            kept.append(finding)
    return kept


# ------------------------------------------------------------- AST helpers

class ImportMap:
    """Resolves names through a module's imports to dotted origins.

    ``import time`` makes ``time.monotonic`` resolve to itself;
    ``from datetime import datetime`` makes ``datetime.now`` resolve to
    ``datetime.datetime.now``; unimported bases resolve to their literal
    attribute chain (so ``self.trace.emit`` stays ``self.trace.emit``).
    """

    def __init__(self, tree):
        self.names = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else bound
                    self.names[bound] = origin
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.names[bound] = "%s.%s" % (node.module, alias.name)

    def resolve(self, node):
        """Dotted origin of a Name/Attribute chain, or None."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.names.get(node.id, node.id))
        return ".".join(reversed(parts))

    def imports_module(self, name):
        return any(origin == name or origin.startswith(name + ".")
                   for origin in self.names.values())


def attr_chain(node):
    """Literal source chain of a Name/Attribute node (``self.trace``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def enum_members(tree, class_name):
    """Member name -> line of a simple ``NAME = value`` enum class."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members = {}
            for statement in node.body:
                if not isinstance(statement, ast.Assign):
                    continue
                for target in statement.targets:
                    if (isinstance(target, ast.Name)
                            and not target.id.startswith("_")):
                        members[target.id] = statement.lineno
            return members
    return None


def function_defs(tree, class_name=None):
    """Top-level (or one class's) function definitions, by name."""
    if class_name is not None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                body = node.body
                break
        else:
            return {}
    else:
        body = tree.body
    return {node.name: node for node in body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}
