"""Coverage-guided fault-schedule fuzzing (DESIGN.md §13).

The campaign engine samples schedules from fixed generators; this package
closes the loop: every run's already-emitted signals (directory-state x
message-kind counters, recovery phase edges, forensic blast-radius
shapes, stray/absorbed counts) are hashed into a coverage map, and a
deterministic mutator breeds the schedules that reached new coverage.
Failures route into the existing shrinker and replay machinery.
"""

from repro.fuzz.corpus import Corpus, CorpusEntry, schedule_fingerprint
from repro.fuzz.coverage import CoverageMap, feature_hash, run_coverage
from repro.fuzz.engine import FuzzEngine
from repro.fuzz.mutate import MUTATION_OPS, mutate, rebuild_from_lineage

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "FuzzEngine",
    "MUTATION_OPS",
    "feature_hash",
    "mutate",
    "rebuild_from_lineage",
    "run_coverage",
    "schedule_fingerprint",
]
