"""The fuzzer's corpus: schedules that earned their keep, on disk as JSONL.

An entry joins the corpus only by reaching coverage no earlier run
reached; it carries its lineage (sufficient, with the campaign seed, to
rebuild the schedule bit-for-bit), the features it was admitted for, and
the full feature set of its run (energy weighting).  Entries are deduped
by a schedule *fingerprint* — a hash over the canonical schedule JSON
minus the cosmetic name — so two lineages converging on the same
schedule occupy one slot.

Persistence is append-only JSONL like campaign records: a resumed fuzz
session reloads the corpus (tolerating a torn final line from a killed
process) and continues.
"""

import hashlib
import json
import os

from repro.campaign.schedule import FaultSchedule


def schedule_fingerprint(schedule):
    """Stable identity of a schedule's *content* (name excluded)."""
    data = schedule.to_dict()
    data.pop("name", None)
    canon = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canon.encode("utf-8"),
                           digest_size=16).hexdigest()


class CorpusEntry:
    """One admitted schedule with its provenance and coverage."""

    def __init__(self, lineage, schedule, seed, features,
                 new_features=(), op="seed"):
        self.lineage = lineage
        self.schedule = schedule
        self.seed = seed
        self.features = list(features)
        self.new_features = list(new_features)
        self.op = op
        self.fingerprint = schedule_fingerprint(schedule)

    def to_dict(self):
        return {
            "lineage": self.lineage,
            "schedule": self.schedule.to_dict(),
            "seed": self.seed,
            "features": self.features,
            "new_features": self.new_features,
            "op": self.op,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(lineage=data["lineage"],
                   schedule=FaultSchedule.from_dict(data["schedule"]),
                   seed=data["seed"],
                   features=data.get("features", ()),
                   new_features=data.get("new_features", ()),
                   op=data.get("op", "seed"))


class Corpus:
    """Fingerprint-deduped entry set with rarity-weighted parent choice."""

    def __init__(self):
        self.entries = []
        self._by_fingerprint = {}

    def __len__(self):
        return len(self.entries)

    def __contains__(self, fingerprint):
        return fingerprint in self._by_fingerprint

    def add(self, entry):
        """Admit an entry; returns False when its schedule is already in."""
        if entry.fingerprint in self._by_fingerprint:
            return False
        self._by_fingerprint[entry.fingerprint] = entry
        self.entries.append(entry)
        return True

    def select_parent(self, rng, coverage):
        """Energy-weighted draw: schedules whose features are rare under
        ``coverage`` breed more (AFL-style corpus scheduling)."""
        if not self.entries:
            return None
        weights = [coverage.energy(entry.features)
                   for entry in self.entries]
        return rng.choices(self.entries, weights=weights, k=1)[0]

    def select_donor(self, rng, parent):
        """A splice partner other than the parent (or None)."""
        candidates = [entry for entry in self.entries
                      if entry.fingerprint != parent.fingerprint]
        if not candidates:
            return None
        return rng.choice(candidates)

    # ----------------------------------------------------------- persistence

    def append_to(self, path, entry):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")

    @classmethod
    def load(cls, path):
        """Rebuild a corpus from JSONL, tolerating a torn final line."""
        corpus = cls()
        if not os.path.exists(path):
            return corpus
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    # A process killed mid-append leaves one torn line;
                    # everything before it is intact.
                    continue
                corpus.add(CorpusEntry.from_dict(data))
        return corpus
